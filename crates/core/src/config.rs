//! Experiment specifications — one point in the design space.

use crate::error::{CoreError, Result};
use eth_cluster::costmodel::AlgorithmClass;
use eth_cluster::coupling::CouplingStrategy;
use eth_data::sampling::{SamplingMethod, SamplingSpec};
use eth_data::{DataObject, Vec3};
use eth_render::geometry::slice::Plane;
use eth_render::pipeline::RenderAlgorithm;
use eth_sim::{HaccConfig, XrageConfig};
use eth_transport::fault::FaultPlan;
use eth_transport::HeartbeatPolicy;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// In-run rank fault tolerance (DESIGN.md §12). With a policy set, native
/// multi-rank runs beat per-rank heartbeats instead of relying on one
/// global hang deadline, and a rank that stops beating is declared dead in
/// O(heartbeat interval). Its partition is adopted by a deterministic
/// survivor from the last step checkpoint, and frames rendered between the
/// death and the adoption composite the surviving ranks only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryPolicy {
    /// Liveness beacons: interval and miss budget per rank.
    #[serde(default)]
    pub heartbeat: HeartbeatPolicy,
    /// Rank deaths tolerated before the run itself fails (the campaign
    /// retry/quarantine ladder takes over past this point).
    #[serde(default = "default_max_rank_losses")]
    pub max_rank_losses: u32,
    /// Adopt dead ranks' partitions (true, the default) or merely keep
    /// compositing the survivors, leaving the dead partitions dark.
    #[serde(default = "default_adopt")]
    pub adopt: bool,
}

fn default_max_rank_losses() -> u32 {
    1
}

fn default_adopt() -> bool {
    true
}

impl Default for RecoveryPolicy {
    fn default() -> RecoveryPolicy {
        RecoveryPolicy {
            heartbeat: HeartbeatPolicy::default(),
            max_rank_losses: default_max_rank_losses(),
            adopt: default_adopt(),
        }
    }
}

impl RecoveryPolicy {
    pub fn validate(&self) -> std::result::Result<(), String> {
        self.heartbeat.validate()?;
        if self.max_rank_losses == 0 {
            return Err("recovery.max_rank_losses must be >= 1 (a policy that \
                        tolerates zero losses is no policy)"
                .into());
        }
        Ok(())
    }
}

/// Resource governance (DESIGN.md §17): how much memory staging may hold
/// resident, how much disk the journal may consume, and the watermarks
/// the backpressure loop runs between. With a memory budget set, staged
/// blocks past the budget spill to lossless on-disk chunks and stream
/// back on access — images stay byte-identical to an unbudgeted run.
/// With a disk quota set, journal appends and result writes that would
/// exceed it fail with [`CoreError::DiskFull`] and ride the normal
/// retry/quarantine ladder instead of panicking.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourcePolicy {
    /// Peak resident staged bytes; `None` = unbounded (never spill).
    #[serde(default)]
    pub memory_budget_bytes: Option<u64>,
    /// Byte quota across the WAL and `results/*.bin`; `None` = unbounded.
    #[serde(default)]
    pub disk_quota_bytes: Option<u64>,
    /// Where spill chunks go; `None` = a fresh per-process temp dir.
    #[serde(default)]
    pub spill_dir: Option<PathBuf>,
    /// Backpressure releases admission below this fraction of the budget.
    #[serde(default = "default_low_watermark")]
    pub low_watermark: f64,
    /// Backpressure stops admitting new points above this fraction.
    #[serde(default = "default_high_watermark")]
    pub high_watermark: f64,
}

fn default_low_watermark() -> f64 {
    0.5
}

fn default_high_watermark() -> f64 {
    0.9
}

impl Default for ResourcePolicy {
    fn default() -> ResourcePolicy {
        ResourcePolicy {
            memory_budget_bytes: None,
            disk_quota_bytes: None,
            spill_dir: None,
            low_watermark: default_low_watermark(),
            high_watermark: default_high_watermark(),
        }
    }
}

impl ResourcePolicy {
    /// A policy that only bounds staging memory.
    pub fn with_memory_budget(bytes: u64) -> ResourcePolicy {
        ResourcePolicy {
            memory_budget_bytes: Some(bytes),
            ..ResourcePolicy::default()
        }
    }

    /// A policy that only bounds journal disk use.
    pub fn with_disk_quota(bytes: u64) -> ResourcePolicy {
        ResourcePolicy {
            disk_quota_bytes: Some(bytes),
            ..ResourcePolicy::default()
        }
    }

    pub fn validate(&self) -> std::result::Result<(), String> {
        if self.memory_budget_bytes == Some(0) {
            return Err("resources.memory_budget_bytes must be >= 1 when set \
                        (0 would spill everything and admit nothing)"
                .into());
        }
        if self.disk_quota_bytes == Some(0) {
            return Err("resources.disk_quota_bytes must be >= 1 when set \
                        (a journal needs at least one append)"
                .into());
        }
        for (name, w) in [
            ("low_watermark", self.low_watermark),
            ("high_watermark", self.high_watermark),
        ] {
            if !(w > 0.0 && w <= 1.0 && w.is_finite()) {
                return Err(format!("resources.{name} {w} outside (0, 1]"));
            }
        }
        if self.low_watermark > self.high_watermark {
            return Err(format!(
                "resources.low_watermark {} above high_watermark {}: the \
                 backpressure loop would never settle",
                self.low_watermark, self.high_watermark
            ));
        }
        Ok(())
    }

    /// Absolute high-watermark threshold, if a memory budget is set.
    pub fn high_threshold_bytes(&self) -> Option<u64> {
        self.memory_budget_bytes
            .map(|b| (b as f64 * self.high_watermark) as u64)
    }

    /// Absolute low-watermark threshold, if a memory budget is set.
    pub fn low_threshold_bytes(&self) -> Option<u64> {
        self.memory_budget_bytes
            .map(|b| (b as f64 * self.low_watermark) as u64)
    }
}

/// Megaphone-style migration schedules (DESIGN.md §13): which partitions
/// move between visualization ranks, and when. `from`/`to` index the
/// visualization side (intercore: one viz rank per sim rank; internode:
/// the viz application's own rank space).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MigrationPattern {
    /// Every partition the source owns moves in one step.
    Sudden { from: usize, to: usize, at_step: usize },
    /// One partition per step, ascending partition id, starting at
    /// `start_step` — the smooth end of the disruption spectrum.
    Fluid { from: usize, to: usize, start_step: usize },
    /// `batch` partitions per step: the dial between Sudden and Fluid.
    BatchedFluid {
        from: usize,
        to: usize,
        start_step: usize,
        batch: usize,
    },
    /// Internode only: switch the viz rank count to `viz_ranks` at
    /// `at_step`. Growing adds ranks that take over their round-robin
    /// share; shrinking drains the retired ranks' partitions onto the
    /// survivors.
    Rescale { viz_ranks: usize, at_step: usize },
}

/// The migration axis of a design point: a schedule plus the handoff
/// protocol's patience. Serde-able so elasticity sweeps record exactly
/// like any other axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigrationPlan {
    pub pattern: MigrationPattern,
    /// Per-handoff budget for the offer → state → ack round trip; past it
    /// the handoff degrades to "no migration happened".
    #[serde(default = "default_handoff_timeout_ms")]
    pub handoff_timeout_ms: u64,
}

fn default_handoff_timeout_ms() -> u64 {
    1_000
}

impl MigrationPlan {
    pub fn new(pattern: MigrationPattern) -> MigrationPlan {
        MigrationPlan {
            pattern,
            handoff_timeout_ms: default_handoff_timeout_ms(),
        }
    }

    pub fn handoff_timeout(&self) -> std::time::Duration {
        std::time::Duration::from_millis(self.handoff_timeout_ms.max(1))
    }
}

/// One planned partition handoff, fully resolved against a spec: partition
/// `partition` moves from viz rank `from` to viz rank `to` at the start of
/// `step`. Derived deterministically by [`ExperimentSpec::migration_handoffs`];
/// the handoff's position in that list is its control-plane identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Handoff {
    pub partition: usize,
    pub from: usize,
    pub to: usize,
    pub step: usize,
}

/// Which science workload feeds the experiment (Section IV-A).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Application {
    /// HACC-like cosmology particles.
    Hacc { particles: usize },
    /// xRAGE-like asteroid-impact structured grid.
    Xrage { dims: [usize; 3] },
}

impl Application {
    /// Element count (particles or grid vertices).
    pub fn num_elements(&self) -> usize {
        match self {
            Application::Hacc { particles } => *particles,
            Application::Xrage { dims } => dims[0] * dims[1] * dims[2],
        }
    }

    /// The scalar attribute the pipelines color by.
    pub fn default_scalar(&self) -> &'static str {
        match self {
            Application::Hacc { .. } => "density",
            Application::Xrage { .. } => "temperature",
        }
    }

    /// Bytes per element crossing the in-situ interface.
    pub fn bytes_per_element(&self) -> u32 {
        match self {
            // id (8) + position (12) + velocity (12)
            Application::Hacc { .. } => 32,
            // one f32 field
            Application::Xrage { .. } => 4,
        }
    }

    /// Generate the global dataset for one timestep (deterministic in
    /// `(seed, step)`).
    pub fn generate(&self, step: usize, seed: u64) -> Result<DataObject> {
        match self {
            Application::Hacc { particles } => {
                let cfg = HaccConfig {
                    particles: *particles,
                    seed,
                    ..Default::default()
                };
                Ok(DataObject::Points(cfg.generate(step)?))
            }
            Application::Xrage { dims } => {
                let cfg = XrageConfig {
                    dims: *dims,
                    seed,
                    ..Default::default()
                };
                Ok(DataObject::Grid(cfg.generate(step)?))
            }
        }
    }

    /// The isovalue the grid pipelines extract at `step`.
    pub fn isovalue(&self, step: usize, seed: u64) -> f32 {
        match self {
            Application::Hacc { .. } => 0.0,
            Application::Xrage { .. } => XrageConfig {
                seed,
                ..Default::default()
            }
            .front_isovalue(step),
        }
    }

    /// The paper's "two sliding planes" for grid slicing at `step`.
    pub fn slice_planes(&self, step: usize) -> Vec<Plane> {
        match self {
            Application::Hacc { .. } => Vec::new(),
            Application::Xrage { .. } => {
                let cfg = XrageConfig::default();
                let e = cfg.domain_size;
                // planes slide with the timestep
                let f = 0.3 + 0.04 * step as f32;
                vec![
                    Plane::axis_aligned(0, e * f.min(0.8)),
                    Plane::axis_aligned(2, e * (1.0 - f).max(0.2)),
                ]
            }
        }
    }

    /// World-space particle radius for sphere-style rendering: a small
    /// multiple of the mean inter-particle spacing.
    pub fn particle_radius(&self) -> f32 {
        match self {
            Application::Hacc { particles } => {
                let cfg = HaccConfig::default();
                let spacing = cfg.box_size / (*particles as f32).cbrt().max(1.0);
                spacing * 0.75
            }
            Application::Xrage { .. } => 0.01,
        }
    }

    pub fn is_particle(&self) -> bool {
        matches!(self, Application::Hacc { .. })
    }
}

/// The rendering-algorithm axis, serde-friendly; parameterized at run time
/// from the application (isovalues, planes, radii).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    VtkPoints,
    GaussianSplat,
    RaycastSpheres,
    VtkIsosurface,
    RaycastIsosurface,
    VtkSlice,
    RaycastSlice,
}

impl Algorithm {
    pub fn name(self) -> &'static str {
        self.class().name()
    }

    /// The cluster-model classification.
    pub fn class(self) -> AlgorithmClass {
        match self {
            Algorithm::VtkPoints => AlgorithmClass::VtkPoints,
            Algorithm::GaussianSplat => AlgorithmClass::GaussianSplat,
            Algorithm::RaycastSpheres => AlgorithmClass::RaycastSpheres,
            Algorithm::VtkIsosurface => AlgorithmClass::VtkIsosurface,
            Algorithm::RaycastIsosurface => AlgorithmClass::RaycastIsosurface,
            Algorithm::VtkSlice => AlgorithmClass::VtkSlice,
            Algorithm::RaycastSlice => AlgorithmClass::RaycastSlice,
        }
    }

    /// Does this algorithm apply to the application's data class?
    pub fn accepts(self, app: &Application) -> bool {
        self.class().is_particle() == app.is_particle()
    }

    /// Resolve to a concrete render-pipeline configuration for one step.
    pub fn resolve(self, app: &Application, step: usize, seed: u64) -> RenderAlgorithm {
        match self {
            Algorithm::VtkPoints => RenderAlgorithm::VtkPoints { point_size: 2 },
            Algorithm::GaussianSplat => RenderAlgorithm::GaussianSplat {
                radius: app.particle_radius(),
            },
            Algorithm::RaycastSpheres => RenderAlgorithm::RaycastSpheres {
                radius: app.particle_radius(),
            },
            Algorithm::VtkIsosurface => RenderAlgorithm::VtkIsosurface {
                isovalue: app.isovalue(step, seed),
            },
            Algorithm::RaycastIsosurface => RenderAlgorithm::RaycastIsosurface {
                isovalue: app.isovalue(step, seed),
            },
            Algorithm::VtkSlice => RenderAlgorithm::VtkSlice {
                planes: app.slice_planes(step),
            },
            Algorithm::RaycastSlice => RenderAlgorithm::RaycastSlice {
                planes: app.slice_planes(step),
            },
        }
    }

    /// All particle algorithms (the HACC experiments).
    pub fn particle_algorithms() -> [Algorithm; 3] {
        [
            Algorithm::GaussianSplat,
            Algorithm::VtkPoints,
            Algorithm::RaycastSpheres,
        ]
    }

    /// The two isosurface backends (the xRAGE experiments).
    pub fn isosurface_algorithms() -> [Algorithm; 2] {
        [Algorithm::VtkIsosurface, Algorithm::RaycastIsosurface]
    }
}

/// The coupling axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Coupling {
    Tight,
    Intercore,
    Internode,
}

impl Coupling {
    pub fn name(self) -> &'static str {
        self.strategy().name()
    }

    pub fn strategy(self) -> CouplingStrategy {
        match self {
            Coupling::Tight => CouplingStrategy::Tight,
            Coupling::Intercore => CouplingStrategy::Intercore,
            Coupling::Internode => CouplingStrategy::Internode,
        }
    }

    pub fn all() -> [Coupling; 3] {
        [Coupling::Tight, Coupling::Intercore, Coupling::Internode]
    }
}

/// Render-engine tuning axis: the tile scheduler and progressive
/// refinement (DESIGN.md §14). Orthogonal to the algorithm choice — tile
/// size never changes the image, and progressive mode converges to the
/// same image — so sweeps can vary it freely against any other axis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RenderTuning {
    /// Framebuffer tile edge in pixels; `None` uses the renderer default
    /// (16). Must lie in 4..=256.
    #[serde(default)]
    pub tile: Option<usize>,
    /// Initial sampling stride for progressive raycast-spheres refinement
    /// (power of two in 2..=64); `None` renders full resolution in one
    /// pass. Backends without progressive support ignore it.
    #[serde(default)]
    pub progressive_stride: Option<usize>,
}

impl RenderTuning {
    pub fn validate(&self) -> std::result::Result<(), String> {
        if let Some(t) = self.tile {
            if !(eth_render::tile::MIN_TILE..=eth_render::tile::MAX_TILE).contains(&t) {
                return Err(format!(
                    "render.tile {t} outside {}..={}",
                    eth_render::tile::MIN_TILE,
                    eth_render::tile::MAX_TILE
                ));
            }
        }
        if let Some(s) = self.progressive_stride {
            if !s.is_power_of_two() || !(2..=64).contains(&s) {
                return Err(format!(
                    "render.progressive_stride {s} must be a power of two in 2..=64"
                ));
            }
        }
        Ok(())
    }
}

/// A fully-specified experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentSpec {
    pub name: String,
    pub application: Application,
    pub algorithm: Algorithm,
    pub coupling: Coupling,
    /// Ranks for native mode (sim ranks; internode adds paired viz ranks).
    pub ranks: usize,
    pub steps: usize,
    /// Images rendered per step (the camera orbits between images).
    pub images_per_step: usize,
    pub width: usize,
    pub height: usize,
    /// Spatial-sampling ratio in (0, 1].
    pub sampling_ratio: f64,
    /// RNG seed for data generation and sampling.
    pub seed: u64,
    /// Directory PPM artifacts are written into (none = keep in memory).
    pub artifact_dir: Option<PathBuf>,
    /// Quantization-compress blocks crossing a process boundary
    /// (intercore IPC / internode sockets). Bounded-error lossy transport
    /// (see `eth_data::compress`); tight coupling ignores it (data never
    /// leaves the process).
    #[serde(default)]
    pub compress_transport: bool,
    /// Internode only: number of visualization ranks when it differs from
    /// the simulation rank count (Figure 2's "differing numbers of nodes
    /// for each"). `None` pairs one viz rank per sim rank. Each viz rank
    /// receives the blocks of the sim ranks assigned to it round-robin.
    #[serde(default)]
    pub viz_ranks: Option<usize>,
    /// Deterministic fault injection on the data path (intercore and
    /// internode process boundaries; tight coupling has no boundary to
    /// fault). With a plan set, the harness runs fault-tolerant: missed
    /// deadlines and disconnects degrade the affected steps instead of
    /// failing the run, and the outcome reports the degradation.
    #[serde(default)]
    pub fault_plan: Option<FaultPlan>,
    /// In-run rank fault tolerance: heartbeats, step checkpoints, partition
    /// adoption, degraded compositing. Required when the fault plan kills a
    /// rank; harmless (pure overhead accounting) when no fault fires.
    #[serde(default)]
    pub recovery: Option<RecoveryPolicy>,
    /// Planned elasticity: live partition migration between viz ranks or a
    /// viz-rank rescale mid-run (DESIGN.md §13). Requires a recovery policy
    /// — the handoff protocol rides the same heartbeat/control plane — and
    /// a coupling with a viz side (intercore or internode).
    #[serde(default)]
    pub migration: Option<MigrationPlan>,
    /// Render-engine tuning (tile size, progressive refinement); `None`
    /// uses renderer defaults. Never changes converged image content.
    #[serde(default)]
    pub render: Option<RenderTuning>,
    /// Resource governance: staging memory budget (with spill-to-disk),
    /// journal disk quota, and backpressure watermarks. `None` =
    /// unbounded, the historical behavior.
    #[serde(default)]
    pub resources: Option<ResourcePolicy>,
    /// Block codec for data crossing a process boundary. Supersedes the
    /// boolean `compress_transport` (which maps to `Quantize`):
    /// `Lossless` ships full-precision CRC-trailed blocks (smaller than
    /// nothing only in code size, but byte-identical); `Quantize` is the
    /// bounded-error lossy codec. `None` defers to `compress_transport`.
    #[serde(default)]
    pub wire_compression: Option<eth_data::compress::Codec>,
}

impl ExperimentSpec {
    pub fn builder(name: &str) -> ExperimentSpecBuilder {
        ExperimentSpecBuilder::new(name)
    }

    /// Resolved sampling configuration.
    pub fn sampling(&self) -> Result<SamplingSpec> {
        SamplingSpec::new(self.sampling_ratio, SamplingMethod::Random, self.seed)
            .map_err(CoreError::from)
    }

    /// The codec applied to blocks crossing a process boundary, if any:
    /// `wire_compression` when set, else the legacy `compress_transport`
    /// flag (which always meant quantization).
    pub fn wire_codec(&self) -> Option<eth_data::compress::Codec> {
        self.wire_compression.or(self
            .compress_transport
            .then_some(eth_data::compress::Codec::Quantize))
    }

    /// Viz-side rank count at step 0: intercore pairs one viz rank per sim
    /// rank; internode uses the configured split. (Tight has no separate
    /// viz side; its value is only used for validation messages.)
    pub fn initial_viz_count(&self) -> usize {
        match self.coupling {
            Coupling::Internode => self.viz_ranks.unwrap_or(self.ranks).max(1),
            _ => self.ranks,
        }
    }

    /// Largest viz rank count the run ever needs: the initial split, or the
    /// rescale target when a `Rescale` migration grows the viz side.
    pub fn max_viz_count(&self) -> usize {
        let base = self.initial_viz_count();
        match self.migration.map(|m| m.pattern) {
            Some(MigrationPattern::Rescale { viz_ranks, .. }) => base.max(viz_ranks),
            _ => base,
        }
    }

    /// The viz rank that owns sim partition `p` before any migration:
    /// identity for intercore (one viz rank per sim rank), round-robin for
    /// internode.
    pub fn initial_owner(&self, partition: usize) -> usize {
        match self.coupling {
            Coupling::Internode => partition % self.initial_viz_count(),
            _ => partition,
        }
    }

    /// Resolve the migration plan into its ordered handoff list — a pure
    /// function of the spec, so every rank (and the bench baseline) derives
    /// the same schedule independently. Empty when no plan is set.
    pub fn migration_handoffs(&self) -> Vec<Handoff> {
        let Some(plan) = self.migration else {
            return Vec::new();
        };
        let owned_by = |rank: usize| -> Vec<usize> {
            (0..self.ranks).filter(|&p| self.initial_owner(p) == rank).collect()
        };
        match plan.pattern {
            MigrationPattern::Sudden { from, to, at_step } => owned_by(from)
                .into_iter()
                .map(|partition| Handoff { partition, from, to, step: at_step })
                .collect(),
            MigrationPattern::Fluid { from, to, start_step } => owned_by(from)
                .into_iter()
                .enumerate()
                .map(|(i, partition)| Handoff { partition, from, to, step: start_step + i })
                .collect(),
            MigrationPattern::BatchedFluid { from, to, start_step, batch } => owned_by(from)
                .into_iter()
                .enumerate()
                .map(|(i, partition)| Handoff {
                    partition,
                    from,
                    to,
                    step: start_step + i / batch.max(1),
                })
                .collect(),
            MigrationPattern::Rescale { viz_ranks, at_step } => {
                let old = self.initial_viz_count();
                let new = viz_ranks.max(1);
                (0..self.ranks)
                    .filter(|p| p % old != p % new)
                    .map(|partition| Handoff {
                        partition,
                        from: partition % old,
                        to: partition % new,
                        step: at_step,
                    })
                    .collect()
            }
        }
    }

    /// The viz rank *planned* to own partition `p` when rendering step
    /// `step`, assuming every handoff commits. The run-time ownership table
    /// additionally folds in handoffs that aborted (source keeps the
    /// partition) — see the harness.
    pub fn planned_owner(&self, partition: usize, step: usize) -> usize {
        let mut owner = self.initial_owner(partition);
        for h in self.migration_handoffs() {
            if h.partition == partition && h.step <= step {
                owner = h.to;
            }
        }
        owner
    }

    pub fn validate(&self) -> Result<()> {
        if self.ranks == 0 {
            return Err(CoreError::Config("ranks must be >= 1".into()));
        }
        if self.steps == 0 || self.images_per_step == 0 {
            return Err(CoreError::Config(
                "steps and images_per_step must be >= 1".into(),
            ));
        }
        if self.width == 0 || self.height == 0 {
            return Err(CoreError::Config("image must be non-empty".into()));
        }
        if !(self.sampling_ratio > 0.0 && self.sampling_ratio <= 1.0) {
            return Err(CoreError::Config(format!(
                "sampling ratio {} outside (0, 1]",
                self.sampling_ratio
            )));
        }
        if let Some(v) = self.viz_ranks {
            if v == 0 {
                return Err(CoreError::Config("viz_ranks must be >= 1".into()));
            }
            if self.coupling != Coupling::Internode {
                return Err(CoreError::Config(
                    "viz_ranks only applies to internode coupling".into(),
                ));
            }
        }
        if !self.algorithm.accepts(&self.application) {
            return Err(CoreError::Config(format!(
                "algorithm '{}' cannot render this application's data class",
                self.algorithm.name()
            )));
        }
        if let Some(plan) = &self.fault_plan {
            // domain checks (probabilities in [0, 1], non-empty tag window,
            // lossy plans must carry a deadline) live with the plan itself
            plan.validate().map_err(CoreError::Config)?;
        }
        if let Some(recovery) = &self.recovery {
            recovery.validate().map_err(CoreError::Config)?;
        }
        if let Some(render) = &self.render {
            render.validate().map_err(CoreError::Config)?;
        }
        if let Some(resources) = &self.resources {
            resources.validate().map_err(CoreError::Config)?;
        }
        if self.wire_compression.is_some() && self.compress_transport {
            return Err(CoreError::Config(
                "set either wire_compression or the legacy compress_transport \
                 flag, not both (compress_transport means Quantize)"
                    .into(),
            ));
        }
        // A rank kill is contextual: the plan cannot know the run shape, so
        // the spec checks it — the victim and step must exist, the coupling
        // must have independent rank lifetimes, and someone must be
        // listening for the death.
        if let Some(plan) = self.fault_plan.as_ref().filter(|p| p.kill_rank_at_step.is_some()) {
            if self.recovery.is_none() {
                return Err(CoreError::Config(
                    "kill_rank_at_step requires a recovery policy: without \
                     heartbeats nobody detects the death and the run hangs \
                     to its global deadline"
                        .into(),
                ));
            }
            if self.coupling == Coupling::Tight {
                return Err(CoreError::Config(
                    "kill_rank_at_step requires intercore or internode \
                     coupling (tight coupling has one rank lifetime)"
                        .into(),
                ));
            }
            // bound checks (victim and step must exist) live with the plan
            plan.validate_kill(self.ranks, self.steps)
                .map_err(CoreError::Config)?;
        }
        // Migration is contextual in the same way: the schedule must name
        // viz ranks and steps that exist for this run shape.
        if let Some(plan) = &self.migration {
            if plan.handoff_timeout_ms == 0 {
                return Err(CoreError::Config(
                    "migration.handoff_timeout_ms must be >= 1".into(),
                ));
            }
            if self.recovery.is_none() {
                return Err(CoreError::Config(
                    "migration requires a recovery policy: the handoff \
                     protocol rides the heartbeat control plane"
                        .into(),
                ));
            }
            if self.coupling == Coupling::Tight {
                return Err(CoreError::Config(
                    "migration requires intercore or internode coupling \
                     (tight coupling has no viz ranks to move work between)"
                        .into(),
                ));
            }
            let viz = self.initial_viz_count();
            match plan.pattern {
                MigrationPattern::Sudden { from, to, .. }
                | MigrationPattern::Fluid { from, to, .. }
                | MigrationPattern::BatchedFluid { from, to, .. } => {
                    if from == to {
                        return Err(CoreError::Config(
                            "migration source and target viz ranks must differ".into(),
                        ));
                    }
                    if from >= viz || to >= viz {
                        return Err(CoreError::Config(format!(
                            "migration ranks {from} -> {to} outside {viz} viz ranks"
                        )));
                    }
                    if let MigrationPattern::BatchedFluid { batch, .. } = plan.pattern {
                        if batch == 0 {
                            return Err(CoreError::Config(
                                "migration batch must be >= 1".into(),
                            ));
                        }
                    }
                    let handoffs = self.migration_handoffs();
                    if handoffs.is_empty() {
                        return Err(CoreError::Config(format!(
                            "migration source viz rank {from} owns no partitions"
                        )));
                    }
                    if let Some(last) = handoffs.iter().map(|h| h.step).max() {
                        if last >= self.steps {
                            return Err(CoreError::Config(format!(
                                "migration schedule reaches step {last}, outside {} steps",
                                self.steps
                            )));
                        }
                    }
                }
                MigrationPattern::Rescale { viz_ranks, at_step } => {
                    if self.coupling != Coupling::Internode {
                        return Err(CoreError::Config(
                            "rescale migration requires internode coupling \
                             (intercore pairs one viz rank per sim rank)"
                                .into(),
                        ));
                    }
                    if viz_ranks == 0 {
                        return Err(CoreError::Config(
                            "rescale target viz_ranks must be >= 1".into(),
                        ));
                    }
                    if viz_ranks == viz {
                        return Err(CoreError::Config(format!(
                            "rescale to {viz_ranks} viz ranks is a no-op \
                             (run already has {viz})"
                        )));
                    }
                    if at_step == 0 || at_step >= self.steps {
                        return Err(CoreError::Config(format!(
                            "rescale at_step {at_step} must fall strictly inside \
                             the run (1..{})",
                            self.steps
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Builder with sensible defaults for quick experiments.
pub struct ExperimentSpecBuilder {
    spec: ExperimentSpec,
}

impl ExperimentSpecBuilder {
    pub fn new(name: &str) -> Self {
        ExperimentSpecBuilder {
            spec: ExperimentSpec {
                name: name.to_string(),
                application: Application::Hacc { particles: 50_000 },
                algorithm: Algorithm::RaycastSpheres,
                coupling: Coupling::Tight,
                ranks: 2,
                steps: 1,
                images_per_step: 1,
                width: 128,
                height: 128,
                sampling_ratio: 1.0,
                seed: 42,
                artifact_dir: None,
                compress_transport: false,
                viz_ranks: None,
                fault_plan: None,
                recovery: None,
                migration: None,
                render: None,
                resources: None,
                wire_compression: None,
            },
        }
    }

    pub fn application(mut self, app: Application) -> Self {
        self.spec.application = app;
        self
    }

    pub fn algorithm(mut self, alg: Algorithm) -> Self {
        self.spec.algorithm = alg;
        self
    }

    pub fn coupling(mut self, c: Coupling) -> Self {
        self.spec.coupling = c;
        self
    }

    pub fn ranks(mut self, ranks: usize) -> Self {
        self.spec.ranks = ranks;
        self
    }

    pub fn steps(mut self, steps: usize) -> Self {
        self.spec.steps = steps;
        self
    }

    pub fn images_per_step(mut self, n: usize) -> Self {
        self.spec.images_per_step = n;
        self
    }

    pub fn image_size(mut self, width: usize, height: usize) -> Self {
        self.spec.width = width;
        self.spec.height = height;
        self
    }

    pub fn sampling_ratio(mut self, ratio: f64) -> Self {
        self.spec.sampling_ratio = ratio;
        self
    }

    pub fn seed(mut self, seed: u64) -> Self {
        self.spec.seed = seed;
        self
    }

    pub fn artifact_dir(mut self, dir: PathBuf) -> Self {
        self.spec.artifact_dir = Some(dir);
        self
    }

    pub fn compress_transport(mut self, on: bool) -> Self {
        self.spec.compress_transport = on;
        self
    }

    /// Internode with an asymmetric rank split (viz side smaller/larger).
    pub fn viz_ranks(mut self, viz_ranks: usize) -> Self {
        self.spec.viz_ranks = Some(viz_ranks);
        self
    }

    /// Inject faults on the data path and run fault-tolerant.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.spec.fault_plan = Some(plan);
        self
    }

    /// Run with in-run rank fault tolerance (heartbeats + adoption).
    pub fn recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.spec.recovery = Some(policy);
        self
    }

    /// Schedule a live migration or rescale (requires `.recovery(..)`).
    pub fn migration(mut self, plan: MigrationPlan) -> Self {
        self.spec.migration = Some(plan);
        self
    }

    /// Tune the render engine (tile size, progressive refinement).
    pub fn render_tuning(mut self, tuning: RenderTuning) -> Self {
        self.spec.render = Some(tuning);
        self
    }

    /// Govern memory/disk use: staging budget with spill, journal quota,
    /// backpressure watermarks.
    pub fn resources(mut self, policy: ResourcePolicy) -> Self {
        self.spec.resources = Some(policy);
        self
    }

    /// Pick the block codec for process-boundary data explicitly.
    pub fn wire_compression(mut self, codec: eth_data::compress::Codec) -> Self {
        self.spec.wire_compression = Some(codec);
        self
    }

    pub fn build(self) -> Result<ExperimentSpec> {
        self.spec.validate()?;
        Ok(self.spec)
    }
}

/// Camera orbit used by multi-image steps: image `i` of `n` looks at the
/// data from an azimuth rotated by `i/n` of a quarter turn, so successive
/// images differ (the paper renders hundreds of images per step).
pub fn orbit_camera(
    bounds: &eth_data::Aabb,
    width: usize,
    height: usize,
    image_index: usize,
    images_per_step: usize,
) -> eth_render::Camera {
    let center = bounds.center();
    let radius = (bounds.diagonal() * 0.5).max(1e-6);
    let fov_y = 40.0f32;
    let dist = radius / (fov_y.to_radians() * 0.5).tan() * 1.1;
    let frac = image_index as f32 / images_per_step.max(1) as f32;
    let azim = 0.8 + frac * std::f32::consts::FRAC_PI_2;
    let dir = Vec3::new(azim.cos() * 0.85, azim.sin() * 0.85, 0.55).normalized();
    eth_render::Camera::look_at(
        center + dir * dist,
        center,
        Vec3::new(0.0, 0.0, 1.0),
        fov_y,
        width,
        height,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_validate() {
        let spec = ExperimentSpec::builder("t").build().unwrap();
        assert_eq!(spec.ranks, 2);
        assert_eq!(spec.sampling_ratio, 1.0);
    }

    #[test]
    fn builder_rejects_nonsense() {
        assert!(ExperimentSpec::builder("t").ranks(0).build().is_err());
        assert!(ExperimentSpec::builder("t").sampling_ratio(0.0).build().is_err());
        assert!(ExperimentSpec::builder("t").image_size(0, 10).build().is_err());
        // grid algorithm on particle data
        assert!(ExperimentSpec::builder("t")
            .algorithm(Algorithm::VtkIsosurface)
            .build()
            .is_err());
    }

    #[test]
    fn render_tuning_validates_and_round_trips() {
        let ok = RenderTuning {
            tile: Some(32),
            progressive_stride: Some(8),
        };
        let spec = ExperimentSpec::builder("t").render_tuning(ok).build().unwrap();
        assert_eq!(spec.render, Some(ok));

        // out-of-range tile and non-power-of-two stride are rejected
        assert!(ExperimentSpec::builder("t")
            .render_tuning(RenderTuning { tile: Some(2), progressive_stride: None })
            .build()
            .is_err());
        assert!(ExperimentSpec::builder("t")
            .render_tuning(RenderTuning { tile: None, progressive_stride: Some(3) })
            .build()
            .is_err());
        assert!(ExperimentSpec::builder("t")
            .render_tuning(RenderTuning { tile: None, progressive_stride: Some(128) })
            .build()
            .is_err());

        // serde round trip keeps the axis; old specs without it still load
        let json = serde_json::to_string(&spec).unwrap();
        let back: ExperimentSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back.render, Some(ok));
        let legacy = serde_json::to_string(&ExperimentSpec::builder("old").build().unwrap())
            .unwrap()
            .replace("\"render\":null,", "");
        let old: ExperimentSpec = serde_json::from_str(&legacy).unwrap();
        assert_eq!(old.render, None);
    }

    #[test]
    fn resource_policy_validates_and_round_trips() {
        let policy = ResourcePolicy {
            memory_budget_bytes: Some(256 << 20),
            disk_quota_bytes: Some(1 << 30),
            spill_dir: Some(PathBuf::from("/tmp/spill")),
            low_watermark: 0.4,
            high_watermark: 0.8,
        };
        let spec = ExperimentSpec::builder("t").resources(policy.clone()).build().unwrap();
        assert_eq!(spec.resources, Some(policy.clone()));
        assert_eq!(
            policy.high_threshold_bytes(),
            Some((256u64 << 20) * 8 / 10)
        );

        // zero budgets and inverted/out-of-range watermarks are rejected
        assert!(ExperimentSpec::builder("t")
            .resources(ResourcePolicy::with_memory_budget(0))
            .build()
            .is_err());
        assert!(ExperimentSpec::builder("t")
            .resources(ResourcePolicy::with_disk_quota(0))
            .build()
            .is_err());
        assert!(ExperimentSpec::builder("t")
            .resources(ResourcePolicy { low_watermark: 0.9, high_watermark: 0.5, ..Default::default() })
            .build()
            .is_err());
        assert!(ExperimentSpec::builder("t")
            .resources(ResourcePolicy { high_watermark: 1.5, ..Default::default() })
            .build()
            .is_err());

        // serde round trip keeps the axis; old specs without it still load
        let json = serde_json::to_string(&spec).unwrap();
        let back: ExperimentSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back.resources, spec.resources);
        let legacy = serde_json::to_string(&ExperimentSpec::builder("old").build().unwrap())
            .unwrap()
            .replace("\"resources\":null,", "")
            .replace(",\"wire_compression\":null", "");
        let old: ExperimentSpec = serde_json::from_str(&legacy).unwrap();
        assert_eq!(old.resources, None);
        assert_eq!(old.wire_compression, None);
    }

    #[test]
    fn wire_codec_resolution_and_exclusivity() {
        use eth_data::compress::Codec;
        let none = ExperimentSpec::builder("t").build().unwrap();
        assert_eq!(none.wire_codec(), None);
        let legacy = ExperimentSpec::builder("t").compress_transport(true).build().unwrap();
        assert_eq!(legacy.wire_codec(), Some(Codec::Quantize));
        let explicit = ExperimentSpec::builder("t")
            .wire_compression(Codec::Lossless)
            .build()
            .unwrap();
        assert_eq!(explicit.wire_codec(), Some(Codec::Lossless));
        // both knobs at once is a misconfiguration, not a precedence rule
        assert!(ExperimentSpec::builder("t")
            .compress_transport(true)
            .wire_compression(Codec::Lossless)
            .build()
            .is_err());
    }

    #[test]
    fn application_helpers() {
        let hacc = Application::Hacc { particles: 1000 };
        assert_eq!(hacc.num_elements(), 1000);
        assert_eq!(hacc.default_scalar(), "density");
        assert!(hacc.is_particle());
        assert!(hacc.particle_radius() > 0.0);

        let xrage = Application::Xrage { dims: [8, 8, 8] };
        assert_eq!(xrage.num_elements(), 512);
        assert_eq!(xrage.default_scalar(), "temperature");
        assert!(!xrage.is_particle());
        assert_eq!(xrage.slice_planes(0).len(), 2);
        assert!(hacc.slice_planes(0).is_empty());
    }

    #[test]
    fn generation_is_deterministic() {
        let app = Application::Hacc { particles: 500 };
        assert_eq!(app.generate(1, 7).unwrap(), app.generate(1, 7).unwrap());
        let grid = Application::Xrage { dims: [8, 8, 8] };
        assert_eq!(grid.generate(0, 7).unwrap(), grid.generate(0, 7).unwrap());
    }

    #[test]
    fn algorithm_resolution() {
        let app = Application::Xrage { dims: [8, 8, 8] };
        let alg = Algorithm::RaycastIsosurface.resolve(&app, 2, 42);
        match alg {
            RenderAlgorithm::RaycastIsosurface { isovalue } => {
                assert!(isovalue > 300.0, "iso {isovalue}");
            }
            other => panic!("unexpected resolution {other:?}"),
        }
        assert!(Algorithm::VtkPoints.accepts(&Application::Hacc { particles: 1 }));
        assert!(!Algorithm::VtkPoints.accepts(&app));
    }

    #[test]
    fn fault_plan_validation() {
        // a lossy plan without a recv deadline would hang, so it's rejected
        let lossy = FaultPlan::default().with_drop(0.5);
        assert!(ExperimentSpec::builder("t").fault_plan(lossy).build().is_err());
        // out-of-range probabilities, with the field named in the error
        let silly = FaultPlan::seeded(1).with_drop(1.5);
        let err = ExperimentSpec::builder("t").fault_plan(silly).build().unwrap_err();
        assert!(err.to_string().contains("drop_prob"), "{err}");
        let silly = FaultPlan::seeded(1).with_corrupt(-0.01);
        let err = ExperimentSpec::builder("t").fault_plan(silly).build().unwrap_err();
        assert!(err.to_string().contains("corrupt_prob"), "{err}");
        // a delay fault that injects no latency is a misconfiguration
        let silly = FaultPlan::seeded(1).with_delay(0.5, 0);
        assert!(ExperimentSpec::builder("t").fault_plan(silly).build().is_err());
        // seeded plans carry a deadline and pass
        let ok = FaultPlan::seeded(1).with_drop(0.5);
        let spec = ExperimentSpec::builder("t").fault_plan(ok).build().unwrap();
        assert!(spec.fault_plan.is_some());
        // and the plan rides along through serde
        let text = serde_json::to_string(&spec).unwrap();
        let back: ExperimentSpec = serde_json::from_str(&text).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn recovery_policy_defaults_and_validation() {
        let policy = RecoveryPolicy::default();
        assert_eq!(policy.max_rank_losses, 1);
        assert!(policy.adopt);
        assert!(policy.validate().is_ok());
        // empty JSON object fills every default
        let parsed: RecoveryPolicy = serde_json::from_str("{}").unwrap();
        assert_eq!(parsed, policy);
        let bad = RecoveryPolicy {
            max_rank_losses: 0,
            ..Default::default()
        };
        assert!(bad.validate().unwrap_err().contains("max_rank_losses"));
    }

    #[test]
    fn kill_fault_is_validated_against_the_run_shape() {
        let kill = |rank, step| FaultPlan::seeded(1).with_kill_rank_at_step(rank, step);
        let base = || {
            ExperimentSpec::builder("kill")
                .coupling(Coupling::Intercore)
                .ranks(2)
                .steps(3)
                .recovery(RecoveryPolicy::default())
        };
        // valid: intercore, recovery present, victim and step in range
        let spec = base().fault_plan(kill(1, 2)).build().unwrap();
        assert_eq!(spec.fault_plan.unwrap().kill_rank_at_step.unwrap().rank, 1);
        // no recovery policy → nobody detects the death
        let err = ExperimentSpec::builder("kill")
            .coupling(Coupling::Intercore)
            .ranks(2)
            .steps(3)
            .fault_plan(kill(1, 2))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("recovery"), "{err}");
        // tight coupling has one rank lifetime
        let err = ExperimentSpec::builder("kill")
            .ranks(2)
            .steps(3)
            .recovery(RecoveryPolicy::default())
            .fault_plan(kill(1, 2))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("tight"), "{err}");
        // out-of-range victim and step
        assert!(base().fault_plan(kill(5, 0)).build().is_err());
        assert!(base().fault_plan(kill(0, 9)).build().is_err());
        // and a spec with recovery + kill roundtrips through serde
        let spec = base().fault_plan(kill(0, 1)).build().unwrap();
        let text = serde_json::to_string(&spec).unwrap();
        let back: ExperimentSpec = serde_json::from_str(&text).unwrap();
        assert_eq!(spec, back);
        // older spec files without the recovery field still parse
        let mut value: serde::Value = serde_json::from_str(&text).unwrap();
        if let serde::Value::Object(fields) = &mut value {
            fields.retain(|(k, _)| k != "recovery");
            if let Some((_, serde::Value::Object(plan_fields))) =
                fields.iter_mut().find(|(k, _)| k == "fault_plan")
            {
                plan_fields.retain(|(k, _)| k != "kill_rank_at_step");
            }
        }
        let old_text = serde_json::to_string(&value).unwrap();
        let old: ExperimentSpec = serde_json::from_str(&old_text).unwrap();
        assert!(old.recovery.is_none());
        assert!(old.fault_plan.unwrap().kill_rank_at_step.is_none());
    }

    #[test]
    fn migration_plan_is_validated_against_the_run_shape() {
        let base = || {
            ExperimentSpec::builder("mig")
                .coupling(Coupling::Intercore)
                .ranks(3)
                .steps(4)
                .recovery(RecoveryPolicy::default())
        };
        let sudden = |from, to, at| {
            MigrationPlan::new(MigrationPattern::Sudden { from, to, at_step: at })
        };
        // valid intercore sudden migration
        let spec = base().migration(sudden(1, 2, 2)).build().unwrap();
        assert_eq!(spec.migration.unwrap().handoff_timeout_ms, 1_000);
        assert_eq!(
            spec.migration_handoffs(),
            vec![Handoff { partition: 1, from: 1, to: 2, step: 2 }]
        );
        assert_eq!(spec.planned_owner(1, 1), 1);
        assert_eq!(spec.planned_owner(1, 2), 2);
        // migration without recovery has no control plane to ride
        let err = ExperimentSpec::builder("mig")
            .coupling(Coupling::Intercore)
            .ranks(3)
            .steps(4)
            .migration(sudden(1, 2, 2))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("recovery"), "{err}");
        // tight coupling has nothing to migrate between
        let err = ExperimentSpec::builder("mig")
            .ranks(3)
            .steps(4)
            .recovery(RecoveryPolicy::default())
            .migration(sudden(1, 2, 2))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("tight"), "{err}");
        // self-migration, out-of-range ranks and steps
        assert!(base().migration(sudden(1, 1, 2)).build().is_err());
        assert!(base().migration(sudden(1, 9, 2)).build().is_err());
        assert!(base().migration(sudden(1, 2, 9)).build().is_err());
        // zero batch is rejected
        let bad = MigrationPlan::new(MigrationPattern::BatchedFluid {
            from: 0,
            to: 1,
            start_step: 0,
            batch: 0,
        });
        assert!(base().migration(bad).build().is_err());
        // rescale needs internode
        let rescale = MigrationPlan::new(MigrationPattern::Rescale {
            viz_ranks: 2,
            at_step: 2,
        });
        let err = base().migration(rescale).build().unwrap_err();
        assert!(err.to_string().contains("internode"), "{err}");
        // and a no-op rescale is flagged
        let noop = MigrationPlan::new(MigrationPattern::Rescale {
            viz_ranks: 3,
            at_step: 2,
        });
        assert!(ExperimentSpec::builder("mig")
            .coupling(Coupling::Internode)
            .ranks(3)
            .steps(4)
            .recovery(RecoveryPolicy::default())
            .migration(noop)
            .build()
            .is_err());
    }

    #[test]
    fn migration_handoffs_derive_from_the_schedule() {
        // internode, 6 sim ranks onto 2 viz ranks: viz 0 owns {0, 2, 4}
        let base = || {
            ExperimentSpec::builder("mig")
                .coupling(Coupling::Internode)
                .ranks(6)
                .steps(8)
                .viz_ranks(2)
                .recovery(RecoveryPolicy::default())
        };
        let spec = base()
            .migration(MigrationPlan::new(MigrationPattern::Fluid {
                from: 0,
                to: 1,
                start_step: 3,
            }))
            .build()
            .unwrap();
        let steps: Vec<(usize, usize)> = spec
            .migration_handoffs()
            .iter()
            .map(|h| (h.partition, h.step))
            .collect();
        assert_eq!(steps, vec![(0, 3), (2, 4), (4, 5)]);
        // batched: two per step
        let spec = base()
            .migration(MigrationPlan::new(MigrationPattern::BatchedFluid {
                from: 0,
                to: 1,
                start_step: 3,
                batch: 2,
            }))
            .build()
            .unwrap();
        let steps: Vec<(usize, usize)> = spec
            .migration_handoffs()
            .iter()
            .map(|h| (h.partition, h.step))
            .collect();
        assert_eq!(steps, vec![(0, 3), (2, 3), (4, 4)]);
        // rescale 2 -> 3 moves exactly the partitions whose round-robin
        // owner changes
        let spec = base()
            .migration(MigrationPlan::new(MigrationPattern::Rescale {
                viz_ranks: 3,
                at_step: 4,
            }))
            .build()
            .unwrap();
        assert_eq!(spec.max_viz_count(), 3);
        for h in spec.migration_handoffs() {
            assert_eq!(h.from, h.partition % 2);
            assert_eq!(h.to, h.partition % 3);
            assert_eq!(h.step, 4);
            assert_eq!(spec.planned_owner(h.partition, 4), h.to);
        }
        // a fluid schedule that runs off the end of the run is rejected
        assert!(base()
            .migration(MigrationPlan::new(MigrationPattern::Fluid {
                from: 0,
                to: 1,
                start_step: 6,
            }))
            .build()
            .is_err());
        // the plan rides along through serde, and older spec files without
        // the migration field still parse
        let spec = base()
            .migration(MigrationPlan::new(MigrationPattern::Sudden {
                from: 0,
                to: 1,
                at_step: 2,
            }))
            .build()
            .unwrap();
        let text = serde_json::to_string(&spec).unwrap();
        let back: ExperimentSpec = serde_json::from_str(&text).unwrap();
        assert_eq!(spec, back);
        let mut value: serde::Value = serde_json::from_str(&text).unwrap();
        if let serde::Value::Object(fields) = &mut value {
            fields.retain(|(k, _)| k != "migration");
        }
        let old_text = serde_json::to_string(&value).unwrap();
        let old: ExperimentSpec = serde_json::from_str(&old_text).unwrap();
        assert!(old.migration.is_none());
    }

    #[test]
    fn spec_roundtrips_through_json() {
        let spec = ExperimentSpec::builder("json")
            .application(Application::Xrage { dims: [16, 8, 8] })
            .algorithm(Algorithm::VtkSlice)
            .coupling(Coupling::Internode)
            .build()
            .unwrap();
        let text = serde_json::to_string(&spec).unwrap();
        let back: ExperimentSpec = serde_json::from_str(&text).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn orbit_cameras_differ_per_image() {
        let b = eth_data::Aabb::unit();
        let c0 = orbit_camera(&b, 32, 32, 0, 10);
        let c5 = orbit_camera(&b, 32, 32, 5, 10);
        assert_ne!(c0.position, c5.position);
        // both frame the box center
        let (fx, fy, _) = c0.project(b.center()).unwrap();
        assert!((fx - 16.0).abs() < 1.0 && (fy - 16.0).abs() < 1.0);
    }
}
