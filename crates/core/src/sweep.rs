//! Cartesian parameter sweeps over the design space, and the campaign
//! engine that executes them with high throughput.
//!
//! "Our experience … strongly indicate\[s\] the need for a light-weight
//! mechanism to quickly explore large parameter spaces" (Section VIII).
//! A [`Sweep`] takes a base experiment and axes to vary; iterating yields
//! one fully-validated [`ExperimentSpec`] per design point. A [`Campaign`]
//! takes the materialized points and runs them concurrently on a bounded
//! scheduler, sharing staged data between points that differ only on the
//! algorithm / sampling-ratio / coupling axes (see
//! [`crate::harness::RunCaches`]).

use crate::config::{Algorithm, Coupling, ExperimentSpec, ResourcePolicy};
use crate::error::{CoreError, Result};
use crate::harness::{run_native_cached, CacheStats, NativeOutcome, RunCaches};
use crate::journal::{self, Journal, JournalRecord, RecordedOutcome};
use crate::telemetry::CampaignTelemetry;
use eth_data::DataError;
use eth_transport::fault::BackoffShape;
use eth_transport::{RankFailure, TransportError};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

/// A sweep: the cartesian product of the provided axes applied to a base
/// spec. Empty axes keep the base value.
#[derive(Debug, Clone)]
pub struct Sweep {
    base: ExperimentSpec,
    algorithms: Vec<Algorithm>,
    couplings: Vec<Coupling>,
    sampling_ratios: Vec<f64>,
    rank_counts: Vec<usize>,
}

impl Sweep {
    pub fn over(base: ExperimentSpec) -> Sweep {
        Sweep {
            base,
            algorithms: Vec::new(),
            couplings: Vec::new(),
            sampling_ratios: Vec::new(),
            rank_counts: Vec::new(),
        }
    }

    pub fn algorithms(mut self, algorithms: &[Algorithm]) -> Sweep {
        self.algorithms = algorithms.to_vec();
        self
    }

    pub fn couplings(mut self, couplings: &[Coupling]) -> Sweep {
        self.couplings = couplings.to_vec();
        self
    }

    pub fn sampling_ratios(mut self, ratios: &[f64]) -> Sweep {
        self.sampling_ratios = ratios.to_vec();
        self
    }

    pub fn rank_counts(mut self, ranks: &[usize]) -> Sweep {
        self.rank_counts = ranks.to_vec();
        self
    }

    /// Number of design points.
    pub fn len(&self) -> usize {
        let f = |n: usize| n.max(1);
        f(self.algorithms.len())
            * f(self.couplings.len())
            * f(self.sampling_ratios.len())
            * f(self.rank_counts.len())
    }

    /// Always `false`: a sweep with no axes set still yields the base
    /// spec, and every set axis contributes at least one value to the
    /// product, so [`Sweep::specs`] never materializes zero points. (The
    /// previous `len() == 0` form was unreachable — `len()` floors every
    /// axis at 1 — and read as if empty sweeps existed.)
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Materialize every design point, validating each.
    pub fn specs(&self) -> Result<Vec<ExperimentSpec>> {
        let algorithms: Vec<Option<Algorithm>> = axis(&self.algorithms);
        let couplings: Vec<Option<Coupling>> = axis(&self.couplings);
        let ratios: Vec<Option<f64>> = axis(&self.sampling_ratios);
        let ranks: Vec<Option<usize>> = axis(&self.rank_counts);
        let mut out = Vec::with_capacity(self.len());
        for &alg in &algorithms {
            for &coupling in &couplings {
                for &ratio in &ratios {
                    for &rank_count in &ranks {
                        let mut spec = self.base.clone();
                        if let Some(a) = alg {
                            spec.algorithm = a;
                        }
                        if let Some(c) = coupling {
                            spec.coupling = c;
                        }
                        if let Some(r) = ratio {
                            spec.sampling_ratio = r;
                        }
                        if let Some(n) = rank_count {
                            spec.ranks = n;
                        }
                        spec.name = format!(
                            "{}-{}-{}-r{:.2}-n{}",
                            self.base.name,
                            spec.algorithm.name(),
                            spec.coupling.name(),
                            spec.sampling_ratio,
                            spec.ranks
                        );
                        spec.validate()?;
                        out.push(spec);
                    }
                }
            }
        }
        Ok(out)
    }
}

/// An axis: `None` means "keep the base value" (used when unset).
fn axis<T: Copy>(values: &[T]) -> Vec<Option<T>> {
    if values.is_empty() {
        vec![None]
    } else {
        values.iter().copied().map(Some).collect()
    }
}

/// Result of one design point inside a campaign: the native outcome, or
/// the failure that point produced (other points are unaffected).
pub type PointResult = std::result::Result<NativeOutcome, CoreError>;

/// The failure classes a [`RetryPolicy`] can cover. Failures outside
/// these classes (configuration errors, structural data errors) are
/// deterministic — retrying them would burn attempts for nothing, so
/// they always fail the point on the first attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RetryOn {
    /// Receive deadlines and rank wall-clock budget overruns.
    Timeout,
    /// Severed links: disconnects, socket IO failures, bootstrap races.
    Disconnect,
    /// A rank (or the point itself) panicked.
    Panic,
    /// A payload failed its integrity or decode check.
    Corrupt,
    /// Resource exhaustion: a durable write hit the disk quota (or a
    /// real `ENOSPC`), or a staged-block allocation failed against the
    /// memory budget. Worth retrying — pressure is transient: earlier
    /// points release quota and residency as they finish.
    Resource,
}

/// Per-point retry behaviour for a [`Campaign`]. Serde-able, so recovery
/// policy can be swept (and recorded) like any other experiment axis.
///
/// A failed attempt whose error class is in `retry_on` re-enters the
/// admission queue after a jittered exponential backoff; once
/// `max_attempts` attempts are spent the point is **quarantined** — its
/// result slot records [`CoreError::Quarantined`] and the campaign moves
/// on. Errors outside `retry_on` fail the point immediately, so the
/// default policy ([`RetryPolicy::none`]) reproduces single-shot
/// semantics exactly and never quarantines anything.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts per point, including the first (minimum 1).
    #[serde(default = "default_max_attempts")]
    pub max_attempts: u32,
    /// Shape of the between-attempt backoff (jitter is seeded per point).
    #[serde(default)]
    pub backoff: BackoffShape,
    /// Which failure classes are worth retrying.
    #[serde(default)]
    pub retry_on: Vec<RetryOn>,
}

fn default_max_attempts() -> u32 {
    1
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

impl RetryPolicy {
    /// No retries: every point gets exactly one attempt and plain errors.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            backoff: BackoffShape::default(),
            retry_on: Vec::new(),
        }
    }

    /// Retry every transient class up to `max_attempts` total attempts.
    pub fn standard(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            backoff: BackoffShape::default(),
            retry_on: vec![
                RetryOn::Timeout,
                RetryOn::Disconnect,
                RetryOn::Panic,
                RetryOn::Corrupt,
                RetryOn::Resource,
            ],
        }
    }

    /// The failure class of `err`, when it has one.
    pub fn classify(err: &CoreError) -> Option<RetryOn> {
        match err {
            CoreError::Transport(TransportError::Timeout { .. })
            | CoreError::Rank(RankFailure::Hang { .. }) => Some(RetryOn::Timeout),
            CoreError::Transport(
                TransportError::Disconnected { .. }
                | TransportError::Io(_)
                | TransportError::Bootstrap(_),
            ) => Some(RetryOn::Disconnect),
            CoreError::Rank(RankFailure::Panic { .. }) => Some(RetryOn::Panic),
            CoreError::Transport(TransportError::Corrupt { .. } | TransportError::Decode(_))
            | CoreError::Data(DataError::Corrupt(_)) => Some(RetryOn::Corrupt),
            CoreError::DiskFull { .. } | CoreError::OutOfMemory(_) => Some(RetryOn::Resource),
            _ => None,
        }
    }

    /// Does this policy cover retrying `err`?
    fn covers(&self, err: &CoreError) -> bool {
        Self::classify(err).is_some_and(|class| self.retry_on.contains(&class))
    }
}

/// A cooperative cancellation token shared between a campaign and
/// whoever supervises it (the serve layer's drain path, a client
/// disconnect handler, a test). Cancelling is one-way and idempotent.
///
/// Semantics inside the scheduler: points that have not yet been admitted
/// when the token fires are abandoned with [`CoreError::Canceled`] — they
/// consume their FIFO ticket (order stays dense, nobody behind them
/// stalls) but zero slots and zero threads of real work. A point already
/// executing runs to completion and is journaled normally: cancellation
/// never tears a result, so a canceled journaled campaign resumes to
/// byte-identical images.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Fire the token. Idempotent; wakes scheduler threads parked in the
    /// admission queue within one poll interval.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    pub fn is_canceled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// Why a completed design point counts as degraded in
/// [`CampaignOutcome::degraded`]: an involuntary rank loss recovered
/// in-run, or a voluntary (planned) partition migration — operators slice
/// campaign health on this distinction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DegradedReason {
    /// At least one rank died and its partition was adopted or dropped.
    RankLoss,
    /// At least one planned partition handoff committed, or degraded to
    /// "no migration happened" after losing its race with a death.
    PlannedMigration,
}

/// Result of a [`Campaign`] run.
pub struct CampaignOutcome {
    /// One entry per input spec, **in input order** regardless of the
    /// order points actually finished in.
    pub results: Vec<PointResult>,
    /// End-to-end wall time for the whole campaign.
    pub wall_s: f64,
    /// Staging/baseline cache counters accumulated across all points.
    pub cache: CacheStats,
    /// Attempts each point consumed (1 = succeeded or failed terminally
    /// on the first try; restored points keep their recorded count).
    pub attempts: Vec<u32>,
    /// Indices of points that exhausted their retry budget and were set
    /// aside as [`CoreError::Quarantined`].
    pub quarantined: Vec<usize>,
    /// Indices restored from a campaign journal instead of re-run
    /// (always empty outside [`Campaign::run_journaled`] / resume).
    pub restored: Vec<usize>,
    /// Aggregate flight-recorder telemetry for the whole campaign (queue
    /// wait / cache / journal latency histograms, retry and degradation
    /// counters); export with [`CampaignTelemetry::to_prometheus`] or
    /// [`CampaignTelemetry::to_jsonl`].
    pub telemetry: CampaignTelemetry,
    /// The campaign's drained span trace, flow records included: build an
    /// [`eth_obs::MergedTrace`] from it for the stitched cross-rank
    /// Perfetto view and critical-path attribution (`eth serve` exposes
    /// exactly that at `GET /campaigns/{id}/trace`). Empty when the
    /// recorder was disabled for the whole campaign.
    pub trace: eth_obs::Trace,
}

impl CampaignOutcome {
    /// Number of points that failed.
    pub fn failures(&self) -> usize {
        self.results.iter().filter(|r| r.is_err()).count()
    }

    /// The successful outcomes, still in input order.
    pub fn outcomes(&self) -> impl Iterator<Item = &NativeOutcome> {
        self.results.iter().filter_map(|r| r.as_ref().ok())
    }

    /// Indices of points that completed *degraded*: the run finished (no
    /// retry, no quarantine) but either lost a rank and recovered in-run
    /// or rebalanced itself through planned partition handoffs. Disjoint
    /// from [`CampaignOutcome::quarantined`].
    pub fn degraded(&self) -> Vec<usize> {
        self.degraded_reasons().into_iter().map(|(i, _)| i).collect()
    }

    /// [`CampaignOutcome::degraded`] with *why* each point counts: a rank
    /// loss, a planned migration, or both. Indices stay in input order and
    /// appear once, so callers can separate involuntary degradation from
    /// elasticity the operator asked for.
    pub fn degraded_reasons(&self) -> Vec<(usize, Vec<DegradedReason>)> {
        self.results
            .iter()
            .enumerate()
            .filter_map(|(i, r)| {
                let out = r.as_ref().ok()?;
                let d = &out.degradation;
                let mut reasons = Vec::new();
                if d.rank_losses > 0 {
                    reasons.push(DegradedReason::RankLoss);
                }
                if d.migrations > 0 || d.migration_failures > 0 {
                    reasons.push(DegradedReason::PlannedMigration);
                }
                (!reasons.is_empty()).then_some((i, reasons))
            })
            .collect()
    }

    /// Throughput in design points per second (all points, even failed).
    pub fn points_per_sec(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.results.len() as f64 / self.wall_s
        } else {
            0.0
        }
    }
}

/// Executes independent design points concurrently on a bounded scheduler.
///
/// Admission accounts for each point's concurrency appetite: a native run
/// spawns one OS thread per rank (tight), two per rank (intercore: sim +
/// viz sides), or `ranks + viz_ranks` threads (internode), so an 8-rank
/// internode point takes 16 of the campaign's slots while a 1-rank tight
/// point takes one. Points are admitted strictly in input order (FIFO), so
/// a wide point cannot be starved by a stream of narrow ones; results are
/// returned in input order no matter when each point finishes.
///
/// Each point runs through [`run_native_cached`] against a shared
/// [`RunCaches`], so points differing only on the algorithm / ratio /
/// coupling axes share a single staging pass. Determinism: staged data and
/// rendering are pure functions of the spec, so a campaign's images are
/// byte-identical to running each spec alone, sequentially.
///
/// A failing point — including one whose supervised ranks panic or hang
/// (see [`RankFailure`]) — records its error in its result slot and the
/// campaign keeps going.
pub struct Campaign {
    capacity: usize,
    retry: RetryPolicy,
    cancel: Option<CancelToken>,
    resources: Option<ResourcePolicy>,
}

impl Default for Campaign {
    fn default() -> Self {
        Campaign::new()
    }
}

impl Campaign {
    /// Scheduler sized to this host's available parallelism.
    pub fn new() -> Campaign {
        let slots = thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        Campaign::with_capacity(slots)
    }

    /// Scheduler with an explicit slot budget (minimum 1). One slot
    /// roughly corresponds to one runnable rank thread.
    pub fn with_capacity(slots: usize) -> Campaign {
        Campaign {
            capacity: slots.max(1),
            retry: RetryPolicy::none(),
            cancel: None,
            resources: None,
        }
    }

    /// Attach a campaign-level [`ResourcePolicy`]. Its disk quota bounds
    /// the journal (WAL plus persisted results together), and its memory
    /// budget's watermarks gate admission: the scheduler stops admitting
    /// new points while process-wide staged residency sits above the high
    /// watermark and resumes once it drains below the low one. Stalls are
    /// bounded (a stuck gauge cannot deadlock the campaign — the staging
    /// stores self-enforce their budgets regardless) and counted in the
    /// `backpressure_stalls` telemetry counter.
    pub fn with_resources(mut self, resources: ResourcePolicy) -> Campaign {
        self.resources = Some(resources);
        self
    }

    pub fn resources(&self) -> Option<&ResourcePolicy> {
        self.resources.as_ref()
    }

    /// Attach a cancellation token (see [`CancelToken`] for semantics).
    pub fn with_cancel_token(mut self, token: CancelToken) -> Campaign {
        self.cancel = Some(token);
        self
    }

    /// Attach a retry policy (the default is [`RetryPolicy::none`]).
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> Campaign {
        self.retry = RetryPolicy {
            max_attempts: policy.max_attempts.max(1),
            ..policy
        };
        self
    }

    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Slots one design point occupies while running: its total rank
    /// thread count, clamped to the campaign capacity so an over-wide
    /// point still admits (alone) instead of deadlocking.
    pub fn point_cost(&self, spec: &ExperimentSpec) -> usize {
        let ranks = spec.ranks.max(1);
        let threads = match spec.coupling {
            Coupling::Tight => ranks,
            Coupling::Intercore => 2 * ranks,
            Coupling::Internode => ranks + spec.viz_ranks.unwrap_or(ranks),
        };
        threads.clamp(1, self.capacity)
    }

    /// Run every spec with a fresh cache set.
    pub fn run(&self, specs: &[ExperimentSpec]) -> CampaignOutcome {
        self.run_with(specs, &RunCaches::new())
    }

    /// Materialize and run a sweep.
    pub fn run_sweep(&self, sweep: &Sweep) -> Result<CampaignOutcome> {
        Ok(self.run(&sweep.specs()?))
    }

    /// Run every spec against a caller-provided cache set (use this to
    /// share staging across several campaigns over the same data).
    pub fn run_with(&self, specs: &[ExperimentSpec], caches: &RunCaches) -> CampaignOutcome {
        let t0 = Instant::now();
        let prefilled = (0..specs.len()).map(|_| None).collect();
        let (results, attempts, quarantined, trace) =
            self.run_engine(specs, None, prefilled, |_, spec, attempt| {
                run_native_cached(&spec_for_attempt(spec, attempt), caches)
            });
        let cache = caches.stats();
        let telemetry =
            CampaignTelemetry::from_campaign(&trace, &results, &attempts, &quarantined, &[], &cache);
        CampaignOutcome {
            results,
            wall_s: t0.elapsed().as_secs_f64(),
            cache,
            attempts,
            quarantined,
            restored: Vec::new(),
            telemetry,
            trace,
        }
    }

    /// Run with a caller-supplied per-attempt runner instead of
    /// [`run_native_cached`]. This is the hook for sweeping *recovery
    /// policy itself* as a design axis: the runner sees
    /// `(index, spec, attempt)` and can inject deterministic transient
    /// failures around the real execution (see `reproduce
    /// chaos-campaign`). Scheduling, retry, backoff, and quarantine
    /// behave exactly as in [`Campaign::run_with`].
    pub fn run_custom<F>(&self, specs: &[ExperimentSpec], runner: F) -> CampaignOutcome
    where
        F: Fn(usize, &ExperimentSpec, u32) -> PointResult + Sync,
    {
        let t0 = Instant::now();
        let prefilled = (0..specs.len()).map(|_| None).collect();
        let (results, attempts, quarantined, trace) =
            self.run_engine(specs, None, prefilled, runner);
        let cache = CacheStats::default();
        let telemetry =
            CampaignTelemetry::from_campaign(&trace, &results, &attempts, &quarantined, &[], &cache);
        CampaignOutcome {
            results,
            wall_s: t0.elapsed().as_secs_f64(),
            cache,
            attempts,
            quarantined,
            restored: Vec::new(),
            telemetry,
            trace,
        }
    }

    /// [`Campaign::run_with`] with a crash-safe journal in `dir` (see
    /// [`crate::journal`]): every attempt is logged write-ahead, every
    /// finished point's result is persisted and checksummed, and a
    /// journal left by an earlier (killed) run restores its completed
    /// points instead of re-running them. A point whose spec hash changed
    /// since the journal was written — or whose result file is missing or
    /// fails verification — is simply re-run; in-flight and failed points
    /// always re-run.
    pub fn run_journaled(
        &self,
        specs: &[ExperimentSpec],
        caches: &RunCaches,
        dir: &Path,
    ) -> Result<CampaignOutcome> {
        let mut outcome = self.run_journaled_custom(specs, dir, |_, spec, attempt| {
            run_native_cached(&spec_for_attempt(spec, attempt), caches)
        })?;
        // The custom path cannot see the caches; splice the real stats in.
        outcome.cache = caches.stats();
        outcome
            .telemetry
            .counters
            .set("cache_staging_hit_rate", outcome.cache.staging_hit_rate());
        Ok(outcome)
    }

    /// [`Campaign::run_journaled`] with a caller-supplied per-attempt
    /// runner (the journaled analog of [`Campaign::run_custom`]). This is
    /// the entry point the campaign service builds on: the runner can
    /// layer a cross-tenant result memo or chaos injection around the real
    /// execution while keeping the WAL, restore-on-resume, and
    /// byte-identical-results contract intact. The runner MUST be a
    /// deterministic function of `(spec, attempt)` for restored results to
    /// be equivalent to re-runs.
    pub fn run_journaled_custom<F>(
        &self,
        specs: &[ExperimentSpec],
        dir: &Path,
        runner: F,
    ) -> Result<CampaignOutcome>
    where
        F: Fn(usize, &ExperimentSpec, u32) -> PointResult + Sync,
    {
        let t0 = Instant::now();
        let journal = Journal::open(dir)?
            .with_quota(self.resources.as_ref().and_then(|r| r.disk_quota_bytes));
        let hashes: Vec<u64> = specs.iter().map(journal::spec_hash).collect();
        journal::write_manifest(dir, specs, &hashes)?;

        // Replay: the last Finished record per index wins. Only a
        // successful record whose spec hash still matches *and* whose
        // persisted result verifies is worth restoring.
        let mut finished: HashMap<usize, (u64, u32, bool)> = HashMap::new();
        for record in journal::replay(dir)? {
            if let JournalRecord::Finished {
                index,
                spec_hash,
                attempt,
                outcome,
                ..
            } = record
            {
                finished.insert(index, (spec_hash, attempt, outcome == RecordedOutcome::Ok));
            }
        }
        let mut prefilled: Vec<Option<(PointResult, u32)>> =
            (0..specs.len()).map(|_| None).collect();
        let mut restored = Vec::new();
        for (index, spec) in specs.iter().enumerate() {
            let Some(&(hash, attempt, ok)) = finished.get(&index) else {
                continue;
            };
            if !ok || hash != hashes[index] {
                continue; // failed, or the spec changed: re-run
            }
            if let Ok(outcome) = journal::load_result(dir, index, hash, spec) {
                prefilled[index] = Some((Ok(outcome), attempt));
                restored.push(index);
            }
        }

        let (results, attempts, quarantined, trace) =
            self.run_engine(specs, Some(&journal), prefilled, runner);
        let cache = CacheStats::default();
        let telemetry = CampaignTelemetry::from_campaign(
            &trace,
            &results,
            &attempts,
            &quarantined,
            &restored,
            &cache,
        );
        Ok(CampaignOutcome {
            results,
            wall_s: t0.elapsed().as_secs_f64(),
            cache,
            attempts,
            quarantined,
            restored,
            telemetry,
            trace,
        })
    }

    /// Resume (or start) a journaled campaign over `sweep` in `dir` with
    /// a fresh cache set.
    pub fn resume(&self, dir: &Path, sweep: &Sweep) -> Result<CampaignOutcome> {
        self.run_journaled(&sweep.specs()?, &RunCaches::new(), dir)
    }

    /// The scheduler core shared by all entry points. `runner` executes
    /// one attempt of one point; `prefilled` slots (restored from a
    /// journal) keep their value and only burn their admission ticket.
    ///
    /// Retry flow: a failed attempt covered by the retry policy releases
    /// its slots, is journaled as a failed attempt, sleeps its jittered
    /// backoff, then takes a *fresh* ticket and rejoins the FIFO queue —
    /// so retries cannot starve first attempts and admission stays
    /// strictly ordered. Once `max_attempts` are spent the point is
    /// quarantined and the campaign proceeds.
    fn run_engine<F>(
        &self,
        specs: &[ExperimentSpec],
        journal: Option<&Journal>,
        prefilled: Vec<Option<(PointResult, u32)>>,
        runner: F,
    ) -> (Vec<PointResult>, Vec<u32>, Vec<usize>, eth_obs::Trace)
    where
        F: Fn(usize, &ExperimentSpec, u32) -> PointResult + Sync,
    {
        let sem = WeightedSemaphore::new(self.capacity, specs.len());
        let policy = &self.retry;
        let cancel = self.cancel.as_ref();
        // Admission watermarks from the campaign resource policy: stop
        // admitting while process-wide staged residency is above `high`,
        // resume once it drains below `low`.
        let pressure = self
            .resources
            .as_ref()
            .and_then(|r| Some((r.high_threshold_bytes()?, r.low_threshold_bytes()?)));
        // Campaign flight recorder: every point thread stacks it on top
        // of whatever sinks the caller attached (e.g. the CLI's --trace
        // recorder), so the campaign sees its own spans and the caller
        // still sees everything.
        let recorder = eth_obs::Recorder::new();
        let obs = eth_obs::current_context();
        let mut slots = prefilled;
        thread::scope(|s| {
            for (index, (spec, slot)) in specs.iter().zip(slots.iter_mut()).enumerate() {
                let sem = &sem;
                let runner = &runner;
                let cost = self.point_cost(spec);
                if slot.is_some() {
                    // Restored from the journal: consume the admission
                    // ticket (tickets must stay dense) without occupying
                    // any slots or re-running anything.
                    s.spawn(move || sem.acquire(index, 0, None));
                    continue;
                }
                let obs = obs.clone();
                let recorder = recorder.clone();
                s.spawn(move || {
                    let _ctx = obs.attach();
                    let _rec = recorder.attach();
                    let hash = journal.map(|_| journal::spec_hash(spec)).unwrap_or(0);
                    let mut backoff = policy
                        .backoff
                        .instantiate(0x9E37_79B9_7F4A_7C15 ^ index as u64, policy.max_attempts);
                    let fail_at = spec
                        .fault_plan
                        .as_ref()
                        .and_then(|p| p.disk_full_at_append);
                    let mut attempt = 1u32;
                    let mut ticket = index;
                    loop {
                        // Backpressure: hold this point at the gate while
                        // the process sits above the high watermark. The
                        // wait is bounded — staging stores self-enforce
                        // their budgets, so a stuck gauge degrades to
                        // normal admission instead of deadlocking.
                        if let Some((high, low)) = pressure {
                            if eth_data::staging::process_resident_bytes() >= high {
                                eth_obs::count("backpressure_stalls", 1.0);
                                let gate = Instant::now();
                                while eth_data::staging::process_resident_bytes() > low
                                    && gate.elapsed() < BACKPRESSURE_STALL_CAP
                                    && !cancel.is_some_and(|c| c.is_canceled())
                                {
                                    thread::sleep(Duration::from_millis(5));
                                }
                            }
                        }
                        {
                            // time spent waiting for slots = queue wait
                            let _wait = eth_obs::span(eth_obs::Phase::QueueWait);
                            if !sem.acquire(ticket, cost, cancel) {
                                // Canceled while queued: the ticket is
                                // consumed (the line stays dense) but the
                                // point never starts. No Finished record
                                // is journaled, so a resume re-runs it.
                                *slot = Some((Err(CoreError::Canceled), attempt));
                                return;
                            }
                        }
                        if let Some(j) = journal {
                            // Write-ahead: losing an append costs a re-run
                            // on resume, never a wrong result, so appends
                            // are best-effort from the scheduler's side.
                            let _ = j.append_for_point(
                                Some(index),
                                fail_at,
                                &JournalRecord::Started {
                                    index,
                                    spec_hash: hash,
                                    attempt,
                                },
                            );
                        }
                        let t = Instant::now();
                        let result =
                            catch_unwind(AssertUnwindSafe(|| runner(index, spec, attempt)));
                        sem.release(cost);
                        let elapsed_s = t.elapsed().as_secs_f64();
                        // A panic that escapes the harness (i.e. outside
                        // any rank supervision) is contained here: it
                        // becomes this point's failure instead of
                        // poisoning the campaign.
                        let result = result.unwrap_or_else(|payload| {
                            Err(CoreError::Rank(RankFailure::Panic {
                                rank: index,
                                message: panic_message(payload),
                            }))
                        });
                        // A success that cannot be persisted is not a
                        // success: a quota hit (or injected disk-full)
                        // while saving the result converts the point to a
                        // resource failure, so it rides the same
                        // degrade/retry/quarantine path as any other
                        // transient fault instead of silently dropping
                        // durability.
                        let result = match result {
                            Ok(outcome) => match journal {
                                Some(j) => j
                                    .save_result_governed(index, fail_at, hash, &outcome)
                                    .map(|()| outcome),
                                None => Ok(outcome),
                            },
                            Err(err) => Err(err),
                        };
                        match result {
                            Ok(outcome) => {
                                if let Some(j) = journal {
                                    let _ = j.append_for_point(
                                        Some(index),
                                        fail_at,
                                        &JournalRecord::Finished {
                                            index,
                                            spec_hash: hash,
                                            attempt,
                                            elapsed_s,
                                            outcome: RecordedOutcome::Ok,
                                        },
                                    );
                                    eth_obs::count(
                                        "journal_quota_used",
                                        j.quota_used() as f64,
                                    );
                                }
                                *slot = Some((Ok(outcome), attempt));
                                return;
                            }
                            Err(err) => {
                                let retryable = policy.covers(&err);
                                let canceled =
                                    cancel.is_some_and(|c| c.is_canceled());
                                if retryable && attempt < policy.max_attempts && !canceled {
                                    if let Some(j) = journal {
                                        let _ = j.append_for_point(
                                            Some(index),
                                            fail_at,
                                            &JournalRecord::Finished {
                                                index,
                                                spec_hash: hash,
                                                attempt,
                                                elapsed_s,
                                                outcome: RecordedOutcome::Err {
                                                    error: err.to_string(),
                                                    quarantined: false,
                                                },
                                            },
                                        );
                                    }
                                    attempt += 1;
                                    if let Some(delay) = backoff.next_delay() {
                                        let _bo = eth_obs::span(eth_obs::Phase::Backoff);
                                        thread::sleep(delay);
                                    }
                                    // fresh ticket, taken right before
                                    // re-acquiring so the FIFO line never
                                    // waits on a sleeping retry
                                    ticket = sem.take_ticket();
                                    continue;
                                }
                                let final_err = if canceled
                                    && retryable
                                    && attempt < policy.max_attempts
                                {
                                    // Retry budget remained, but the token
                                    // fired: the point was abandoned, not
                                    // quarantined — a resume retries it.
                                    CoreError::Canceled
                                } else if retryable {
                                    CoreError::Quarantined {
                                        attempts: attempt,
                                        last_error: Box::new(err),
                                    }
                                } else {
                                    err
                                };
                                if let Some(j) = journal {
                                    let _ = j.append_for_point(
                                        Some(index),
                                        fail_at,
                                        &JournalRecord::Finished {
                                            index,
                                            spec_hash: hash,
                                            attempt,
                                            elapsed_s,
                                            outcome: RecordedOutcome::Err {
                                                error: final_err.to_string(),
                                                quarantined: matches!(
                                                    final_err,
                                                    CoreError::Quarantined { .. }
                                                ),
                                            },
                                        },
                                    );
                                    eth_obs::count(
                                        "journal_quota_used",
                                        j.quota_used() as f64,
                                    );
                                }
                                *slot = Some((Err(final_err), attempt));
                                return;
                            }
                        }
                    }
                });
            }
        });
        let mut results = Vec::with_capacity(slots.len());
        let mut attempts = Vec::with_capacity(slots.len());
        let mut quarantined = Vec::new();
        for (index, slot) in slots.into_iter().enumerate() {
            let (result, tries) =
                slot.expect("every point thread writes its slot before exiting");
            if matches!(result, Err(CoreError::Quarantined { .. })) {
                quarantined.push(index);
            }
            results.push(result);
            attempts.push(tries);
        }
        (results, attempts, quarantined, recorder.take())
    }
}

/// Longest a single admission will stall at the backpressure gate. The
/// staging stores self-enforce their budgets, so admitting past a gauge
/// that refuses to drain (e.g. a long-lived cache pinning residency) is
/// safe — the gate trades a bounded delay for pacing, never correctness.
const BACKPRESSURE_STALL_CAP: Duration = Duration::from_secs(2);

/// The spec an attempt actually runs: attempt 1 is the input spec
/// bit-for-bit (so single-shot and campaign runs agree), while later
/// attempts mix the attempt number into the fault plan's seed — a retry
/// faces a *fresh* (but still deterministic) fault schedule instead of
/// deterministically re-losing the same messages forever.
pub fn spec_for_attempt(spec: &ExperimentSpec, attempt: u32) -> ExperimentSpec {
    if attempt <= 1 {
        return spec.clone();
    }
    let mut spec = spec.clone();
    if let Some(plan) = spec.fault_plan.as_mut() {
        plan.seed ^= (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
    spec
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic payload".to_string())
}

/// Recover a mutex guard whether or not the lock is poisoned. The
/// scheduler's shared state is two integers whose invariants are restored
/// before every unlock, so a panic in an unrelated holder (the campaign
/// catches point panics *around* this lock, but a panic between
/// `acquire` and `release` — e.g. inside a journal append — would poison
/// it) must not cascade `PoisonError` unwinds into every other queued
/// point. See the `poisoned_scheduler_lock_does_not_cascade` test.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Counting semaphore with weighted, strictly-FIFO admission. Tickets are
/// issued densely: the first `first_free_ticket` tickets belong to the
/// initial points (their input indices); retries draw fresh tickets from
/// [`WeightedSemaphore::take_ticket`], which keeps the line dense and
/// ordered — a retry rejoins at the back of the queue.
struct WeightedSemaphore {
    state: Mutex<SemState>,
    ready: Condvar,
    next_ticket: AtomicUsize,
}

struct SemState {
    available: usize,
    now_serving: usize,
}

impl WeightedSemaphore {
    fn new(capacity: usize, first_free_ticket: usize) -> WeightedSemaphore {
        WeightedSemaphore {
            state: Mutex::new(SemState {
                available: capacity,
                now_serving: 0,
            }),
            ready: Condvar::new(),
            next_ticket: AtomicUsize::new(first_free_ticket),
        }
    }

    /// Claim the next ticket in line. The caller MUST proceed to
    /// [`WeightedSemaphore::acquire`] with it promptly — an issued but
    /// never-acquired ticket would stall everyone behind it.
    fn take_ticket(&self) -> usize {
        self.next_ticket.fetch_add(1, Ordering::Relaxed)
    }

    /// Block until ticket `ticket` is at the head of the line **and**
    /// `cost` slots are free, or — with a cancel token attached — until
    /// the token fires and the ticket reaches the head. Tickets must be
    /// acquired exactly once each, numbered densely from 0 — the campaign
    /// uses the point index.
    ///
    /// Returns `true` when slots were actually taken; `false` when the
    /// acquire was canceled, in which case the ticket is still consumed
    /// (with zero cost, so the line behind it keeps moving) and the caller
    /// must NOT call [`WeightedSemaphore::release`].
    fn acquire(&self, ticket: usize, cost: usize, cancel: Option<&CancelToken>) -> bool {
        let mut st = lock_recover(&self.state);
        loop {
            let canceled = cancel.is_some_and(|c| c.is_canceled());
            if st.now_serving == ticket && (canceled || st.available >= cost) {
                if !canceled {
                    st.available -= cost;
                }
                st.now_serving += 1;
                self.ready.notify_all();
                return !canceled;
            }
            st = if cancel.is_some() {
                // Poll the token: cancellation has no hook into this
                // condvar, so bounded waits keep abandonment latency at
                // one interval without a wake-up channel.
                self.ready
                    .wait_timeout(st, Duration::from_millis(20))
                    .unwrap_or_else(PoisonError::into_inner)
                    .0
            } else {
                self.ready.wait(st).unwrap_or_else(PoisonError::into_inner)
            };
        }
    }

    fn release(&self, cost: usize) {
        let mut st = lock_recover(&self.state);
        st.available += cost;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Application;

    fn base() -> ExperimentSpec {
        ExperimentSpec::builder("sweep")
            .application(Application::Hacc { particles: 1_000 })
            .build()
            .unwrap()
    }

    #[test]
    fn empty_sweep_is_just_the_base() {
        let sweep = Sweep::over(base());
        let specs = sweep.specs().unwrap();
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].algorithm, base().algorithm);
    }

    #[test]
    fn cartesian_product_size() {
        let sweep = Sweep::over(base())
            .algorithms(&Algorithm::particle_algorithms())
            .sampling_ratios(&[1.0, 0.5, 0.25])
            .couplings(&Coupling::all());
        assert_eq!(sweep.len(), 3 * 3 * 3);
        assert_eq!(sweep.specs().unwrap().len(), 27);
    }

    #[test]
    fn names_are_unique() {
        let specs = Sweep::over(base())
            .algorithms(&Algorithm::particle_algorithms())
            .rank_counts(&[1, 2, 4])
            .specs()
            .unwrap();
        let mut names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), specs.len());
    }

    #[test]
    fn invalid_points_are_rejected() {
        // grid algorithm against a particle base application
        let sweep = Sweep::over(base()).algorithms(&[Algorithm::VtkIsosurface]);
        assert!(sweep.specs().is_err());
    }

    #[test]
    fn is_empty_is_honest_and_len_matches_specs() {
        // A sweep is never empty: the base point always survives.
        let bare = Sweep::over(base());
        assert!(!bare.is_empty());
        assert_eq!(bare.len(), bare.specs().unwrap().len());
        // ...including when axes are explicitly set to empty slices
        // (which means "keep the base value", not "zero points").
        let degenerate = Sweep::over(base()).algorithms(&[]).sampling_ratios(&[]);
        assert!(!degenerate.is_empty());
        assert_eq!(degenerate.len(), 1);
        assert_eq!(degenerate.len(), degenerate.specs().unwrap().len());
        // and len() tracks specs() on real products too
        let product = Sweep::over(base())
            .algorithms(&Algorithm::particle_algorithms())
            .sampling_ratios(&[1.0, 0.5])
            .rank_counts(&[1, 2]);
        assert!(!product.is_empty());
        assert_eq!(product.len(), 12);
        assert_eq!(product.len(), product.specs().unwrap().len());
    }

    #[test]
    fn point_cost_accounts_for_coupling_threads() {
        let c = Campaign::with_capacity(16);
        let mut spec = base();
        spec.ranks = 4;
        spec.coupling = Coupling::Tight;
        assert_eq!(c.point_cost(&spec), 4);
        spec.coupling = Coupling::Intercore;
        assert_eq!(c.point_cost(&spec), 8);
        spec.coupling = Coupling::Internode;
        assert_eq!(c.point_cost(&spec), 8); // 4 sim + 4 paired viz
        spec.viz_ranks = Some(1);
        assert_eq!(c.point_cost(&spec), 5); // 4 sim + 1 viz
        // an over-wide point clamps to capacity instead of deadlocking
        let tiny = Campaign::with_capacity(2);
        spec.viz_ranks = None;
        assert_eq!(tiny.point_cost(&spec), 2);
    }

    #[test]
    fn campaign_isolates_failing_points() {
        let mut good = base();
        good.ranks = 1;
        good.application = Application::Hacc { particles: 800 };
        good.width = 24;
        good.height = 24;
        // an invalid point: zero sampling ratio fails validation inside
        // run_native_cached, not up front in specs()
        let mut bad = good.clone();
        bad.sampling_ratio = 0.0;
        let out = Campaign::with_capacity(4).run(&[good.clone(), bad, good]);
        assert_eq!(out.results.len(), 3);
        assert_eq!(out.failures(), 1);
        assert!(out.results[0].is_ok());
        assert!(out.results[1].is_err(), "invalid point must fail in place");
        assert!(out.results[2].is_ok(), "failure must not poison later points");
        assert_eq!(out.outcomes().count(), 2);
        assert!(out.wall_s > 0.0);
        assert!(out.points_per_sec() > 0.0);
    }

    #[test]
    fn campaign_shares_staging_across_axes() {
        let specs = Sweep::over(base())
            .algorithms(&Algorithm::particle_algorithms())
            .sampling_ratios(&[1.0, 0.5])
            .specs()
            .unwrap();
        let out = Campaign::with_capacity(8).run(&specs);
        assert_eq!(out.failures(), 0);
        // every point shares one (application, seed, steps, ranks) key:
        // exactly one staging pass, all the rest hits
        assert_eq!(out.cache.staging_misses, 1);
        assert_eq!(out.cache.staging_hits, specs.len() as u64 - 1);
        assert!(out.cache.staging_hit_rate() >= (specs.len() - 1) as f64 / specs.len() as f64);
    }

    #[test]
    fn retry_policy_roundtrips_through_serde() {
        let policy = RetryPolicy::standard(3);
        let text = serde_json::to_string(&policy).unwrap();
        let back: RetryPolicy = serde_json::from_str(&text).unwrap();
        assert_eq!(policy, back);
        // defaults reproduce the no-retry policy
        let empty: RetryPolicy = serde_json::from_str("{}").unwrap();
        assert_eq!(empty, RetryPolicy::none());
    }

    #[test]
    fn error_classification_covers_the_transient_classes() {
        use std::time::Duration;
        let timeout = CoreError::Transport(TransportError::Timeout {
            peer: 0,
            elapsed: Duration::from_millis(1),
        });
        assert_eq!(RetryPolicy::classify(&timeout), Some(RetryOn::Timeout));
        let hang = CoreError::Rank(RankFailure::Hang {
            rank: 0,
            waited: Duration::from_millis(1),
            last_step: None,
        });
        assert_eq!(RetryPolicy::classify(&hang), Some(RetryOn::Timeout));
        let gone = CoreError::Transport(TransportError::Disconnected { peer: 1 });
        assert_eq!(RetryPolicy::classify(&gone), Some(RetryOn::Disconnect));
        let boom = CoreError::Rank(RankFailure::Panic {
            rank: 0,
            message: "x".into(),
        });
        assert_eq!(RetryPolicy::classify(&boom), Some(RetryOn::Panic));
        let bad = CoreError::Transport(TransportError::Corrupt {
            peer: 0,
            detail: "checksum".into(),
        });
        assert_eq!(RetryPolicy::classify(&bad), Some(RetryOn::Corrupt));
        // deterministic failures are never retryable
        let cfg = CoreError::Config("bad ratio".into());
        assert_eq!(RetryPolicy::classify(&cfg), None);
        assert!(!RetryPolicy::standard(3).covers(&cfg));
        assert!(!RetryPolicy::none().covers(&timeout));
    }

    fn small_point() -> ExperimentSpec {
        let mut spec = base();
        spec.ranks = 1;
        spec.application = Application::Hacc { particles: 800 };
        spec.width = 24;
        spec.height = 24;
        spec
    }

    fn injected_timeout() -> CoreError {
        CoreError::Transport(TransportError::Timeout {
            peer: 0,
            elapsed: std::time::Duration::from_millis(1),
        })
    }

    #[test]
    fn retry_recovers_and_hits_the_caches() {
        // Attempt 1 does its staging work, then "fails" with a transient
        // error; attempt 2 must succeed AND be served from RunCaches — a
        // retry never re-stages.
        let specs = vec![small_point()];
        let caches = RunCaches::new();
        let campaign = Campaign::with_capacity(4).with_retry_policy(RetryPolicy::standard(3));
        let prefilled = (0..specs.len()).map(|_| None).collect();
        let (results, attempts, quarantined, _trace) =
            campaign.run_engine(&specs, None, prefilled, |_, spec, attempt| {
                let out = run_native_cached(spec, &caches)?;
                if attempt == 1 {
                    return Err(injected_timeout());
                }
                Ok(out)
            });
        assert!(results[0].is_ok(), "{:?}", results[0].as_ref().err());
        assert_eq!(attempts, vec![2]);
        assert!(quarantined.is_empty());
        let stats = caches.stats();
        assert_eq!(stats.staging_misses, 1, "retry re-staged instead of hitting the cache");
        assert_eq!(stats.staging_hits, 1);
    }

    #[test]
    fn exhausted_retries_quarantine_and_the_campaign_proceeds() {
        let specs = vec![small_point(), small_point()];
        let caches = RunCaches::new();
        let campaign = Campaign::with_capacity(4).with_retry_policy(RetryPolicy::standard(3));
        let prefilled = (0..specs.len()).map(|_| None).collect();
        // point 0 always times out; point 1 is healthy
        let (results, attempts, quarantined, _trace) =
            campaign.run_engine(&specs, None, prefilled, |index, spec, _| {
                if index == 0 {
                    return Err(injected_timeout());
                }
                run_native_cached(spec, &caches)
            });
        match &results[0] {
            Err(CoreError::Quarantined { attempts, last_error }) => {
                assert_eq!(*attempts, 3);
                assert!(matches!(
                    **last_error,
                    CoreError::Transport(TransportError::Timeout { .. })
                ));
            }
            Err(other) => panic!("expected quarantine, got {other}"),
            Ok(_) => panic!("expected quarantine, got success"),
        }
        assert!(results[1].is_ok(), "quarantine must not poison other points");
        assert_eq!(attempts, vec![3, 1]);
        assert_eq!(quarantined, vec![0]);
    }

    #[test]
    fn non_retryable_failures_are_not_quarantined() {
        // even under an aggressive policy, a deterministic failure gets
        // exactly one attempt and a plain error
        let mut bad = small_point();
        bad.sampling_ratio = 0.0;
        let campaign = Campaign::with_capacity(2).with_retry_policy(RetryPolicy::standard(5));
        let out = campaign.run(&[bad]);
        assert_eq!(out.attempts, vec![1]);
        assert!(out.quarantined.is_empty());
        assert!(matches!(out.results[0], Err(CoreError::Config(_))));
    }

    #[test]
    fn journaled_run_restores_completed_points() {
        let dir = std::env::temp_dir().join(format!(
            "eth-sweep-journal-{:x}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut specs = vec![small_point()];
        for (i, ratio) in [0.5, 0.25].iter().enumerate() {
            let mut s = small_point();
            s.sampling_ratio = *ratio;
            s.name = format!("sweep-j{i}");
            specs.push(s);
        }
        let campaign = Campaign::with_capacity(4);
        let first = campaign.run_journaled(&specs, &RunCaches::new(), &dir).unwrap();
        assert_eq!(first.failures(), 0);
        assert!(first.restored.is_empty());

        // second run restores everything, byte-identically, running nothing
        let second = campaign.run_journaled(&specs, &RunCaches::new(), &dir).unwrap();
        assert_eq!(second.restored, vec![0, 1, 2]);
        assert_eq!(second.cache.staging_misses, 0, "restored run must not stage");
        for (a, b) in first.results.iter().zip(&second.results) {
            assert_eq!(a.as_ref().unwrap().images, b.as_ref().unwrap().images);
        }

        // editing one spec invalidates exactly that point
        specs[1].seed += 1;
        let third = campaign.run_journaled(&specs, &RunCaches::new(), &dir).unwrap();
        assert_eq!(third.restored, vec![0, 2]);
        assert_eq!(third.failures(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn poisoned_scheduler_lock_does_not_cascade() {
        // Regression: a panic while holding the semaphore's state lock
        // used to poison it, turning every later `.lock().unwrap()` into
        // a panic across unrelated points. The recovering guard must keep
        // the scheduler serviceable.
        let sem = std::sync::Arc::new(WeightedSemaphore::new(4, 2));
        let poisoner = sem.clone();
        let _ = thread::spawn(move || {
            let _guard = poisoner.state.lock().unwrap();
            panic!("poison the scheduler state lock");
        })
        .join();
        assert!(sem.state.is_poisoned(), "setup: lock must actually be poisoned");
        // acquire and release still work for everyone else
        assert!(sem.acquire(0, 2, None));
        sem.release(2);
        assert!(sem.acquire(1, 1, None));
        sem.release(1);
        // and a full campaign over the poisoned-lock scenario completes:
        // point 0 panics inside the runner; point 1 must still run.
        let specs = vec![small_point(), small_point()];
        let campaign = Campaign::with_capacity(2);
        let prefilled = (0..specs.len()).map(|_| None).collect();
        let (results, ..) = campaign.run_engine(&specs, None, prefilled, |index, spec, _| {
            if index == 0 {
                panic!("point panic must stay contained");
            }
            run_native_cached(spec, &RunCaches::new())
        });
        assert!(matches!(
            results[0],
            Err(CoreError::Rank(RankFailure::Panic { .. }))
        ));
        assert!(results[1].is_ok(), "panic poisoned an unrelated point");
    }

    #[test]
    fn cancel_token_abandons_unstarted_points() {
        let token = CancelToken::new();
        // capacity 1 serializes the points; the first point cancels the
        // campaign while running, so every later point must be abandoned
        // without its runner ever executing.
        let campaign = Campaign::with_capacity(1).with_cancel_token(token.clone());
        let specs = vec![small_point(), small_point(), small_point()];
        let ran = std::sync::Arc::new(AtomicUsize::new(0));
        let ran2 = ran.clone();
        let caches = RunCaches::new();
        let prefilled = (0..specs.len()).map(|_| None).collect();
        let token2 = token.clone();
        let (results, attempts, quarantined, _) =
            campaign.run_engine(&specs, None, prefilled, move |index, spec, _| {
                ran2.fetch_add(1, Ordering::SeqCst);
                let out = run_native_cached(spec, &caches);
                if index == 0 {
                    token2.cancel();
                }
                out
            });
        assert!(results[0].is_ok(), "in-flight point must complete");
        for r in &results[1..] {
            assert!(matches!(r, Err(CoreError::Canceled)), "got {r:?}");
        }
        assert_eq!(ran.load(Ordering::SeqCst), 1, "canceled points must not run");
        assert_eq!(attempts, vec![1, 1, 1]);
        assert!(quarantined.is_empty());
        assert!(token.is_canceled());
    }

    #[test]
    fn cancel_token_preempts_retries() {
        // A retryable failure after the token fired is abandoned as
        // Canceled (budget left unspent), never quarantined.
        let token = CancelToken::new();
        let campaign = Campaign::with_capacity(2)
            .with_retry_policy(RetryPolicy::standard(5))
            .with_cancel_token(token.clone());
        let token2 = token.clone();
        let out = campaign.run_custom(&[small_point()], move |_, _, _| {
            token2.cancel();
            Err(injected_timeout())
        });
        assert!(matches!(out.results[0], Err(CoreError::Canceled)));
        assert_eq!(out.attempts, vec![1], "no retry after cancellation");
        assert!(out.quarantined.is_empty());
    }

    #[test]
    fn canceled_journaled_campaign_resumes_byte_identical() {
        let dir = std::env::temp_dir().join(format!(
            "eth-sweep-cancel-{:x}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .subsec_nanos()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut specs = vec![small_point()];
        for i in 0..2 {
            let mut s = small_point();
            s.sampling_ratio = 0.5 - 0.25 * i as f64;
            s.name = format!("cancel-{i}");
            specs.push(s);
        }
        // First pass: cancel after point 0 completes; later points abandon.
        let token = CancelToken::new();
        let campaign = Campaign::with_capacity(1).with_cancel_token(token.clone());
        let caches = RunCaches::new();
        let token2 = token.clone();
        let interrupted = campaign
            .run_journaled_custom(&specs, &dir, move |index, spec, _| {
                let out = run_native_cached(spec, &caches);
                if index == 0 {
                    token2.cancel();
                }
                out
            })
            .unwrap();
        assert!(interrupted.results[0].is_ok());
        assert!(matches!(interrupted.results[1], Err(CoreError::Canceled)));

        // Resume without the token: canceled points re-run, the finished
        // one restores, and the images match an undisturbed campaign.
        let resumed = Campaign::with_capacity(1)
            .run_journaled(&specs, &RunCaches::new(), &dir)
            .unwrap();
        assert_eq!(resumed.restored, vec![0]);
        assert_eq!(resumed.failures(), 0);
        let undisturbed = Campaign::with_capacity(1).run(&specs);
        for (a, b) in resumed.results.iter().zip(&undisturbed.results) {
            assert_eq!(a.as_ref().unwrap().images, b.as_ref().unwrap().images);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resource_errors_classify_and_standard_policy_covers_them() {
        let df = CoreError::DiskFull {
            what: "result write".into(),
            needed: 4096,
            used: 100,
            quota: 1000,
        };
        assert_eq!(RetryPolicy::classify(&df), Some(RetryOn::Resource));
        let oom = CoreError::OutOfMemory("staging block 3".into());
        assert_eq!(RetryPolicy::classify(&oom), Some(RetryOn::Resource));
        assert!(RetryPolicy::standard(3).covers(&df));
        assert!(RetryPolicy::standard(3).covers(&oom));
        assert!(!RetryPolicy::none().covers(&df));
    }

    #[test]
    fn injected_disk_full_retries_to_recovery_and_resumes_byte_identical() {
        let dir = std::env::temp_dir().join(format!(
            "eth-sweep-diskfull-{:x}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut spec = small_point();
        // Ordinal 1 for this point is attempt 1's result write (0 was its
        // Started append): the save tears, the point classifies as a
        // resource fault, and attempt 2's writes — past the ordinal — land.
        spec.fault_plan = Some(
            eth_transport::fault::FaultPlan::default().with_disk_full_at_append(1),
        );
        let campaign = Campaign::with_capacity(2).with_retry_policy(RetryPolicy::standard(3));
        let out = campaign
            .run_journaled(&[spec.clone()], &RunCaches::new(), &dir)
            .unwrap();
        assert!(out.results[0].is_ok(), "{:?}", out.results[0].as_ref().err());
        assert_eq!(out.attempts, vec![2], "expected exactly one torn attempt");
        assert!(out.quarantined.is_empty());

        // The persisted result restores byte-identically on resume.
        let resumed = campaign
            .run_journaled(&[spec], &RunCaches::new(), &dir)
            .unwrap();
        assert_eq!(resumed.restored, vec![0]);
        assert_eq!(
            out.results[0].as_ref().unwrap().images,
            resumed.results[0].as_ref().unwrap().images,
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_quota_exhaustion_quarantines_instead_of_panicking() {
        let dir = std::env::temp_dir().join(format!(
            "eth-sweep-quota-{:x}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        // A quota far below one result file: the WAL squeaks through but
        // every result write hits DiskFull, burns its retries, and the
        // point quarantines — the campaign never panics mid-append.
        let campaign = Campaign::with_capacity(2)
            .with_retry_policy(RetryPolicy::standard(2))
            .with_resources(ResourcePolicy::with_disk_quota(700));
        let out = campaign
            .run_journaled(&[small_point()], &RunCaches::new(), &dir)
            .unwrap();
        match &out.results[0] {
            Err(CoreError::Quarantined { last_error, .. }) => {
                assert!(
                    matches!(**last_error, CoreError::DiskFull { .. }),
                    "expected DiskFull, got {last_error}"
                );
            }
            other => panic!("expected quarantine, got {:?}", other.is_ok()),
        }
        assert_eq!(out.quarantined, vec![0]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn backpressure_gate_stalls_above_high_watermark_and_is_bounded() {
        // Pin process-wide residency above the watermark with an external
        // unbounded store, as a long-lived staging cache would.
        let store = eth_data::staging::BlockStore::unbounded();
        let block = small_point().application.generate(0, 1).unwrap();
        store.insert(0, block).unwrap();
        let resident = eth_data::staging::process_resident_bytes();
        assert!(resident > 0);
        let campaign = Campaign::with_capacity(2)
            .with_resources(ResourcePolicy::with_memory_budget(resident));
        let t = Instant::now();
        let out = campaign.run(&[small_point()]);
        assert!(out.results[0].is_ok());
        // The gate held admission for the (bounded) stall cap, then let
        // the point through rather than deadlocking on a gauge that will
        // never drain.
        assert!(
            t.elapsed() >= BACKPRESSURE_STALL_CAP,
            "gate did not stall: {:?}",
            t.elapsed()
        );
        drop(store);
    }

    #[test]
    fn sweep_varies_the_right_fields() {
        let specs = Sweep::over(base())
            .sampling_ratios(&[0.75, 0.25])
            .specs()
            .unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].sampling_ratio, 0.75);
        assert_eq!(specs[1].sampling_ratio, 0.25);
        // unswept axes untouched
        assert_eq!(specs[0].ranks, base().ranks);
    }
}
