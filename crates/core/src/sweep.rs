//! Cartesian parameter sweeps over the design space.
//!
//! "Our experience … strongly indicate\[s\] the need for a light-weight
//! mechanism to quickly explore large parameter spaces" (Section VIII).
//! A [`Sweep`] takes a base experiment and axes to vary; iterating yields
//! one fully-validated [`ExperimentSpec`] per design point.

use crate::config::{Algorithm, Coupling, ExperimentSpec};
use crate::error::Result;

/// A sweep: the cartesian product of the provided axes applied to a base
/// spec. Empty axes keep the base value.
#[derive(Debug, Clone)]
pub struct Sweep {
    base: ExperimentSpec,
    algorithms: Vec<Algorithm>,
    couplings: Vec<Coupling>,
    sampling_ratios: Vec<f64>,
    rank_counts: Vec<usize>,
}

impl Sweep {
    pub fn over(base: ExperimentSpec) -> Sweep {
        Sweep {
            base,
            algorithms: Vec::new(),
            couplings: Vec::new(),
            sampling_ratios: Vec::new(),
            rank_counts: Vec::new(),
        }
    }

    pub fn algorithms(mut self, algorithms: &[Algorithm]) -> Sweep {
        self.algorithms = algorithms.to_vec();
        self
    }

    pub fn couplings(mut self, couplings: &[Coupling]) -> Sweep {
        self.couplings = couplings.to_vec();
        self
    }

    pub fn sampling_ratios(mut self, ratios: &[f64]) -> Sweep {
        self.sampling_ratios = ratios.to_vec();
        self
    }

    pub fn rank_counts(mut self, ranks: &[usize]) -> Sweep {
        self.rank_counts = ranks.to_vec();
        self
    }

    /// Number of design points.
    pub fn len(&self) -> usize {
        let f = |n: usize| n.max(1);
        f(self.algorithms.len())
            * f(self.couplings.len())
            * f(self.sampling_ratios.len())
            * f(self.rank_counts.len())
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialize every design point, validating each.
    pub fn specs(&self) -> Result<Vec<ExperimentSpec>> {
        let algorithms: Vec<Option<Algorithm>> = axis(&self.algorithms);
        let couplings: Vec<Option<Coupling>> = axis(&self.couplings);
        let ratios: Vec<Option<f64>> = axis(&self.sampling_ratios);
        let ranks: Vec<Option<usize>> = axis(&self.rank_counts);
        let mut out = Vec::with_capacity(self.len());
        for &alg in &algorithms {
            for &coupling in &couplings {
                for &ratio in &ratios {
                    for &rank_count in &ranks {
                        let mut spec = self.base.clone();
                        if let Some(a) = alg {
                            spec.algorithm = a;
                        }
                        if let Some(c) = coupling {
                            spec.coupling = c;
                        }
                        if let Some(r) = ratio {
                            spec.sampling_ratio = r;
                        }
                        if let Some(n) = rank_count {
                            spec.ranks = n;
                        }
                        spec.name = format!(
                            "{}-{}-{}-r{:.2}-n{}",
                            self.base.name,
                            spec.algorithm.name(),
                            spec.coupling.name(),
                            spec.sampling_ratio,
                            spec.ranks
                        );
                        spec.validate()?;
                        out.push(spec);
                    }
                }
            }
        }
        Ok(out)
    }
}

/// An axis: `None` means "keep the base value" (used when unset).
fn axis<T: Copy>(values: &[T]) -> Vec<Option<T>> {
    if values.is_empty() {
        vec![None]
    } else {
        values.iter().copied().map(Some).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Application;

    fn base() -> ExperimentSpec {
        ExperimentSpec::builder("sweep")
            .application(Application::Hacc { particles: 1_000 })
            .build()
            .unwrap()
    }

    #[test]
    fn empty_sweep_is_just_the_base() {
        let sweep = Sweep::over(base());
        let specs = sweep.specs().unwrap();
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].algorithm, base().algorithm);
    }

    #[test]
    fn cartesian_product_size() {
        let sweep = Sweep::over(base())
            .algorithms(&Algorithm::particle_algorithms())
            .sampling_ratios(&[1.0, 0.5, 0.25])
            .couplings(&Coupling::all());
        assert_eq!(sweep.len(), 3 * 3 * 3);
        assert_eq!(sweep.specs().unwrap().len(), 27);
    }

    #[test]
    fn names_are_unique() {
        let specs = Sweep::over(base())
            .algorithms(&Algorithm::particle_algorithms())
            .rank_counts(&[1, 2, 4])
            .specs()
            .unwrap();
        let mut names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), specs.len());
    }

    #[test]
    fn invalid_points_are_rejected() {
        // grid algorithm against a particle base application
        let sweep = Sweep::over(base()).algorithms(&[Algorithm::VtkIsosurface]);
        assert!(sweep.specs().is_err());
    }

    #[test]
    fn sweep_varies_the_right_fields() {
        let specs = Sweep::over(base())
            .sampling_ratios(&[0.75, 0.25])
            .specs()
            .unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].sampling_ratio, 0.75);
        assert_eq!(specs[1].sampling_ratio, 0.25);
        // unswept axes untouched
        assert_eq!(specs[0].ranks, base().ranks);
    }
}
