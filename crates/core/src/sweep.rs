//! Cartesian parameter sweeps over the design space, and the campaign
//! engine that executes them with high throughput.
//!
//! "Our experience … strongly indicate\[s\] the need for a light-weight
//! mechanism to quickly explore large parameter spaces" (Section VIII).
//! A [`Sweep`] takes a base experiment and axes to vary; iterating yields
//! one fully-validated [`ExperimentSpec`] per design point. A [`Campaign`]
//! takes the materialized points and runs them concurrently on a bounded
//! scheduler, sharing staged data between points that differ only on the
//! algorithm / sampling-ratio / coupling axes (see
//! [`crate::harness::RunCaches`]).

use crate::config::{Algorithm, Coupling, ExperimentSpec};
use crate::error::{CoreError, Result};
use crate::harness::{run_native_cached, CacheStats, NativeOutcome, RunCaches};
use eth_transport::RankFailure;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex};
use std::thread;
use std::time::Instant;

/// A sweep: the cartesian product of the provided axes applied to a base
/// spec. Empty axes keep the base value.
#[derive(Debug, Clone)]
pub struct Sweep {
    base: ExperimentSpec,
    algorithms: Vec<Algorithm>,
    couplings: Vec<Coupling>,
    sampling_ratios: Vec<f64>,
    rank_counts: Vec<usize>,
}

impl Sweep {
    pub fn over(base: ExperimentSpec) -> Sweep {
        Sweep {
            base,
            algorithms: Vec::new(),
            couplings: Vec::new(),
            sampling_ratios: Vec::new(),
            rank_counts: Vec::new(),
        }
    }

    pub fn algorithms(mut self, algorithms: &[Algorithm]) -> Sweep {
        self.algorithms = algorithms.to_vec();
        self
    }

    pub fn couplings(mut self, couplings: &[Coupling]) -> Sweep {
        self.couplings = couplings.to_vec();
        self
    }

    pub fn sampling_ratios(mut self, ratios: &[f64]) -> Sweep {
        self.sampling_ratios = ratios.to_vec();
        self
    }

    pub fn rank_counts(mut self, ranks: &[usize]) -> Sweep {
        self.rank_counts = ranks.to_vec();
        self
    }

    /// Number of design points.
    pub fn len(&self) -> usize {
        let f = |n: usize| n.max(1);
        f(self.algorithms.len())
            * f(self.couplings.len())
            * f(self.sampling_ratios.len())
            * f(self.rank_counts.len())
    }

    /// Always `false`: a sweep with no axes set still yields the base
    /// spec, and every set axis contributes at least one value to the
    /// product, so [`Sweep::specs`] never materializes zero points. (The
    /// previous `len() == 0` form was unreachable — `len()` floors every
    /// axis at 1 — and read as if empty sweeps existed.)
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Materialize every design point, validating each.
    pub fn specs(&self) -> Result<Vec<ExperimentSpec>> {
        let algorithms: Vec<Option<Algorithm>> = axis(&self.algorithms);
        let couplings: Vec<Option<Coupling>> = axis(&self.couplings);
        let ratios: Vec<Option<f64>> = axis(&self.sampling_ratios);
        let ranks: Vec<Option<usize>> = axis(&self.rank_counts);
        let mut out = Vec::with_capacity(self.len());
        for &alg in &algorithms {
            for &coupling in &couplings {
                for &ratio in &ratios {
                    for &rank_count in &ranks {
                        let mut spec = self.base.clone();
                        if let Some(a) = alg {
                            spec.algorithm = a;
                        }
                        if let Some(c) = coupling {
                            spec.coupling = c;
                        }
                        if let Some(r) = ratio {
                            spec.sampling_ratio = r;
                        }
                        if let Some(n) = rank_count {
                            spec.ranks = n;
                        }
                        spec.name = format!(
                            "{}-{}-{}-r{:.2}-n{}",
                            self.base.name,
                            spec.algorithm.name(),
                            spec.coupling.name(),
                            spec.sampling_ratio,
                            spec.ranks
                        );
                        spec.validate()?;
                        out.push(spec);
                    }
                }
            }
        }
        Ok(out)
    }
}

/// An axis: `None` means "keep the base value" (used when unset).
fn axis<T: Copy>(values: &[T]) -> Vec<Option<T>> {
    if values.is_empty() {
        vec![None]
    } else {
        values.iter().copied().map(Some).collect()
    }
}

/// Result of one design point inside a campaign: the native outcome, or
/// the failure that point produced (other points are unaffected).
pub type PointResult = std::result::Result<NativeOutcome, CoreError>;

/// Result of a [`Campaign`] run.
pub struct CampaignOutcome {
    /// One entry per input spec, **in input order** regardless of the
    /// order points actually finished in.
    pub results: Vec<PointResult>,
    /// End-to-end wall time for the whole campaign.
    pub wall_s: f64,
    /// Staging/baseline cache counters accumulated across all points.
    pub cache: CacheStats,
}

impl CampaignOutcome {
    /// Number of points that failed.
    pub fn failures(&self) -> usize {
        self.results.iter().filter(|r| r.is_err()).count()
    }

    /// The successful outcomes, still in input order.
    pub fn outcomes(&self) -> impl Iterator<Item = &NativeOutcome> {
        self.results.iter().filter_map(|r| r.as_ref().ok())
    }

    /// Throughput in design points per second (all points, even failed).
    pub fn points_per_sec(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.results.len() as f64 / self.wall_s
        } else {
            0.0
        }
    }
}

/// Executes independent design points concurrently on a bounded scheduler.
///
/// Admission accounts for each point's concurrency appetite: a native run
/// spawns one OS thread per rank (tight), two per rank (intercore: sim +
/// viz sides), or `ranks + viz_ranks` threads (internode), so an 8-rank
/// internode point takes 16 of the campaign's slots while a 1-rank tight
/// point takes one. Points are admitted strictly in input order (FIFO), so
/// a wide point cannot be starved by a stream of narrow ones; results are
/// returned in input order no matter when each point finishes.
///
/// Each point runs through [`run_native_cached`] against a shared
/// [`RunCaches`], so points differing only on the algorithm / ratio /
/// coupling axes share a single staging pass. Determinism: staged data and
/// rendering are pure functions of the spec, so a campaign's images are
/// byte-identical to running each spec alone, sequentially.
///
/// A failing point — including one whose supervised ranks panic or hang
/// (see [`RankFailure`]) — records its error in its result slot and the
/// campaign keeps going.
pub struct Campaign {
    capacity: usize,
}

impl Default for Campaign {
    fn default() -> Self {
        Campaign::new()
    }
}

impl Campaign {
    /// Scheduler sized to this host's available parallelism.
    pub fn new() -> Campaign {
        let slots = thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        Campaign::with_capacity(slots)
    }

    /// Scheduler with an explicit slot budget (minimum 1). One slot
    /// roughly corresponds to one runnable rank thread.
    pub fn with_capacity(slots: usize) -> Campaign {
        Campaign {
            capacity: slots.max(1),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Slots one design point occupies while running: its total rank
    /// thread count, clamped to the campaign capacity so an over-wide
    /// point still admits (alone) instead of deadlocking.
    pub fn point_cost(&self, spec: &ExperimentSpec) -> usize {
        let ranks = spec.ranks.max(1);
        let threads = match spec.coupling {
            Coupling::Tight => ranks,
            Coupling::Intercore => 2 * ranks,
            Coupling::Internode => ranks + spec.viz_ranks.unwrap_or(ranks),
        };
        threads.clamp(1, self.capacity)
    }

    /// Run every spec with a fresh cache set.
    pub fn run(&self, specs: &[ExperimentSpec]) -> CampaignOutcome {
        self.run_with(specs, &RunCaches::new())
    }

    /// Materialize and run a sweep.
    pub fn run_sweep(&self, sweep: &Sweep) -> Result<CampaignOutcome> {
        Ok(self.run(&sweep.specs()?))
    }

    /// Run every spec against a caller-provided cache set (use this to
    /// share staging across several campaigns over the same data).
    pub fn run_with(&self, specs: &[ExperimentSpec], caches: &RunCaches) -> CampaignOutcome {
        let t0 = Instant::now();
        let sem = WeightedSemaphore::new(self.capacity);
        let mut slots: Vec<Option<PointResult>> = specs.iter().map(|_| None).collect();
        thread::scope(|s| {
            for (ticket, (spec, slot)) in specs.iter().zip(slots.iter_mut()).enumerate() {
                let sem = &sem;
                let cost = self.point_cost(spec);
                s.spawn(move || {
                    sem.acquire(ticket, cost);
                    let result = catch_unwind(AssertUnwindSafe(|| run_native_cached(spec, caches)));
                    sem.release(cost);
                    // A panic that escapes the harness (i.e. outside any
                    // rank supervision) is contained here: it becomes this
                    // point's failure instead of poisoning the campaign.
                    *slot = Some(result.unwrap_or_else(|payload| {
                        Err(CoreError::Rank(RankFailure::Panic {
                            rank: ticket,
                            message: panic_message(payload),
                        }))
                    }));
                });
            }
        });
        CampaignOutcome {
            results: slots
                .into_iter()
                .map(|s| s.expect("every point thread writes its slot before exiting"))
                .collect(),
            wall_s: t0.elapsed().as_secs_f64(),
            cache: caches.stats(),
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic payload".to_string())
}

/// Counting semaphore with weighted, strictly-FIFO admission.
struct WeightedSemaphore {
    state: Mutex<SemState>,
    ready: Condvar,
}

struct SemState {
    available: usize,
    now_serving: usize,
}

impl WeightedSemaphore {
    fn new(capacity: usize) -> WeightedSemaphore {
        WeightedSemaphore {
            state: Mutex::new(SemState {
                available: capacity,
                now_serving: 0,
            }),
            ready: Condvar::new(),
        }
    }

    /// Block until ticket `ticket` is at the head of the line **and**
    /// `cost` slots are free. Tickets must be acquired exactly once each,
    /// numbered densely from 0 — the campaign uses the point index.
    fn acquire(&self, ticket: usize, cost: usize) {
        let mut st = self.state.lock().unwrap();
        while st.now_serving != ticket || st.available < cost {
            st = self.ready.wait(st).unwrap();
        }
        st.available -= cost;
        st.now_serving += 1;
        self.ready.notify_all();
    }

    fn release(&self, cost: usize) {
        let mut st = self.state.lock().unwrap();
        st.available += cost;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Application;

    fn base() -> ExperimentSpec {
        ExperimentSpec::builder("sweep")
            .application(Application::Hacc { particles: 1_000 })
            .build()
            .unwrap()
    }

    #[test]
    fn empty_sweep_is_just_the_base() {
        let sweep = Sweep::over(base());
        let specs = sweep.specs().unwrap();
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].algorithm, base().algorithm);
    }

    #[test]
    fn cartesian_product_size() {
        let sweep = Sweep::over(base())
            .algorithms(&Algorithm::particle_algorithms())
            .sampling_ratios(&[1.0, 0.5, 0.25])
            .couplings(&Coupling::all());
        assert_eq!(sweep.len(), 3 * 3 * 3);
        assert_eq!(sweep.specs().unwrap().len(), 27);
    }

    #[test]
    fn names_are_unique() {
        let specs = Sweep::over(base())
            .algorithms(&Algorithm::particle_algorithms())
            .rank_counts(&[1, 2, 4])
            .specs()
            .unwrap();
        let mut names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), specs.len());
    }

    #[test]
    fn invalid_points_are_rejected() {
        // grid algorithm against a particle base application
        let sweep = Sweep::over(base()).algorithms(&[Algorithm::VtkIsosurface]);
        assert!(sweep.specs().is_err());
    }

    #[test]
    fn is_empty_is_honest_and_len_matches_specs() {
        // A sweep is never empty: the base point always survives.
        let bare = Sweep::over(base());
        assert!(!bare.is_empty());
        assert_eq!(bare.len(), bare.specs().unwrap().len());
        // ...including when axes are explicitly set to empty slices
        // (which means "keep the base value", not "zero points").
        let degenerate = Sweep::over(base()).algorithms(&[]).sampling_ratios(&[]);
        assert!(!degenerate.is_empty());
        assert_eq!(degenerate.len(), 1);
        assert_eq!(degenerate.len(), degenerate.specs().unwrap().len());
        // and len() tracks specs() on real products too
        let product = Sweep::over(base())
            .algorithms(&Algorithm::particle_algorithms())
            .sampling_ratios(&[1.0, 0.5])
            .rank_counts(&[1, 2]);
        assert!(!product.is_empty());
        assert_eq!(product.len(), 12);
        assert_eq!(product.len(), product.specs().unwrap().len());
    }

    #[test]
    fn point_cost_accounts_for_coupling_threads() {
        let c = Campaign::with_capacity(16);
        let mut spec = base();
        spec.ranks = 4;
        spec.coupling = Coupling::Tight;
        assert_eq!(c.point_cost(&spec), 4);
        spec.coupling = Coupling::Intercore;
        assert_eq!(c.point_cost(&spec), 8);
        spec.coupling = Coupling::Internode;
        assert_eq!(c.point_cost(&spec), 8); // 4 sim + 4 paired viz
        spec.viz_ranks = Some(1);
        assert_eq!(c.point_cost(&spec), 5); // 4 sim + 1 viz
        // an over-wide point clamps to capacity instead of deadlocking
        let tiny = Campaign::with_capacity(2);
        spec.viz_ranks = None;
        assert_eq!(tiny.point_cost(&spec), 2);
    }

    #[test]
    fn campaign_isolates_failing_points() {
        let mut good = base();
        good.ranks = 1;
        good.application = Application::Hacc { particles: 800 };
        good.width = 24;
        good.height = 24;
        // an invalid point: zero sampling ratio fails validation inside
        // run_native_cached, not up front in specs()
        let mut bad = good.clone();
        bad.sampling_ratio = 0.0;
        let out = Campaign::with_capacity(4).run(&[good.clone(), bad, good]);
        assert_eq!(out.results.len(), 3);
        assert_eq!(out.failures(), 1);
        assert!(out.results[0].is_ok());
        assert!(out.results[1].is_err(), "invalid point must fail in place");
        assert!(out.results[2].is_ok(), "failure must not poison later points");
        assert_eq!(out.outcomes().count(), 2);
        assert!(out.wall_s > 0.0);
        assert!(out.points_per_sec() > 0.0);
    }

    #[test]
    fn campaign_shares_staging_across_axes() {
        let specs = Sweep::over(base())
            .algorithms(&Algorithm::particle_algorithms())
            .sampling_ratios(&[1.0, 0.5])
            .specs()
            .unwrap();
        let out = Campaign::with_capacity(8).run(&specs);
        assert_eq!(out.failures(), 0);
        // every point shares one (application, seed, steps, ranks) key:
        // exactly one staging pass, all the rest hits
        assert_eq!(out.cache.staging_misses, 1);
        assert_eq!(out.cache.staging_hits, specs.len() as u64 - 1);
        assert!(out.cache.staging_hit_rate() >= (specs.len() - 1) as f64 / specs.len() as f64);
    }

    #[test]
    fn sweep_varies_the_right_fields() {
        let specs = Sweep::over(base())
            .sampling_ratios(&[0.75, 0.25])
            .specs()
            .unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].sampling_ratio, 0.75);
        assert_eq!(specs[1].sampling_ratio, 0.25);
        // unswept axes untouched
        assert_eq!(specs[0].ranks, base().ranks);
    }
}
