//! Kernel-rate calibration.
//!
//! The cluster model's [`Calibration`] constants are *rates* (operations
//! per second per node). This module measures them by running the real
//! kernels from `eth-render` on synthetic data and dividing the counted
//! operations by the wall time. The measured host stands in for one
//! Hikari node; since every figure the harness reproduces is a ratio or an
//! ordering, the absolute host speed cancels out.
//!
//! Shape parameters (utilization exponent, contention coefficient) are
//! *not* re-fit here — they encode cluster-level behaviour fitted to the
//! paper's published numbers and are documented in `eth-cluster`.

use crate::config::orbit_camera;
use eth_cluster::costmodel::Calibration;
use eth_data::field::Attribute;
use eth_data::{PointCloud, UniformGrid, Vec3};
use eth_render::color::{Colormap, TransferFunction};
use eth_render::geometry::marching_cubes::extract_isosurface;
use eth_render::geometry::slice::Plane;
use eth_render::raster::points::render_points;
use eth_render::raster::splat::render_splats;
use eth_render::ray::plane::render_slices;
use eth_render::ray::raymarch::render_isosurface;
use eth_render::ray::sphere::SphereRaycaster;
use eth_render::shading::Lighting;
use std::time::Instant;

/// Size knobs for the calibration pass.
#[derive(Debug, Clone, Copy)]
pub struct CalibrationBudget {
    pub particles: usize,
    pub grid_side: usize,
    pub image_side: usize,
}

impl CalibrationBudget {
    /// Fast pass (sub-second) used by tests and default tooling.
    pub fn quick() -> CalibrationBudget {
        CalibrationBudget {
            particles: 60_000,
            grid_side: 32,
            image_side: 128,
        }
    }

    /// Longer pass for the `reproduce` binary.
    pub fn standard() -> CalibrationBudget {
        CalibrationBudget {
            particles: 400_000,
            grid_side: 64,
            image_side: 256,
        }
    }
}

fn test_cloud(n: usize) -> PointCloud {
    let mut pos = Vec::with_capacity(n);
    let mut s = 0x12345678u64;
    for _ in 0..n {
        let mut f = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) as f32
        };
        pos.push(Vec3::new(f(), f(), f()));
    }
    let mut c = PointCloud::from_positions(pos);
    let d: Vec<f32> = (0..n).map(|i| (i % 97) as f32).collect();
    c.set_attribute("density", Attribute::Scalar(d)).unwrap();
    c
}

fn test_grid(side: usize) -> UniformGrid {
    let mut g = UniformGrid::new(
        [side, side, side],
        Vec3::ZERO,
        Vec3::splat(1.0 / (side - 1) as f32),
    )
    .unwrap();
    let mut vals = Vec::with_capacity(side * side * side);
    for k in 0..side {
        for j in 0..side {
            for i in 0..side {
                let p = g.vertex_position(i, j, k);
                vals.push(0.4 - (p - Vec3::splat(0.5)).length());
            }
        }
    }
    g.set_attribute("temperature", Attribute::Scalar(vals)).unwrap();
    g
}

/// Rate = ops / seconds, floored so a pathological timer cannot produce
/// zero or negative rates.
fn rate(ops: f64, seconds: f64) -> f64 {
    (ops / seconds.max(1e-9)).max(1.0)
}

/// Measure this host's kernel rates, returning a calibration whose rate
/// fields reflect the machine and whose shape fields keep their defaults.
pub fn measure(budget: CalibrationBudget) -> Calibration {
    let mut cal = Calibration::default();
    let cloud = test_cloud(budget.particles);
    let grid = test_grid(budget.grid_side);
    let camera = orbit_camera(&cloud.bounds(), budget.image_side, budget.image_side, 0, 1);
    let gcam = orbit_camera(&grid.bounds(), budget.image_side, budget.image_side, 0, 1);
    let tf = TransferFunction::new(Colormap::Viridis, 0.0, 96.0);
    let lighting = Lighting::default();
    let bg = Vec3::ZERO;

    // VTK points (per-particle rate; the 3x3 block cost is inside it)
    let t = Instant::now();
    let (_, ps) = render_points(&cloud, Some("density"), &tf, &camera, bg, 3);
    cal.vtk_points_per_sec = rate(ps.points_in as f64, t.elapsed().as_secs_f64());

    // Gaussian splat at the at-scale regime (sub-pixel impostors)
    let t = Instant::now();
    let (_, ss) = render_splats(&cloud, Some("density"), &tf, &camera, &lighting, bg, 0.002);
    cal.splat_points_per_sec = rate(ss.points_in as f64, t.elapsed().as_secs_f64());

    // BVH build + sphere raycast
    let t = Instant::now();
    let rc = SphereRaycaster::build(&cloud, Some("density"), 0.004);
    cal.bvh_build_ops_per_sec = rate(rc.build_ops() as f64, t.elapsed().as_secs_f64());
    let t = Instant::now();
    let (_, rs) = rc.render(&camera, &tf, &lighting, bg);
    cal.ray_steps_per_sec = rate(rs.traversal_steps as f64, t.elapsed().as_secs_f64());

    // Marching cubes scan
    let t = Instant::now();
    let (mesh, is) = extract_isosurface(&grid, "temperature", 0.0).unwrap();
    cal.cell_scans_per_sec = rate(is.cells_scanned as f64, t.elapsed().as_secs_f64());

    // Triangle rasterization
    let t = Instant::now();
    let (_, ts) = eth_render::raster::triangle::rasterize_mesh(&mesh, &tf, &gcam, &lighting, bg);
    cal.tris_per_sec = rate(ts.triangles_rasterized as f64, t.elapsed().as_secs_f64());

    // Ray marching
    let t = Instant::now();
    let (_, ms) =
        render_isosurface(&grid, "temperature", 0.0, &gcam, &tf, &lighting, bg).unwrap();
    cal.march_steps_per_sec = rate(ms.march_steps as f64, t.elapsed().as_secs_f64());

    // Plane slicing
    let t = Instant::now();
    let planes = [Plane::axis_aligned(2, 0.5)];
    let (_, pl) = render_slices(&grid, "temperature", &planes, &gcam, &tf, bg).unwrap();
    cal.plane_samples_per_sec = rate(pl.plane_tests as f64, t.elapsed().as_secs_f64());

    // Compositing (pure pixel merges)
    let t = Instant::now();
    let buffers: Vec<_> = (0..8)
        .map(|i| {
            let mut fb = eth_render::Framebuffer::new(
                budget.image_side,
                budget.image_side,
                bg,
            );
            fb.write(i * 3, i, 1.0 + i as f32, Vec3::ONE);
            fb
        })
        .collect();
    let (_, cs) = eth_render::composite::composite_direct(buffers);
    cal.composite_pixels_per_sec = rate(cs.merge_ops as f64, t.elapsed().as_secs_f64());

    // Simulation-proxy staging rate: serialize + deserialize a block.
    let t = Instant::now();
    let obj = eth_data::DataObject::Points(cloud.clone());
    let bytes = eth_data::io::binary::encode(&obj);
    let payload = bytes.len() as f64;
    let _ = eth_data::io::binary::decode(bytes).unwrap();
    cal.sim_bytes_per_sec = rate(payload * 2.0, t.elapsed().as_secs_f64());

    cal
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_calibration_produces_sane_rates() {
        let cal = measure(CalibrationBudget::quick());
        // every rate is positive and finite
        for (name, v) in [
            ("vtk_points", cal.vtk_points_per_sec),
            ("splat_points", cal.splat_points_per_sec),
            ("bvh_build", cal.bvh_build_ops_per_sec),
            ("ray_steps", cal.ray_steps_per_sec),
            ("cell_scans", cal.cell_scans_per_sec),
            ("tris", cal.tris_per_sec),
            ("march_steps", cal.march_steps_per_sec),
            ("plane_samples", cal.plane_samples_per_sec),
            ("composite", cal.composite_pixels_per_sec),
            ("sim_bytes", cal.sim_bytes_per_sec),
        ] {
            assert!(v.is_finite() && v > 100.0, "{name} rate {v}");
        }
        // shape parameters untouched
        let d = Calibration::default();
        assert_eq!(cal.utilization_exponent, d.utilization_exponent);
        assert_eq!(
            cal.geometry_contention_s_per_node,
            d.geometry_contention_s_per_node
        );
        assert_eq!(cal.ray_steps_per_log_n, d.ray_steps_per_log_n);
    }

    #[test]
    fn calibrated_model_keeps_structural_shapes() {
        // Host-measured rates vary wildly with build profile and machine
        // load, and the paper's own Finding 3 says the points-vs-raycast
        // ordering depends on rates and problem size. What must survive
        // ANY positive rates:
        //  * splat beats points (its per-particle work is a strict subset),
        //  * raycasting's time grows sub-linearly with data while the
        //    rasterizers grow linearly.
        use eth_cluster::costmodel::{AlgorithmClass, CostModel, Workload};
        use eth_cluster::node::ClusterSpec;
        let cal = measure(CalibrationBudget::quick());
        let m = CostModel::new(cal, ClusterSpec::hikari(400));
        let w = |elements: u64| Workload {
            global_elements: elements,
            image_pixels: 512 * 512,
            images_per_step: 500,
            steps: 1,
            bytes_per_element: 32,
            sampling_ratio: 1.0,
            planes: 0,
            sim_ops_per_element: 0.0,
        };
        let t = |alg, elements| m.viz_phase(alg, &w(elements), 400).seconds;
        let b = 1_000_000_000u64;
        assert!(
            t(AlgorithmClass::GaussianSplat, b) < t(AlgorithmClass::VtkPoints, b),
            "splat must beat points under host calibration"
        );
        let points_growth = t(AlgorithmClass::VtkPoints, b) / t(AlgorithmClass::VtkPoints, b / 4);
        let ray_growth =
            t(AlgorithmClass::RaycastSpheres, b) / t(AlgorithmClass::RaycastSpheres, b / 4);
        assert!(points_growth > 3.5, "points growth {points_growth}");
        assert!(
            ray_growth < points_growth * 0.75,
            "raycast growth {ray_growth} should be clearly sub-linear vs {points_growth}"
        );
    }
}
