//! Harness error type: unifies data-model and transport failures.

use eth_data::error::DataError;
use eth_transport::{RankFailure, TransportError};
use std::fmt;

/// Any failure the harness can produce.
#[derive(Debug)]
pub enum CoreError {
    /// Data-model / IO / rendering failure.
    Data(DataError),
    /// Transport / bootstrap failure.
    Transport(TransportError),
    /// Invalid experiment configuration.
    Config(String),
    /// A supervised rank panicked or overran its wall-clock budget.
    Rank(RankFailure),
    /// A campaign point exhausted its retry budget and was set aside so
    /// the rest of the sweep could proceed.
    Quarantined {
        /// Attempts consumed, including the first.
        attempts: u32,
        /// The failure observed on the final attempt.
        last_error: Box<CoreError>,
    },
    /// The campaign's cancellation token fired before this point ran: the
    /// point was abandoned unstarted (a drain or client disconnect). On
    /// resume it re-runs — cancellation never records a wrong result.
    Canceled,
    /// A campaign journal directory is already owned by a live process;
    /// a second opener would interleave WAL appends into the same file
    /// and corrupt both histories, so it is refused instead.
    JournalLocked {
        /// The locked campaign directory.
        dir: std::path::PathBuf,
        /// PID recorded in the lockfile (the live holder).
        holder: u32,
    },
    /// A durable write hit the disk quota (or a real `ENOSPC`). Classified
    /// as a retryable resource fault: the point degrades, retries, or
    /// quarantines through [`crate::sweep::RetryPolicy`] instead of
    /// panicking mid-append.
    DiskFull {
        /// What was being written when the quota ran out.
        what: String,
        /// Bytes the write needed.
        needed: u64,
        /// Bytes already accounted against the quota.
        used: u64,
        /// The configured quota, 0 when the failure came from the OS.
        quota: u64,
    },
    /// A staged-block allocation failed against the memory budget (or was
    /// injected via `FaultPlan::alloc_fail_at_stage`). Retryable the same
    /// way [`CoreError::DiskFull`] is.
    OutOfMemory(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Data(e) => write!(f, "data error: {e}"),
            CoreError::Transport(e) => write!(f, "transport error: {e}"),
            CoreError::Config(m) => write!(f, "configuration error: {m}"),
            CoreError::Rank(e) => write!(f, "rank failure: {e}"),
            CoreError::Quarantined { attempts, last_error } => write!(
                f,
                "quarantined after {attempts} attempts; last error: {last_error}"
            ),
            CoreError::Canceled => write!(f, "canceled before the point ran"),
            CoreError::JournalLocked { dir, holder } => write!(
                f,
                "campaign journal {} is locked by live process {holder}",
                dir.display()
            ),
            CoreError::DiskFull { what, needed, used, quota } => write!(
                f,
                "disk full writing {what}: {needed} bytes needed, {used} used of quota {quota}"
            ),
            CoreError::OutOfMemory(m) => write!(f, "out of memory: {m}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Data(e) => Some(e),
            CoreError::Transport(e) => Some(e),
            CoreError::Config(_) => None,
            CoreError::Rank(e) => Some(e),
            CoreError::Quarantined { last_error, .. } => Some(last_error.as_ref()),
            CoreError::Canceled
            | CoreError::JournalLocked { .. }
            | CoreError::DiskFull { .. }
            | CoreError::OutOfMemory(_) => None,
        }
    }
}

impl From<RankFailure> for CoreError {
    fn from(e: RankFailure) -> Self {
        CoreError::Rank(e)
    }
}

impl From<DataError> for CoreError {
    fn from(e: DataError) -> Self {
        CoreError::Data(e)
    }
}

impl From<TransportError> for CoreError {
    fn from(e: TransportError) -> Self {
        CoreError::Transport(e)
    }
}

impl From<std::io::Error> for CoreError {
    fn from(e: std::io::Error) -> Self {
        CoreError::Data(DataError::Io(e))
    }
}

pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let d: CoreError = DataError::MissingAttribute("t".into()).into();
        assert!(d.to_string().contains("data error"));
        let t: CoreError = TransportError::Disconnected { peer: 1 }.into();
        assert!(t.to_string().contains("transport error"));
        let c = CoreError::Config("bad".into());
        assert!(c.to_string().contains("bad"));
        let r: CoreError = RankFailure::Panic {
            rank: 2,
            message: "kaboom".into(),
        }
        .into();
        assert!(r.to_string().contains("kaboom"));
        use std::error::Error;
        assert!(d.source().is_some());
        assert!(c.source().is_none());
    }
}
