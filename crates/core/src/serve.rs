//! `eth serve` — a fault-contained campaign service.
//!
//! The paper frames ETH as a harness a *group* shares: many explorers,
//! one pool of compute, overlapping sweeps. This module is that sharing
//! layer as a long-running service: tenants POST campaign requests over
//! HTTP, the service multiplexes them onto the weighted-FIFO
//! [`Campaign`] scheduler, dedupes identical design points across
//! tenants, and streams progress back over SSE. The robustness layer is
//! the point:
//!
//! * **Admission control** — a [`ServicePolicy`] bounds total queued
//!   points and per-tenant in-flight campaigns; overload is shed with
//!   `429 + Retry-After` *before* any work is enqueued, so admitted
//!   campaigns keep their latency.
//! * **Deadlines** — every HTTP request carries a read deadline
//!   (`request_deadline_ms`); a stalled client gets `408` and never
//!   holds a connection thread hostage.
//! * **Slow-subscriber isolation** — SSE subscribers get bounded
//!   drop-oldest buffers; a slow reader loses old events, never blocks
//!   the scheduler or other tenants.
//! * **Panic containment** — each connection handler and each campaign
//!   worker runs under `catch_unwind`; a panic turns into a `500` (or a
//!   `Failed` campaign) and a counter, not a dead server.
//! * **Graceful drain** — [`Service::drain`] stops admission, cancels
//!   every running campaign's [`CancelToken`] (in-flight points finish
//!   and journal; queued points are abandoned), and waits up to
//!   `drain_timeout_ms`. Because every campaign runs through
//!   [`Campaign::run_journaled_custom`]'s WAL, a restarted service
//!   resumes every tenant's campaign to **byte-identical** results via
//!   [`Service::resume_existing`].
//!
//! Everything is hand-rolled on `std` (TCP, HTTP/1.1, SSE, base64) —
//! the repo's no-new-dependencies rule applies to the service layer too.

use crate::config::{Algorithm, Coupling, ExperimentSpec, ResourcePolicy};
use crate::error::{CoreError, Result};
use crate::harness::{run_native_cached, NativeOutcome, RunCaches};
use crate::journal;
use crate::sweep::{spec_for_attempt, Campaign, CancelToken, PointResult, Sweep};
use crate::telemetry::counters_to_prometheus;
use eth_cluster::counters::CounterSet;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::fs;
use std::io::{self, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

/// Per-campaign state file inside `campaign-NNNN/` (the admission
/// record: tenant + request + terminal flag). `done: false` on restart
/// means "resume me".
pub const SERVICE_FILE: &str = "service.json";
/// Terminal summary written next to the journal when a campaign ends.
pub const OUTCOME_FILE: &str = "outcome.json";
/// Stitched cross-rank Chrome trace written next to the journal when a
/// campaign that recorded spans ends (`GET /campaigns/{id}/trace`).
pub const TRACE_FILE: &str = "trace.json";
/// Directory-name prefix for campaign journal dirs under the root.
pub const CAMPAIGN_DIR_PREFIX: &str = "campaign-";

/// Maximum HTTP request head (request line + headers) the server reads.
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Maximum HTTP request body the server reads.
const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;
/// SSE keepalive cadence; also the disconnect-detection latency bound.
const SSE_TICK: Duration = Duration::from_millis(200);

fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Service invariants are restored before every unlock; a poisoned
    // mutex here only means some *other* holder panicked mid-section,
    // and panics inside locked sections are short and state-restoring.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Policy and request/response types
// ---------------------------------------------------------------------------

/// Robustness knobs of the campaign service. Serde-able so a deployment
/// (or a test) can sweep service policy like any other design axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServicePolicy {
    /// Total unfinished design points the service will hold across all
    /// tenants; a submission that would exceed this is shed with 429.
    pub max_queued_points: usize,
    /// Running campaigns one tenant may hold; the next is shed with 429.
    pub per_tenant_inflight: usize,
    /// Per-request read deadline (ms): a client that stalls the request
    /// head or body longer than this gets 408.
    pub request_deadline_ms: u64,
    /// Upper bound (ms) [`Service::drain`] waits for canceled campaigns
    /// to journal their in-flight points and exit.
    pub drain_timeout_ms: u64,
    /// Bounded SSE subscriber queue length; the oldest event is dropped
    /// (and counted) when a slow client falls this far behind.
    pub subscriber_buffer: usize,
    /// Resource governance for the whole service: the disk quota bounds
    /// each campaign's journal, the memory budget's high watermark sheds
    /// new submissions (429 + Retry-After) while process-wide staged
    /// residency sits above it, and the same policy gates the campaign
    /// scheduler's admissions (see [`Campaign::with_resources`]).
    /// `None` (the default, and what legacy service records deserialize
    /// to) disables all three.
    #[serde(default)]
    pub resources: Option<ResourcePolicy>,
}

impl Default for ServicePolicy {
    fn default() -> ServicePolicy {
        ServicePolicy {
            max_queued_points: 64,
            per_tenant_inflight: 2,
            request_deadline_ms: 10_000,
            drain_timeout_ms: 60_000,
            subscriber_buffer: 256,
            resources: None,
        }
    }
}

/// One tenant's campaign submission: a base spec plus optional sweep
/// axes (empty axes keep the base value, exactly like [`Sweep`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignRequest {
    /// Who is asking. Admission counts in-flight campaigns per tenant.
    pub tenant: String,
    /// The base design point the axes below are applied to.
    pub base: ExperimentSpec,
    #[serde(default)]
    pub algorithms: Vec<Algorithm>,
    #[serde(default)]
    pub couplings: Vec<Coupling>,
    #[serde(default)]
    pub sampling_ratios: Vec<f64>,
    #[serde(default)]
    pub rank_counts: Vec<usize>,
    /// Cancel the campaign when its last SSE subscriber disconnects
    /// (fire-and-forget tenants opt out; interactive ones opt in).
    #[serde(default)]
    pub cancel_on_disconnect: bool,
}

impl CampaignRequest {
    /// A single-point campaign (no sweep axes).
    pub fn single(tenant: &str, base: ExperimentSpec) -> CampaignRequest {
        CampaignRequest {
            tenant: tenant.to_string(),
            base,
            algorithms: Vec::new(),
            couplings: Vec::new(),
            sampling_ratios: Vec::new(),
            rank_counts: Vec::new(),
            cancel_on_disconnect: false,
        }
    }

    /// Materialize the request's design points (validates each).
    pub fn specs(&self) -> Result<Vec<ExperimentSpec>> {
        Sweep::over(self.base.clone())
            .algorithms(&self.algorithms)
            .couplings(&self.couplings)
            .sampling_ratios(&self.sampling_ratios)
            .rank_counts(&self.rank_counts)
            .specs()
    }
}

/// Why a submission was refused at the door.
#[derive(Debug)]
pub enum AdmissionError {
    /// The service is draining; nothing new is admitted (HTTP 503).
    Draining,
    /// Overload shed (HTTP 429): retry after `retry_after_s` seconds.
    Shed { retry_after_s: u64, reason: String },
    /// The request itself is malformed or fails validation (HTTP 400).
    Invalid(String),
    /// The service could not persist the admission record (HTTP 500).
    Io(CoreError),
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::Draining => write!(f, "service is draining"),
            AdmissionError::Shed {
                retry_after_s,
                reason,
            } => write!(f, "shed ({reason}); retry after {retry_after_s}s"),
            AdmissionError::Invalid(msg) => write!(f, "invalid request: {msg}"),
            AdmissionError::Io(e) => write!(f, "admission io error: {e}"),
        }
    }
}

/// Lifecycle of one admitted campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CampaignState {
    /// Points are queued or executing.
    Running,
    /// Every point ran (some may have failed); terminal.
    Done,
    /// Drain (or an SSE disconnect with `cancel_on_disconnect`) canceled
    /// queued points mid-run; finished points are journaled and a
    /// restarted service resumes the rest. Resumable, not terminal.
    Interrupted,
    /// A tenant explicitly canceled it (DELETE); terminal.
    Canceled,
    /// The worker hit a structural error (journal IO, panic); terminal.
    Failed,
}

impl CampaignState {
    pub fn name(&self) -> &'static str {
        match self {
            CampaignState::Running => "running",
            CampaignState::Done => "done",
            CampaignState::Interrupted => "interrupted",
            CampaignState::Canceled => "canceled",
            CampaignState::Failed => "failed",
        }
    }

    /// Terminal states are never resumed by a restarted service.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            CampaignState::Done | CampaignState::Canceled | CampaignState::Failed
        )
    }
}

/// Snapshot of one campaign, served as JSON and persisted as the
/// terminal summary ([`OUTCOME_FILE`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignStatus {
    pub id: usize,
    pub tenant: String,
    /// [`CampaignState::name`] string form.
    pub state: String,
    pub points_total: usize,
    pub points_done: usize,
    pub points_failed: usize,
    /// Points restored from the journal instead of re-run (resume).
    pub points_restored: usize,
    /// SSE events dropped across this campaign's slow subscribers.
    pub dropped_events: usize,
    pub wall_s: f64,
    /// Flow-stitched critical-path attribution for the whole campaign
    /// (which phases bounded each step's latency); populated on the
    /// terminal `campaign-done` event when the campaign recorded spans.
    pub critical_path: Option<eth_obs::CriticalPathSummary>,
}

/// What [`Service::drain`] accomplished before the timeout.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DrainReport {
    pub campaigns_total: usize,
    /// Campaigns that finished every point (before or during drain).
    pub completed: usize,
    /// Campaigns interrupted mid-run (journaled; resumable on restart).
    pub interrupted: usize,
    pub canceled: usize,
    pub failed: usize,
    /// Workers still running when the drain timeout expired.
    pub still_running: usize,
    pub timed_out: bool,
    pub wall_s: f64,
}

/// The admission record persisted per campaign dir ([`SERVICE_FILE`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ServiceRecord {
    id: usize,
    request: CampaignRequest,
    /// True once the campaign reached a terminal state; `false` on disk
    /// at restart means "resume me".
    done: bool,
}

// ---------------------------------------------------------------------------
// SSE event hub: bounded drop-oldest fan-out
// ---------------------------------------------------------------------------

/// One server-sent event: a name and a JSON data payload.
#[derive(Debug, Clone)]
pub struct Event {
    pub name: String,
    pub data: String,
}

/// What a subscriber sees on each poll.
pub enum Next {
    /// An event arrived.
    Event(Box<Event>),
    /// Nothing within the poll window (caller sends an SSE keepalive).
    Idle,
    /// The hub closed (campaign over) and the queue is drained.
    Closed,
}

/// A subscriber's bounded queue. Publishing never blocks: when the
/// queue is full the oldest event is dropped and counted, so a slow SSE
/// reader can only hurt itself.
pub struct Subscriber {
    queue: Mutex<SubscriberQueue>,
    cv: Condvar,
    dropped: AtomicUsize,
}

struct SubscriberQueue {
    events: VecDeque<Event>,
    closed: bool,
}

impl Subscriber {
    fn new() -> Subscriber {
        Subscriber {
            queue: Mutex::new(SubscriberQueue {
                events: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
            dropped: AtomicUsize::new(0),
        }
    }

    /// Pop the next event, waiting at most `timeout`.
    pub fn next(&self, timeout: Duration) -> Next {
        let mut q = lock_recover(&self.queue);
        if q.events.is_empty() && !q.closed {
            let (guard, _) = self
                .cv
                .wait_timeout(q, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            q = guard;
        }
        match q.events.pop_front() {
            Some(ev) => Next::Event(Box::new(ev)),
            None if q.closed => Next::Closed,
            None => Next::Idle,
        }
    }

    /// Events this subscriber lost to the drop-oldest bound.
    pub fn dropped(&self) -> usize {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// Per-campaign event fan-out.
struct EventHub {
    subscribers: Mutex<Vec<Arc<Subscriber>>>,
    capacity: usize,
    dropped_total: AtomicUsize,
}

impl EventHub {
    fn new(capacity: usize) -> EventHub {
        EventHub {
            subscribers: Mutex::new(Vec::new()),
            capacity: capacity.max(1),
            dropped_total: AtomicUsize::new(0),
        }
    }

    fn subscribe(&self) -> Arc<Subscriber> {
        let sub = Arc::new(Subscriber::new());
        lock_recover(&self.subscribers).push(sub.clone());
        sub
    }

    /// Remove `sub`; returns how many subscribers remain.
    fn unsubscribe(&self, sub: &Arc<Subscriber>) -> usize {
        let mut subs = lock_recover(&self.subscribers);
        subs.retain(|s| !Arc::ptr_eq(s, sub));
        subs.len()
    }

    fn publish(&self, name: &str, data: String) {
        let subs = lock_recover(&self.subscribers).clone();
        for sub in subs {
            let mut q = lock_recover(&sub.queue);
            if q.closed {
                continue;
            }
            if q.events.len() >= self.capacity {
                q.events.pop_front();
                sub.dropped.fetch_add(1, Ordering::Relaxed);
                self.dropped_total.fetch_add(1, Ordering::Relaxed);
            }
            q.events.push_back(Event {
                name: name.to_string(),
                data: data.clone(),
            });
            sub.cv.notify_all();
        }
    }

    /// Mark every subscriber closed (they drain their queues and end).
    fn close_all(&self) {
        let subs = lock_recover(&self.subscribers).clone();
        for sub in subs {
            lock_recover(&sub.queue).closed = true;
            sub.cv.notify_all();
        }
    }

    fn dropped_total(&self) -> usize {
        self.dropped_total.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Service core
// ---------------------------------------------------------------------------

/// Per-attempt executor a test can install in place of
/// [`run_native_cached`] (gating points on flags makes shed/drain tests
/// deterministic instead of timing-dependent).
pub type PointRunner = dyn Fn(&ExperimentSpec, u32) -> PointResult + Send + Sync;

/// One admitted campaign: the specs, its cancel token, its event hub,
/// and progress counters.
struct CampaignEntry {
    id: usize,
    tenant: String,
    dir: PathBuf,
    specs: Vec<ExperimentSpec>,
    hashes: Vec<u64>,
    token: CancelToken,
    cancel_on_disconnect: bool,
    hub: EventHub,
    /// Points not yet executed or abandoned; reconciled into the global
    /// queue depth when the worker exits.
    outstanding: AtomicUsize,
    progress: Mutex<EntryProgress>,
    started: Instant,
}

struct EntryProgress {
    state: CampaignState,
    done: usize,
    failed: usize,
    restored: usize,
    wall_s: f64,
    user_canceled: bool,
    critical_path: Option<eth_obs::CriticalPathSummary>,
}

impl CampaignEntry {
    fn state(&self) -> CampaignState {
        lock_recover(&self.progress).state
    }

    fn status(&self) -> CampaignStatus {
        let p = lock_recover(&self.progress);
        CampaignStatus {
            id: self.id,
            tenant: self.tenant.clone(),
            state: p.state.name().to_string(),
            points_total: self.specs.len(),
            points_done: p.done,
            points_failed: p.failed,
            points_restored: p.restored,
            dropped_events: self.hub.dropped_total(),
            wall_s: if p.state == CampaignState::Running {
                self.started.elapsed().as_secs_f64()
            } else {
                p.wall_s
            },
            critical_path: p.critical_path.clone(),
        }
    }
}

struct ServiceState {
    entries: Vec<Arc<CampaignEntry>>,
    /// Unfinished points across all running campaigns (admission bound).
    queued_points: usize,
    /// Live campaign worker threads ([`Service::drain`] waits for 0).
    active: usize,
    next_id: usize,
}

struct ServiceInner {
    root: PathBuf,
    policy: ServicePolicy,
    /// Process-lifetime anchor for the `/metrics` uptime gauge.
    started: Instant,
    /// Scheduler slots each campaign's [`Campaign`] runs with.
    slots: usize,
    /// One cache set for the whole service: staging shared across
    /// campaigns *and* tenants.
    caches: RunCaches,
    /// Cross-tenant result memo keyed by [`journal::spec_hash`]. The
    /// per-key mutex makes the first requester compute while identical
    /// concurrent requesters block, then share the `Arc`'d outcome.
    #[allow(clippy::type_complexity)]
    memo: Mutex<HashMap<u64, Arc<Mutex<Option<Arc<NativeOutcome>>>>>>,
    state: Mutex<ServiceState>,
    /// Notified whenever a campaign worker exits (drain waits on this).
    wake: Condvar,
    metrics: Mutex<CounterSet>,
    /// Campaign telemetry merged across every finished campaign,
    /// exported under `eth_campaign_` from `/metrics`.
    campaign_metrics: Mutex<CounterSet>,
    draining: Arc<AtomicBool>,
    runner_override: Mutex<Option<Arc<PointRunner>>>,
}

/// The campaign service (cheap to clone; all clones share one state).
#[derive(Clone)]
pub struct Service {
    inner: Arc<ServiceInner>,
}

impl Service {
    /// Open (or create) a service rooted at `root`. Campaign journals
    /// live in `root/campaign-NNNN/`. Call [`Service::resume_existing`]
    /// to pick up campaigns a previous process left unfinished.
    pub fn new(root: &Path, policy: ServicePolicy) -> Result<Service> {
        fs::create_dir_all(root)?;
        let slots = thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        Ok(Service {
            inner: Arc::new(ServiceInner {
                root: root.to_path_buf(),
                policy,
                started: Instant::now(),
                slots,
                caches: RunCaches::new(),
                memo: Mutex::new(HashMap::new()),
                state: Mutex::new(ServiceState {
                    entries: Vec::new(),
                    queued_points: 0,
                    active: 0,
                    next_id: 0,
                }),
                wake: Condvar::new(),
                metrics: Mutex::new(CounterSet::new()),
                campaign_metrics: Mutex::new(CounterSet::new()),
                draining: Arc::new(AtomicBool::new(false)),
                runner_override: Mutex::new(None),
            }),
        })
    }

    /// Override the per-campaign scheduler slot budget (defaults to this
    /// host's available parallelism).
    pub fn with_slots(self, slots: usize) -> Service {
        // Sole-owner at construction time in practice; fall back to a
        // rebuilt inner if the Arc is shared.
        let mut inner = Arc::try_unwrap(self.inner).unwrap_or_else(|arc| ServiceInner {
            root: arc.root.clone(),
            policy: arc.policy.clone(),
            started: arc.started,
            slots: arc.slots,
            caches: RunCaches::new(),
            memo: Mutex::new(HashMap::new()),
            state: Mutex::new(ServiceState {
                entries: Vec::new(),
                queued_points: 0,
                active: 0,
                next_id: 0,
            }),
            wake: Condvar::new(),
            metrics: Mutex::new(CounterSet::new()),
            campaign_metrics: Mutex::new(CounterSet::new()),
            draining: arc.draining.clone(),
            runner_override: Mutex::new(None),
        });
        inner.slots = slots.max(1);
        Service {
            inner: Arc::new(inner),
        }
    }

    pub fn policy(&self) -> &ServicePolicy {
        &self.inner.policy
    }

    pub fn root(&self) -> &Path {
        &self.inner.root
    }

    pub fn is_draining(&self) -> bool {
        self.inner.draining.load(Ordering::SeqCst)
    }

    /// Unfinished points across all running campaigns.
    pub fn queue_depth(&self) -> usize {
        lock_recover(&self.inner.state).queued_points
    }

    /// Install a test executor in place of the real renderer. Test-only
    /// hook: lets shed/drain tests gate points on flags instead of
    /// timing.
    #[doc(hidden)]
    pub fn set_test_runner(&self, runner: Arc<PointRunner>) {
        *lock_recover(&self.inner.runner_override) = Some(runner);
    }

    /// The shared draining flag (test hook: lets a gated runner release
    /// points exactly when a drain begins, without polling the service
    /// through an `Arc` cycle).
    #[doc(hidden)]
    pub fn draining_flag(&self) -> Arc<AtomicBool> {
        self.inner.draining.clone()
    }

    /// Submit a campaign. Admission is all-or-nothing and synchronous:
    /// on `Ok` the campaign is journaled and its worker is running; on
    /// `Err` nothing was enqueued.
    pub fn submit(&self, req: &CampaignRequest) -> std::result::Result<CampaignStatus, AdmissionError> {
        if self.is_draining() {
            self.add_metric("draining_rejected_total", 1.0);
            return Err(AdmissionError::Draining);
        }
        if req.tenant.trim().is_empty() {
            return Err(AdmissionError::Invalid("tenant must be non-empty".into()));
        }
        // Memory-pressure shedding: above the high watermark the service
        // stops taking on staging work at all — clients get 429 with a
        // Retry-After hint instead of the process inching toward OOM.
        if let Some(high) = self
            .inner
            .policy
            .resources
            .as_ref()
            .and_then(|r| r.high_threshold_bytes())
        {
            let resident = eth_data::staging::process_resident_bytes();
            if resident >= high {
                self.add_metric("memory_pressure_shed_total", 1.0);
                return Err(self.shed(&format!(
                    "memory pressure: {resident} staged bytes resident, \
                     high watermark {high}"
                )));
            }
        }
        let specs = req
            .specs()
            .map_err(|e| AdmissionError::Invalid(e.to_string()))?;

        let entry = {
            let mut st = lock_recover(&self.inner.state);
            let inflight = st
                .entries
                .iter()
                .filter(|e| e.tenant == req.tenant && e.state() == CampaignState::Running)
                .count();
            if inflight >= self.inner.policy.per_tenant_inflight {
                drop(st);
                return Err(self.shed(&format!(
                    "tenant {} already has {inflight} campaigns in flight",
                    req.tenant
                )));
            }
            if st.queued_points + specs.len() > self.inner.policy.max_queued_points {
                let queued = st.queued_points;
                drop(st);
                return Err(self.shed(&format!(
                    "queue holds {queued} points; {} more would exceed the bound of {}",
                    specs.len(),
                    self.inner.policy.max_queued_points
                )));
            }
            let id = st.next_id;
            st.next_id += 1;
            let dir = self.campaign_dir(id);
            if let Err(e) = self.write_record(&dir, id, req, false) {
                st.next_id = id; // roll the id back; nothing was admitted
                drop(st);
                return Err(AdmissionError::Io(e));
            }
            let entry = self.make_entry(id, req, specs, dir);
            st.queued_points += entry.specs.len();
            st.active += 1;
            st.entries.push(entry.clone());
            let depth = st.queued_points;
            let active = st.active;
            drop(st);
            self.set_metric("queue_depth_points", depth as f64);
            self.set_metric("inflight_campaigns", active as f64);
            entry
        };
        self.add_metric("admitted_campaigns_total", 1.0);
        self.update_tenant_gauge(&entry.tenant);
        self.spawn_worker(entry.clone());
        Ok(entry.status())
    }

    /// Scan the root for campaigns a previous process left unfinished
    /// and restart each one against its existing journal (finished
    /// points restore byte-identical; only the remainder re-runs).
    /// Returns the resumed campaign ids.
    pub fn resume_existing(&self) -> Result<Vec<usize>> {
        let mut dirs: Vec<PathBuf> = fs::read_dir(&self.inner.root)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.is_dir()
                    && p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with(CAMPAIGN_DIR_PREFIX))
            })
            .collect();
        dirs.sort();
        let mut resumed = Vec::new();
        for dir in dirs {
            let record_path = dir.join(SERVICE_FILE);
            let Ok(text) = fs::read_to_string(&record_path) else {
                continue; // crashed before the admission record: nothing to resume
            };
            let record: ServiceRecord = match serde_json::from_str(&text) {
                Ok(r) => r,
                Err(_) => {
                    self.add_metric("resume_skipped_total", 1.0);
                    continue;
                }
            };
            {
                let mut st = lock_recover(&self.inner.state);
                st.next_id = st.next_id.max(record.id + 1);
            }
            if record.done {
                // Terminal history: register so status endpoints still
                // answer for it, but do not re-run anything.
                if let Some(entry) = self.restore_terminal(&dir, &record) {
                    lock_recover(&self.inner.state).entries.push(entry);
                }
                continue;
            }
            let specs = record.request.specs()?;
            let entry = self.make_entry(record.id, &record.request, specs, dir);
            {
                let mut st = lock_recover(&self.inner.state);
                st.queued_points += entry.specs.len();
                st.active += 1;
                st.entries.push(entry.clone());
                let depth = st.queued_points;
                let active = st.active;
                drop(st);
                self.set_metric("queue_depth_points", depth as f64);
                self.set_metric("inflight_campaigns", active as f64);
            }
            self.add_metric("resumed_campaigns_total", 1.0);
            self.update_tenant_gauge(&entry.tenant);
            resumed.push(entry.id);
            self.spawn_worker(entry);
        }
        Ok(resumed)
    }

    pub fn status(&self, id: usize) -> Option<CampaignStatus> {
        self.entry(id).map(|e| e.status())
    }

    pub fn list(&self) -> Vec<CampaignStatus> {
        let mut all: Vec<CampaignStatus> = lock_recover(&self.inner.state)
            .entries
            .iter()
            .map(|e| e.status())
            .collect();
        all.sort_by_key(|s| s.id);
        all
    }

    /// Tenant-initiated cancellation (terminal; not resumed on restart).
    pub fn cancel(&self, id: usize) -> bool {
        let Some(entry) = self.entry(id) else {
            return false;
        };
        {
            let mut p = lock_recover(&entry.progress);
            if p.state != CampaignState::Running {
                return false;
            }
            p.user_canceled = true;
        }
        entry.token.cancel();
        self.add_metric("canceled_campaigns_total", 1.0);
        true
    }

    /// Subscribe to a campaign's SSE event stream.
    pub fn subscribe(&self, id: usize) -> Option<Arc<Subscriber>> {
        let entry = self.entry(id)?;
        let sub = entry.hub.subscribe();
        // Seed the stream so a subscriber always sees current state
        // immediately, even if it arrived after the last point finished.
        let status = serde_json::to_string(&entry.status()).unwrap_or_default();
        {
            let mut q = lock_recover(&sub.queue);
            q.events.push_front(Event {
                name: "status".to_string(),
                data: status,
            });
            if entry.state() != CampaignState::Running {
                q.closed = true;
            }
        }
        sub.cv.notify_all();
        Some(sub)
    }

    /// Drop an SSE subscription; with `cancel_on_disconnect`, losing the
    /// last subscriber mid-run cancels the campaign (it stays resumable).
    pub fn unsubscribe(&self, id: usize, sub: &Arc<Subscriber>, disconnected: bool) {
        let Some(entry) = self.entry(id) else {
            return;
        };
        let remaining = entry.hub.unsubscribe(sub);
        if disconnected
            && entry.cancel_on_disconnect
            && remaining == 0
            && entry.state() == CampaignState::Running
        {
            entry.token.cancel();
            self.add_metric("disconnect_cancels_total", 1.0);
        }
    }

    /// PNG-encode the first finished image of point `index` (loads the
    /// journaled result, so it works during *and* after the campaign —
    /// and after a restart).
    pub fn point_png(&self, id: usize, index: usize) -> Option<Vec<u8>> {
        let entry = self.entry(id)?;
        let spec = entry.specs.get(index)?;
        let outcome = journal::load_result(&entry.dir, index, entry.hashes[index], spec).ok()?;
        outcome.images.first().map(|img| img.to_png())
    }

    /// Stop admission, cancel every running campaign (in-flight points
    /// finish and journal; queued points are abandoned), and wait up to
    /// `drain_timeout_ms` for workers to exit. Idempotent.
    pub fn drain(&self) -> DrainReport {
        let t0 = Instant::now();
        self.inner.draining.store(true, Ordering::SeqCst);
        let timeout = Duration::from_millis(self.inner.policy.drain_timeout_ms);
        {
            let st = lock_recover(&self.inner.state);
            for entry in &st.entries {
                if entry.state() == CampaignState::Running {
                    entry.token.cancel();
                }
            }
        }
        let mut st = lock_recover(&self.inner.state);
        let timed_out = loop {
            if st.active == 0 {
                break false;
            }
            let Some(left) = timeout.checked_sub(t0.elapsed()) else {
                break true;
            };
            let (guard, _) = self
                .inner
                .wake
                .wait_timeout(st, left)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
        };
        let mut report = DrainReport {
            campaigns_total: st.entries.len(),
            completed: 0,
            interrupted: 0,
            canceled: 0,
            failed: 0,
            still_running: 0,
            timed_out,
            wall_s: t0.elapsed().as_secs_f64(),
        };
        for entry in &st.entries {
            match entry.state() {
                CampaignState::Done => report.completed += 1,
                CampaignState::Interrupted => report.interrupted += 1,
                CampaignState::Canceled => report.canceled += 1,
                CampaignState::Failed => report.failed += 1,
                CampaignState::Running => report.still_running += 1,
            }
        }
        drop(st);
        self.set_metric("drains_total", 1.0);
        report
    }

    /// `/metrics` body: service counters under `eth_serve_`, merged
    /// campaign telemetry under `eth_campaign_`.
    pub fn metrics_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = counters_to_prometheus("eth_serve_", &lock_recover(&self.inner.metrics));
        out.push_str(&counters_to_prometheus(
            "eth_campaign_",
            &lock_recover(&self.inner.campaign_metrics),
        ));
        let _ = writeln!(
            out,
            "# HELP eth_serve_process_uptime_seconds Seconds since this service started.\n\
             # TYPE eth_serve_process_uptime_seconds gauge\n\
             eth_serve_process_uptime_seconds {:.3}",
            self.inner.started.elapsed().as_secs_f64()
        );
        let _ = writeln!(
            out,
            "# HELP eth_serve_build_info Build metadata as labels; value is always 1.\n\
             # TYPE eth_serve_build_info gauge\n\
             eth_serve_build_info{{version=\"{}\"}} 1",
            crate::telemetry::escape_label_value(env!("CARGO_PKG_VERSION"))
        );
        // Process-wide pressure gauges straight from the staging byte
        // accountant, so backpressure is observable where operators
        // already look.
        let _ = writeln!(
            out,
            "# HELP eth_serve_staging_resident_bytes Staged blocks resident in memory, process-wide.\n\
             # TYPE eth_serve_staging_resident_bytes gauge\n\
             eth_serve_staging_resident_bytes {}",
            eth_data::staging::process_resident_bytes()
        );
        let _ = writeln!(
            out,
            "# HELP eth_serve_staging_spilled_bytes_total Staged bytes spilled to disk chunks, process lifetime.\n\
             # TYPE eth_serve_staging_spilled_bytes_total counter\n\
             eth_serve_staging_spilled_bytes_total {}",
            eth_data::staging::process_spilled_bytes()
        );
        out
    }

    /// The stitched Chrome-trace JSON a finished campaign persisted, if
    /// its worker recorded any spans (`GET /campaigns/{id}/trace`).
    pub fn campaign_trace(&self, id: usize) -> Option<Vec<u8>> {
        let entry = self.entry(id)?;
        fs::read(entry.dir.join(TRACE_FILE)).ok()
    }

    // -- internals ----------------------------------------------------------

    fn entry(&self, id: usize) -> Option<Arc<CampaignEntry>> {
        lock_recover(&self.inner.state)
            .entries
            .iter()
            .find(|e| e.id == id)
            .cloned()
    }

    fn campaign_dir(&self, id: usize) -> PathBuf {
        self.inner.root.join(format!("{CAMPAIGN_DIR_PREFIX}{id:04}"))
    }

    fn shed(&self, reason: &str) -> AdmissionError {
        self.add_metric("shed_total", 1.0);
        let (depth, _) = {
            let st = lock_recover(&self.inner.state);
            (st.queued_points, st.active)
        };
        // Crude but monotone: the deeper the queue, the longer the hint.
        let retry_after_s = 1 + (depth / self.inner.slots.max(1)) as u64;
        AdmissionError::Shed {
            retry_after_s,
            reason: reason.to_string(),
        }
    }

    fn write_record(&self, dir: &Path, id: usize, req: &CampaignRequest, done: bool) -> Result<()> {
        fs::create_dir_all(dir)?;
        let record = ServiceRecord {
            id,
            request: req.clone(),
            done,
        };
        let text = serde_json::to_string_pretty(&record)
            .map_err(|e| CoreError::Config(format!("serialize service record: {e}")))?;
        fs::write(dir.join(SERVICE_FILE), text)?;
        Ok(())
    }

    fn make_entry(
        &self,
        id: usize,
        req: &CampaignRequest,
        specs: Vec<ExperimentSpec>,
        dir: PathBuf,
    ) -> Arc<CampaignEntry> {
        let hashes = specs.iter().map(journal::spec_hash).collect();
        let outstanding = AtomicUsize::new(specs.len());
        Arc::new(CampaignEntry {
            id,
            tenant: req.tenant.clone(),
            dir,
            specs,
            hashes,
            token: CancelToken::new(),
            cancel_on_disconnect: req.cancel_on_disconnect,
            hub: EventHub::new(self.inner.policy.subscriber_buffer),
            outstanding,
            progress: Mutex::new(EntryProgress {
                state: CampaignState::Running,
                done: 0,
                failed: 0,
                restored: 0,
                wall_s: 0.0,
                user_canceled: false,
                critical_path: None,
            }),
            started: Instant::now(),
        })
    }

    /// Rebuild a terminal entry from its persisted summary (restart).
    fn restore_terminal(&self, dir: &Path, record: &ServiceRecord) -> Option<Arc<CampaignEntry>> {
        let specs = record.request.specs().ok()?;
        let entry = self.make_entry(record.id, &record.request, specs, dir.to_path_buf());
        entry.outstanding.store(0, Ordering::SeqCst);
        let summary: Option<CampaignStatus> = fs::read_to_string(dir.join(OUTCOME_FILE))
            .ok()
            .and_then(|t| serde_json::from_str(&t).ok());
        {
            let mut p = lock_recover(&entry.progress);
            match summary {
                Some(s) => {
                    p.state = match s.state.as_str() {
                        "canceled" => CampaignState::Canceled,
                        "failed" => CampaignState::Failed,
                        _ => CampaignState::Done,
                    };
                    p.done = s.points_done;
                    p.failed = s.points_failed;
                    p.restored = s.points_restored;
                    p.wall_s = s.wall_s;
                    p.critical_path = s.critical_path;
                }
                None => p.state = CampaignState::Done,
            }
        }
        Some(entry)
    }

    /// Execute one point through the cross-tenant dedupe memo: the first
    /// requester of a spec hash computes (holding the per-key slot), and
    /// every identical concurrent or later request shares the outcome.
    fn run_point(&self, spec: &ExperimentSpec, attempt: u32) -> PointResult {
        let exec = |spec: &ExperimentSpec, attempt: u32| -> PointResult {
            let over = lock_recover(&self.inner.runner_override).clone();
            match over {
                Some(runner) => runner(spec, attempt),
                None => run_native_cached(&spec_for_attempt(spec, attempt), &self.inner.caches),
            }
        };
        if attempt > 1 {
            // Retried attempts run a perturbed spec; never memoized.
            return exec(spec, attempt);
        }
        let key = journal::spec_hash(spec);
        let slot = lock_recover(&self.inner.memo)
            .entry(key)
            .or_default()
            .clone();
        let mut guard = lock_recover(&slot);
        if let Some(hit) = guard.as_ref() {
            self.add_metric("dedupe_hits_total", 1.0);
            return Ok((**hit).clone());
        }
        self.add_metric("dedupe_misses_total", 1.0);
        let result = exec(spec, attempt);
        if let Ok(outcome) = &result {
            *guard = Some(Arc::new(outcome.clone()));
        }
        result
    }

    fn spawn_worker(&self, entry: Arc<CampaignEntry>) {
        let service = self.clone();
        let name = format!("eth-serve-campaign-{}", entry.id);
        let worker_entry = entry.clone();
        let spawn = thread::Builder::new().name(name).spawn(move || {
            let entry = worker_entry;
            let run = catch_unwind(AssertUnwindSafe(|| service.run_campaign(&entry)));
            if run.is_err() {
                service.add_metric("worker_panics_total", 1.0);
                let mut p = lock_recover(&entry.progress);
                p.state = CampaignState::Failed;
                p.wall_s = entry.started.elapsed().as_secs_f64();
            }
            service.finish_worker(&entry);
        });
        if spawn.is_err() {
            // Could not start the worker: undo the admission bookkeeping
            // so drain and the queue bound don't wait on a ghost.
            self.add_metric("worker_spawn_failures_total", 1.0);
            let mut p = lock_recover(&entry.progress);
            p.state = CampaignState::Failed;
            drop(p);
            self.finish_worker(&entry);
        }
    }

    /// Worker epilogue: reconcile queue depth, persist the terminal
    /// record, publish the final event, and wake any drain waiter.
    fn finish_worker(&self, entry: &Arc<CampaignEntry>) {
        let remaining = entry.outstanding.swap(0, Ordering::SeqCst);
        {
            let mut st = lock_recover(&self.inner.state);
            st.queued_points = st.queued_points.saturating_sub(remaining);
            st.active = st.active.saturating_sub(1);
            let depth = st.queued_points;
            let active = st.active;
            drop(st);
            self.set_metric("queue_depth_points", depth as f64);
            self.set_metric("inflight_campaigns", active as f64);
        }
        self.update_tenant_gauge(&entry.tenant);
        let status = entry.status();
        if entry.state().is_terminal() {
            let req = CampaignRequest {
                tenant: entry.tenant.clone(),
                base: entry.specs[0].clone(),
                algorithms: Vec::new(),
                couplings: Vec::new(),
                sampling_ratios: Vec::new(),
                rank_counts: Vec::new(),
                cancel_on_disconnect: entry.cancel_on_disconnect,
            };
            // Re-read the original request if possible so the persisted
            // record keeps the tenant's sweep axes (not the flattened
            // base); fall back to the synthesized single-point form.
            let original: Option<ServiceRecord> = fs::read_to_string(entry.dir.join(SERVICE_FILE))
                .ok()
                .and_then(|t| serde_json::from_str(&t).ok());
            let request = original.map(|r| r.request).unwrap_or(req);
            let _ = self.write_record(&entry.dir, entry.id, &request, true);
        }
        if let Ok(text) = serde_json::to_string_pretty(&status) {
            let _ = fs::write(entry.dir.join(OUTCOME_FILE), text);
        }
        entry.hub.publish(
            "campaign-done",
            serde_json::to_string(&status).unwrap_or_default(),
        );
        entry.hub.close_all();
        self.inner.wake.notify_all();
    }

    fn run_campaign(&self, entry: &Arc<CampaignEntry>) {
        entry.hub.publish(
            "campaign-started",
            serde_json::to_string(&entry.status()).unwrap_or_default(),
        );
        let mut campaign = Campaign::with_capacity(self.inner.slots)
            .with_cancel_token(entry.token.clone());
        if let Some(resources) = &self.inner.policy.resources {
            campaign = campaign.with_resources(resources.clone());
        }
        let result = campaign.run_journaled_custom(&entry.specs, &entry.dir, |index, spec, attempt| {
            entry.hub.publish(
                "point-started",
                serde_json::to_string(&PointEvent {
                    index,
                    name: spec.name.clone(),
                    ok: true,
                    wall_s: 0.0,
                })
                .unwrap_or_default(),
            );
            let t0 = Instant::now();
            let point = self.run_point(spec, attempt);
            // One fewer unfinished point, globally and for this entry.
            let _ = entry
                .outstanding
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1));
            {
                let mut st = lock_recover(&self.inner.state);
                st.queued_points = st.queued_points.saturating_sub(1);
                let depth = st.queued_points;
                drop(st);
                self.set_metric("queue_depth_points", depth as f64);
            }
            let wall_s = t0.elapsed().as_secs_f64();
            self.observe_metric("point_s", wall_s);
            match &point {
                Ok(outcome) => {
                    {
                        let mut p = lock_recover(&entry.progress);
                        p.done += 1;
                    }
                    entry.hub.publish(
                        "point-finished",
                        serde_json::to_string(&PointEvent {
                            index,
                            name: spec.name.clone(),
                            ok: true,
                            wall_s,
                        })
                        .unwrap_or_default(),
                    );
                    if let Some(image) = outcome.images.first() {
                        entry.hub.publish(
                            "image",
                            serde_json::to_string(&ImageEvent {
                                index,
                                width: image.width(),
                                height: image.height(),
                                png_base64: base64(&image.to_png()),
                            })
                            .unwrap_or_default(),
                        );
                    }
                }
                Err(e) => {
                    if !matches!(e, CoreError::Canceled) {
                        let mut p = lock_recover(&entry.progress);
                        p.failed += 1;
                    }
                    entry.hub.publish(
                        "point-failed",
                        serde_json::to_string(&PointEvent {
                            index,
                            name: spec.name.clone(),
                            ok: false,
                            wall_s,
                        })
                        .unwrap_or_default(),
                    );
                }
            }
            point
        });
        let mut p = lock_recover(&entry.progress);
        p.wall_s = entry.started.elapsed().as_secs_f64();
        match result {
            Err(e) => {
                p.state = CampaignState::Failed;
                drop(p);
                self.add_metric("failed_campaigns_total", 1.0);
                entry
                    .hub
                    .publish("error", format!("{{\"message\":{}}}", json_string(&e.to_string())));
            }
            Ok(outcome) => {
                let interrupted = outcome
                    .results
                    .iter()
                    .any(|r| matches!(r, Err(CoreError::Canceled)));
                let done = outcome.results.iter().filter(|r| r.is_ok()).count();
                let failed = outcome
                    .results
                    .iter()
                    .filter(|r| matches!(r, Err(e) if !matches!(e, CoreError::Canceled)))
                    .count();
                p.done = done;
                p.failed = failed;
                p.restored = outcome.restored.len();
                p.state = if p.user_canceled {
                    CampaignState::Canceled
                } else if interrupted {
                    CampaignState::Interrupted
                } else {
                    CampaignState::Done
                };
                let state = p.state;
                drop(p);
                if state == CampaignState::Interrupted {
                    self.add_metric("interrupted_campaigns_total", 1.0);
                } else if state == CampaignState::Done {
                    self.add_metric("completed_campaigns_total", 1.0);
                }
                lock_recover(&self.inner.campaign_metrics).merge(&outcome.telemetry.counters);
                entry.hub.publish(
                    "telemetry",
                    serde_json::to_string(&outcome.telemetry.counters).unwrap_or_default(),
                );
                // Stitch the campaign's cross-rank trace: persist the
                // Perfetto view for `GET /campaigns/{id}/trace` and carry
                // the critical-path summary onto the terminal status.
                if !outcome.trace.records.is_empty() {
                    let merged = eth_obs::MergedTrace::build(outcome.trace);
                    let _ = fs::write(entry.dir.join(TRACE_FILE), merged.to_chrome_trace());
                    if let Some(cp) = merged.critical_path {
                        lock_recover(&entry.progress).critical_path = Some(cp);
                    }
                }
            }
        }
    }

    fn add_metric(&self, name: &str, v: f64) {
        lock_recover(&self.inner.metrics).add(name, v);
    }

    fn set_metric(&self, name: &str, v: f64) {
        lock_recover(&self.inner.metrics).set(name, v);
    }

    fn observe_metric(&self, name: &str, v: f64) {
        lock_recover(&self.inner.metrics).observe(name, v);
    }

    fn update_tenant_gauge(&self, tenant: &str) {
        let inflight = lock_recover(&self.inner.state)
            .entries
            .iter()
            .filter(|e| e.tenant == tenant && e.state() == CampaignState::Running)
            .count();
        self.set_metric(&format!("inflight_tenant_{tenant}"), inflight as f64);
    }
}

#[derive(Serialize)]
struct PointEvent {
    index: usize,
    name: String,
    ok: bool,
    wall_s: f64,
}

#[derive(Serialize)]
struct ImageEvent {
    index: usize,
    width: usize,
    height: usize,
    png_base64: String,
}

// ---------------------------------------------------------------------------
// HTTP server (hand-rolled on std TCP)
// ---------------------------------------------------------------------------

/// The HTTP front of a [`Service`]: one accept thread, one thread per
/// connection, panic-contained handlers, per-request read deadlines.
pub struct Server {
    service: Service,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<thread::JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// serving `service` in background threads.
    pub fn start(service: Service, addr: &str) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let service = service.clone();
            let stop = stop.clone();
            thread::Builder::new()
                .name("eth-serve-accept".to_string())
                .spawn(move || accept_loop(listener, service, stop))?
        };
        Ok(Server {
            service,
            addr: local,
            stop,
            accept: Some(accept),
        })
    }

    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn service(&self) -> &Service {
        &self.service
    }

    /// Stop accepting connections (existing SSE streams run to their
    /// campaign's end on their own threads). Idempotent.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, service: Service, stop: Arc<AtomicBool>) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let service = service.clone();
        let _ = thread::Builder::new()
            .name("eth-serve-conn".to_string())
            .spawn(move || handle_connection(service, stream));
    }
}

/// Panic containment boundary: a handler panic becomes a 500 and a
/// counter, never a dead server.
fn handle_connection(service: Service, stream: TcpStream) {
    let spare = stream.try_clone().ok();
    let outcome = catch_unwind(AssertUnwindSafe(|| handle_request(&service, stream)));
    if outcome.is_err() {
        service.add_metric("connection_panics_total", 1.0);
        if let Some(mut s) = spare {
            let _ = write_response(
                &mut s,
                &Response::json(500, "{\"error\":\"internal server error\"}"),
            );
        }
    }
}

struct Request {
    method: String,
    path: String,
    body: Vec<u8>,
}

enum RequestError {
    /// The read deadline expired mid-request (408).
    Timeout,
    /// Head or body exceeded its bound (431/413).
    TooLarge,
    /// Unparseable request (400).
    Bad(&'static str),
    /// The client closed before sending anything; not an error.
    Closed,
}

struct Response {
    status: u16,
    content_type: &'static str,
    body: Vec<u8>,
    retry_after: Option<u64>,
}

impl Response {
    fn json(status: u16, body: &str) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.as_bytes().to_vec(),
            retry_after: None,
        }
    }

    fn text(status: u16, body: &str) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.as_bytes().to_vec(),
            retry_after: None,
        }
    }
}

fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "OK",
    }
}

fn write_response(stream: &mut TcpStream, resp: &Response) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        resp.status,
        status_reason(resp.status),
        resp.content_type,
        resp.body.len()
    );
    if let Some(secs) = resp.retry_after {
        head.push_str(&format!("Retry-After: {secs}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&resp.body)?;
    stream.flush()
}

/// Read one HTTP/1.1 request (head ≤ 16 KiB, body ≤ 4 MiB) under a
/// wall-clock deadline enforced through socket read timeouts.
fn read_request(stream: &mut TcpStream, deadline: Duration) -> std::result::Result<Request, RequestError> {
    let t0 = Instant::now();
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(RequestError::TooLarge);
        }
        let Some(left) = deadline.checked_sub(t0.elapsed()) else {
            return Err(RequestError::Timeout);
        };
        let _ = stream.set_read_timeout(Some(left.max(Duration::from_millis(1))));
        match stream.read(&mut chunk) {
            Ok(0) => {
                return if buf.is_empty() {
                    Err(RequestError::Closed)
                } else {
                    Err(RequestError::Bad("truncated request head"))
                };
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                return Err(RequestError::Timeout);
            }
            Err(_) => return Err(RequestError::Closed),
        }
    };

    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| RequestError::Bad("non-utf8 head"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or(RequestError::Bad("missing method"))?.to_string();
    let path = parts.next().ok_or(RequestError::Bad("missing path"))?.to_string();
    let mut content_length = 0usize;
    for line in lines {
        if let Some((k, v)) = line.split_once(':') {
            if k.trim().eq_ignore_ascii_case("content-length") {
                content_length = v.trim().parse().map_err(|_| RequestError::Bad("bad content-length"))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(RequestError::TooLarge);
    }

    let mut body: Vec<u8> = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let Some(left) = deadline.checked_sub(t0.elapsed()) else {
            return Err(RequestError::Timeout);
        };
        let _ = stream.set_read_timeout(Some(left.max(Duration::from_millis(1))));
        match stream.read(&mut chunk) {
            Ok(0) => return Err(RequestError::Bad("truncated body")),
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                return Err(RequestError::Timeout);
            }
            Err(_) => return Err(RequestError::Closed),
        }
    }
    body.truncate(content_length);
    Ok(Request { method, path, body })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn handle_request(service: &Service, mut stream: TcpStream) {
    let t0 = Instant::now();
    let deadline = Duration::from_millis(service.policy().request_deadline_ms.max(1));
    let request = match read_request(&mut stream, deadline) {
        Ok(r) => r,
        Err(RequestError::Closed) => return,
        Err(RequestError::Timeout) => {
            service.add_metric("deadline_expired_total", 1.0);
            let _ = write_response(&mut stream, &Response::json(408, "{\"error\":\"request deadline exceeded\"}"));
            return;
        }
        Err(RequestError::TooLarge) => {
            let _ = write_response(&mut stream, &Response::json(413, "{\"error\":\"request too large\"}"));
            return;
        }
        Err(RequestError::Bad(msg)) => {
            let _ = write_response(
                &mut stream,
                &Response::json(400, &format!("{{\"error\":{}}}", json_string(msg))),
            );
            return;
        }
    };
    service.add_metric("requests_total", 1.0);
    let path_only = request.path.split('?').next().unwrap_or("");
    let segments: Vec<&str> = path_only.split('/').filter(|s| !s.is_empty()).collect();

    // SSE is the one route that streams instead of returning a response.
    if request.method == "GET" && segments.len() == 3 && segments[0] == "campaigns" && segments[2] == "events" {
        if let Ok(id) = segments[1].parse::<usize>() {
            if service.entry(id).is_some() {
                handle_sse(service, id, stream);
                return;
            }
        }
        let _ = write_response(&mut stream, &Response::json(404, "{\"error\":\"no such campaign\"}"));
        return;
    }

    let response = route(service, &request, &segments);
    service.observe_metric("request_s", t0.elapsed().as_secs_f64());
    let _ = write_response(&mut stream, &response);
}

fn route(service: &Service, request: &Request, segments: &[&str]) -> Response {
    match (request.method.as_str(), segments) {
        ("GET", ["healthz"]) => Response::text(200, "ok\n"),
        ("GET", ["readyz"]) => {
            if service.is_draining() {
                Response::text(503, "draining\n")
            } else {
                Response::text(200, "ready\n")
            }
        }
        ("GET", ["metrics"]) => Response::text(200, &service.metrics_text()),
        ("POST", ["campaigns"]) => {
            let body = match std::str::from_utf8(&request.body) {
                Ok(s) => s,
                Err(_) => return Response::json(400, "{\"error\":\"body is not utf-8\"}"),
            };
            let req: CampaignRequest = match serde_json::from_str(body) {
                Ok(r) => r,
                Err(e) => {
                    return Response::json(
                        400,
                        &format!("{{\"error\":{}}}", json_string(&format!("bad campaign request: {e}"))),
                    )
                }
            };
            match service.submit(&req) {
                Ok(status) => Response::json(
                    201,
                    &serde_json::to_string(&status).unwrap_or_else(|_| "{}".to_string()),
                ),
                Err(AdmissionError::Draining) => Response::json(503, "{\"error\":\"service is draining\"}"),
                Err(AdmissionError::Shed { retry_after_s, reason }) => Response {
                    status: 429,
                    content_type: "application/json",
                    body: format!("{{\"error\":{}}}", json_string(&reason)).into_bytes(),
                    retry_after: Some(retry_after_s),
                },
                Err(AdmissionError::Invalid(msg)) => {
                    Response::json(400, &format!("{{\"error\":{}}}", json_string(&msg)))
                }
                Err(AdmissionError::Io(e)) => {
                    Response::json(500, &format!("{{\"error\":{}}}", json_string(&e.to_string())))
                }
            }
        }
        ("GET", ["campaigns"]) => Response::json(
            200,
            &serde_json::to_string(&service.list()).unwrap_or_else(|_| "[]".to_string()),
        ),
        ("GET", ["campaigns", id]) => match id.parse::<usize>().ok().and_then(|id| service.status(id)) {
            Some(status) => Response::json(
                200,
                &serde_json::to_string(&status).unwrap_or_else(|_| "{}".to_string()),
            ),
            None => Response::json(404, "{\"error\":\"no such campaign\"}"),
        },
        ("DELETE", ["campaigns", id]) => match id.parse::<usize>() {
            Ok(id) if service.cancel(id) => Response::json(202, "{\"canceled\":true}"),
            Ok(id) if service.status(id).is_some() => {
                Response::json(409, "{\"error\":\"campaign is not running\"}")
            }
            _ => Response::json(404, "{\"error\":\"no such campaign\"}"),
        },
        ("GET", ["campaigns", id, "trace"]) => {
            match id.parse::<usize>().ok().and_then(|id| service.campaign_trace(id)) {
                Some(body) => Response {
                    status: 200,
                    content_type: "application/json",
                    body,
                    retry_after: None,
                },
                None => Response::json(404, "{\"error\":\"campaign has no stitched trace\"}"),
            }
        }
        ("GET", ["campaigns", id, "points", index, "image"]) => {
            match (id.parse::<usize>(), index.parse::<usize>()) {
                (Ok(id), Ok(index)) => match service.point_png(id, index) {
                    Some(png) => Response {
                        status: 200,
                        content_type: "image/png",
                        body: png,
                        retry_after: None,
                    },
                    None => Response::json(404, "{\"error\":\"point has no finished image\"}"),
                },
                _ => Response::json(404, "{\"error\":\"bad campaign or point id\"}"),
            }
        }
        ("POST", ["drain"]) => {
            let report = service.drain();
            Response::json(
                200,
                &serde_json::to_string(&report).unwrap_or_else(|_| "{}".to_string()),
            )
        }
        _ => Response::json(404, "{\"error\":\"no such route\"}"),
    }
}

/// Stream a campaign's events as SSE until the campaign ends or the
/// client disconnects. Writes go through a short write timeout so a
/// stalled client is detected within ~2 ticks; the subscriber's bounded
/// queue means the scheduler never waits on this socket.
fn handle_sse(service: &Service, id: usize, mut stream: TcpStream) {
    let Some(sub) = service.subscribe(id) else {
        let _ = write_response(&mut stream, &Response::json(404, "{\"error\":\"no such campaign\"}"));
        return;
    };
    service.add_metric("sse_subscribers_total", 1.0);
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let head = "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\nCache-Control: no-cache\r\nConnection: close\r\n\r\n";
    let mut disconnected = stream.write_all(head.as_bytes()).is_err();
    while !disconnected {
        match sub.next(SSE_TICK) {
            Next::Event(ev) => {
                let frame = format!("event: {}\ndata: {}\n\n", ev.name, ev.data);
                disconnected = stream.write_all(frame.as_bytes()).is_err() || stream.flush().is_err();
            }
            Next::Idle => {
                disconnected = stream.write_all(b": keepalive\n\n").is_err() || stream.flush().is_err();
            }
            Next::Closed => break,
        }
    }
    if disconnected {
        service.add_metric("sse_disconnects_total", 1.0);
    }
    let dropped = sub.dropped();
    if dropped > 0 {
        service.add_metric("sse_dropped_events_total", dropped as f64);
    }
    service.unsubscribe(id, &sub, disconnected);
}

// ---------------------------------------------------------------------------
// Small codecs
// ---------------------------------------------------------------------------

/// Standard base64 (RFC 4648, with padding) — hand-rolled; no crates.
pub fn base64(data: &[u8]) -> String {
    const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let n = (b0 << 16) | (b1 << 8) | b2;
        out.push(ALPHABET[(n >> 18) as usize & 63] as char);
        out.push(ALPHABET[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            ALPHABET[(n >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            ALPHABET[n as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

/// JSON-escape `s` into a quoted string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base64_matches_known_vectors() {
        assert_eq!(base64(b""), "");
        assert_eq!(base64(b"f"), "Zg==");
        assert_eq!(base64(b"fo"), "Zm8=");
        assert_eq!(base64(b"foo"), "Zm9v");
        assert_eq!(base64(b"foobar"), "Zm9vYmFy");
        assert_eq!(base64(&[0xFF, 0x00, 0xAB]), "/wCr");
    }

    #[test]
    fn json_string_escapes_control_characters() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn subscriber_buffer_drops_oldest_never_blocks() {
        let hub = EventHub::new(3);
        let sub = hub.subscribe();
        for i in 0..10 {
            hub.publish("tick", format!("{i}"));
        }
        // Publishing 10 into a 3-deep queue keeps only the newest 3.
        let mut seen = Vec::new();
        for _ in 0..3 {
            match sub.next(Duration::from_millis(10)) {
                Next::Event(ev) => seen.push(ev.data.clone()),
                _ => panic!("expected an event"),
            }
        }
        assert_eq!(seen, vec!["7", "8", "9"]);
        assert_eq!(sub.dropped(), 7);
        assert_eq!(hub.dropped_total(), 7);
        assert!(matches!(sub.next(Duration::from_millis(5)), Next::Idle));
        hub.close_all();
        assert!(matches!(sub.next(Duration::from_millis(5)), Next::Closed));
    }

    #[test]
    fn service_policy_round_trips_through_json() {
        let policy = ServicePolicy::default();
        let text = serde_json::to_string(&policy).unwrap();
        let back: ServicePolicy = serde_json::from_str(&text).unwrap();
        assert_eq!(policy, back);
        assert_eq!(policy.max_queued_points, 64);
        assert_eq!(policy.per_tenant_inflight, 2);
    }

    #[test]
    fn campaign_request_defaults_optional_fields() {
        let spec = crate::config::ExperimentSpecBuilder::new("svc").build().unwrap();
        let body = format!(
            "{{\"tenant\":\"alice\",\"base\":{}}}",
            serde_json::to_string(&spec).unwrap()
        );
        let req: CampaignRequest = serde_json::from_str(&body).unwrap();
        assert_eq!(req.tenant, "alice");
        assert!(req.algorithms.is_empty());
        assert!(!req.cancel_on_disconnect);
        assert_eq!(req.specs().unwrap().len(), 1);
    }

    #[test]
    fn memory_pressure_sheds_submissions_with_retry_after() {
        let root = std::env::temp_dir().join(format!(
            "eth-serve-pressure-{:x}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&root);
        // A 1-byte budget puts the high watermark at 0 bytes: any process
        // residency (including none) is "over", so the shed path is
        // deterministic without pinning global gauges from a test.
        let policy = ServicePolicy {
            resources: Some(ResourcePolicy::with_memory_budget(1)),
            ..ServicePolicy::default()
        };
        let svc = Service::new(&root, policy).unwrap();
        let spec = crate::config::ExperimentSpecBuilder::new("pressure")
            .build()
            .unwrap();
        match svc.submit(&CampaignRequest::single("alice", spec)) {
            Err(AdmissionError::Shed { retry_after_s, reason }) => {
                assert!(retry_after_s >= 1);
                assert!(reason.contains("memory pressure"), "{reason}");
            }
            Err(other) => panic!("expected memory-pressure shed, got {other:?}"),
            Ok(_) => panic!("expected memory-pressure shed, got admission"),
        }
        let metrics = svc.metrics_text();
        assert!(metrics.contains("eth_serve_staging_resident_bytes"));
        assert!(metrics.contains("eth_serve_staging_spilled_bytes_total"));
        assert!(metrics.contains("eth_serve_memory_pressure_shed_total 1"));
        // Legacy service policies (no resources key) still deserialize.
        let legacy: ServicePolicy = serde_json::from_str(
            "{\"max_queued_points\":8,\"per_tenant_inflight\":1,\
             \"request_deadline_ms\":5,\"drain_timeout_ms\":5,\
             \"subscriber_buffer\":4}",
        )
        .unwrap();
        assert_eq!(legacy.resources, None);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn find_head_end_locates_crlf_boundary() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nbody"), Some(14));
        assert_eq!(find_head_end(b"partial\r\n"), None);
    }
}

