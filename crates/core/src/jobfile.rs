//! The job-layout file.
//!
//! "The job layout (i.e., where the visualization and simulation proxies
//! are run) is specified in a separate file … For subsequent exploration of
//! a different layout, the user simply changes the job layout file."
//! (Section VII)
//!
//! A [`JobLayout`] names the coupling strategy and the node assignment of
//! both proxies. It is stored as JSON; [`JobLayout::for_coupling`] builds
//! the canonical layouts the paper evaluates, and [`JobLayout::validate`]
//! catches hand-edited mistakes (overlapping internode halves, empty
//! sides, out-of-range nodes).

use crate::config::Coupling;
use crate::error::{CoreError, Result};
use eth_data::error::DataError;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// A node assignment for one experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobLayout {
    pub coupling: Coupling,
    pub total_nodes: u32,
    /// Node indices running the simulation proxy.
    pub sim_nodes: Vec<u32>,
    /// Node indices running the visualization proxy.
    pub viz_nodes: Vec<u32>,
}

impl JobLayout {
    /// The canonical layout for a coupling strategy on `total_nodes`.
    pub fn for_coupling(coupling: Coupling, total_nodes: u32) -> JobLayout {
        assert!(total_nodes >= 1);
        match coupling {
            Coupling::Tight | Coupling::Intercore => {
                // both proxies on every node
                let all: Vec<u32> = (0..total_nodes).collect();
                JobLayout {
                    coupling,
                    total_nodes,
                    sim_nodes: all.clone(),
                    viz_nodes: all,
                }
            }
            Coupling::Internode => {
                let half = (total_nodes / 2).max(1);
                JobLayout {
                    coupling,
                    total_nodes,
                    sim_nodes: (0..half).collect(),
                    viz_nodes: (half..total_nodes.max(half + 1)).collect(),
                }
            }
        }
    }

    /// Validate internal consistency.
    pub fn validate(&self) -> Result<()> {
        if self.sim_nodes.is_empty() || self.viz_nodes.is_empty() {
            return Err(CoreError::Config(
                "layout must assign at least one node to each proxy".into(),
            ));
        }
        for &n in self.sim_nodes.iter().chain(&self.viz_nodes) {
            if n >= self.total_nodes {
                return Err(CoreError::Config(format!(
                    "layout references node {n} but total_nodes is {}",
                    self.total_nodes
                )));
            }
        }
        match self.coupling {
            Coupling::Internode => {
                // space-shared: the halves must be disjoint
                for s in &self.sim_nodes {
                    if self.viz_nodes.contains(s) {
                        return Err(CoreError::Config(format!(
                            "internode layout shares node {s} between proxies"
                        )));
                    }
                }
            }
            Coupling::Tight | Coupling::Intercore => {
                // co-located: the sets must be identical
                if self.sim_nodes != self.viz_nodes {
                    return Err(CoreError::Config(
                        "tight/intercore layouts co-locate both proxies on the same nodes"
                            .into(),
                    ));
                }
            }
        }
        Ok(())
    }

    /// Number of ranks per proxy side.
    pub fn sim_rank_count(&self) -> usize {
        self.sim_nodes.len()
    }

    pub fn viz_rank_count(&self) -> usize {
        self.viz_nodes.len()
    }

    pub fn write_json(&self, path: &Path) -> Result<()> {
        let text = serde_json::to_string_pretty(self)
            .map_err(|e| CoreError::Config(format!("layout encode: {e}")))?;
        std::fs::write(path, text).map_err(DataError::from)?;
        Ok(())
    }

    pub fn read_json(path: &Path) -> Result<JobLayout> {
        let text = std::fs::read_to_string(path).map_err(DataError::from)?;
        let layout: JobLayout = serde_json::from_str(&text)
            .map_err(|e| CoreError::Config(format!("layout decode: {e}")))?;
        layout.validate()?;
        Ok(layout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_layouts_validate() {
        for c in Coupling::all() {
            let l = JobLayout::for_coupling(c, 8);
            l.validate().unwrap();
        }
    }

    #[test]
    fn internode_splits_in_half_disjointly() {
        let l = JobLayout::for_coupling(Coupling::Internode, 8);
        assert_eq!(l.sim_rank_count(), 4);
        assert_eq!(l.viz_rank_count(), 4);
        assert!(l.sim_nodes.iter().all(|n| !l.viz_nodes.contains(n)));
    }

    #[test]
    fn colocated_layouts_share_all_nodes() {
        let l = JobLayout::for_coupling(Coupling::Intercore, 4);
        assert_eq!(l.sim_nodes, l.viz_nodes);
        assert_eq!(l.sim_rank_count(), 4);
    }

    #[test]
    fn validation_catches_hand_edits() {
        let mut l = JobLayout::for_coupling(Coupling::Internode, 8);
        l.viz_nodes.push(0); // overlaps sim side
        assert!(l.validate().is_err());

        let mut l = JobLayout::for_coupling(Coupling::Tight, 4);
        l.viz_nodes.pop();
        assert!(l.validate().is_err());

        let mut l = JobLayout::for_coupling(Coupling::Tight, 4);
        l.sim_nodes[0] = 99;
        assert!(l.validate().is_err());

        let mut l = JobLayout::for_coupling(Coupling::Internode, 8);
        l.sim_nodes.clear();
        assert!(l.validate().is_err());
    }

    #[test]
    fn json_roundtrip() {
        let dir = std::env::temp_dir().join("eth-jobfile-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("layout.json");
        let l = JobLayout::for_coupling(Coupling::Internode, 16);
        l.write_json(&path).unwrap();
        let back = JobLayout::read_json(&path).unwrap();
        assert_eq!(l, back);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn read_rejects_invalid_file() {
        let dir = std::env::temp_dir().join("eth-jobfile-bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, "{\"not\": \"a layout\"}").unwrap();
        assert!(JobLayout::read_json(&path).is_err());
        // structurally valid JSON but semantically broken
        let mut l = JobLayout::for_coupling(Coupling::Internode, 4);
        l.viz_nodes = l.sim_nodes.clone();
        std::fs::write(&path, serde_json::to_string(&l).unwrap()).unwrap();
        assert!(JobLayout::read_json(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
