//! End-to-end tests of the campaign service: admission shed under
//! overload, cross-tenant dedupe, drain → restart → byte-identical
//! resume, and the HTTP surface (deadlines included).

use eth_core::config::{Algorithm, Application, ExperimentSpec};
use eth_core::journal;
use eth_core::serve::{AdmissionError, CampaignRequest, Server, Service, ServicePolicy};
use eth_core::{Campaign, RunCaches};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tmp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("eth-serve-test-{tag}-{:x}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn small_spec(name: &str) -> ExperimentSpec {
    ExperimentSpec::builder(name)
        .application(Application::Hacc { particles: 600 })
        .algorithm(Algorithm::GaussianSplat)
        .ranks(1)
        .image_size(16, 16)
        .build()
        .unwrap()
}

/// Poll `f` every few ms until it returns true, or panic after 30 s.
fn wait_until(what: &str, mut f: impl FnMut() -> bool) {
    let t0 = Instant::now();
    while !f() {
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "timed out waiting for {what}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn terminal(svc: &Service, id: usize) -> bool {
    svc.status(id)
        .map(|s| s.state != "running")
        .unwrap_or(false)
}

#[test]
fn overload_is_shed_while_admitted_campaigns_progress() {
    let root = tmp_root("shed");
    let policy = ServicePolicy {
        max_queued_points: 2,
        per_tenant_inflight: 1,
        ..ServicePolicy::default()
    };
    let svc = Service::new(&root, policy).unwrap().with_slots(1);

    // Gate the runner so the first campaign deterministically stays in
    // flight while we probe admission.
    let gate = Arc::new(AtomicBool::new(false));
    let runner_gate = gate.clone();
    svc.set_test_runner(Arc::new(move |spec, _attempt| {
        while !runner_gate.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(2));
        }
        eth_core::run_native(spec)
    }));

    let mut req_a = CampaignRequest::single("alice", small_spec("shed-a"));
    req_a.sampling_ratios = vec![0.5, 1.0]; // two points, fills the queue bound
    let admitted = svc.submit(&req_a).expect("first campaign admits");

    // Same tenant again: per-tenant in-flight cap.
    let err = svc.submit(&req_a).unwrap_err();
    assert!(
        matches!(err, AdmissionError::Shed { .. }),
        "expected per-tenant shed, got {err}"
    );

    // Different tenant: global queued-points bound (2 + 1 > 2).
    let req_b = CampaignRequest::single("bob", small_spec("shed-b"));
    match svc.submit(&req_b).unwrap_err() {
        AdmissionError::Shed { retry_after_s, reason } => {
            assert!(retry_after_s >= 1);
            assert!(reason.contains("bound"), "reason: {reason}");
        }
        other => panic!("expected queue shed, got {other}"),
    }

    // Shedding happened while the admitted campaign was untouched; let
    // it finish and verify the queue reopens.
    gate.store(true, Ordering::SeqCst);
    wait_until("campaign to finish", || terminal(&svc, admitted.id));
    assert_eq!(svc.status(admitted.id).unwrap().state, "done");
    assert_eq!(svc.queue_depth(), 0);
    svc.submit(&req_b).expect("queue reopened after completion");

    let metrics = svc.metrics_text();
    assert!(metrics.contains("eth_serve_shed_total 2"), "{metrics}");
    assert!(metrics.contains("eth_serve_queue_depth_points"), "{metrics}");
}

#[test]
fn identical_specs_across_tenants_cost_one_render() {
    let root = tmp_root("dedupe");
    let svc = Service::new(&root, ServicePolicy::default()).unwrap().with_slots(2);

    // Identical base (same name) → identical spec hash → one render.
    let a = svc
        .submit(&CampaignRequest::single("alice", small_spec("shared")))
        .unwrap();
    wait_until("alice's campaign", || terminal(&svc, a.id));
    let b = svc
        .submit(&CampaignRequest::single("bob", small_spec("shared")))
        .unwrap();
    wait_until("bob's campaign", || terminal(&svc, b.id));

    assert_eq!(svc.status(a.id).unwrap().state, "done");
    assert_eq!(svc.status(b.id).unwrap().state, "done");
    let metrics = svc.metrics_text();
    assert!(metrics.contains("eth_serve_dedupe_hits_total 1"), "{metrics}");
    assert!(metrics.contains("eth_serve_dedupe_misses_total 1"), "{metrics}");

    // Both tenants' journaled artifacts are byte-identical.
    let png_a = svc.point_png(a.id, 0).expect("alice image");
    let png_b = svc.point_png(b.id, 0).expect("bob image");
    assert!(!png_a.is_empty());
    assert_eq!(png_a, png_b);
}

#[test]
fn drain_interrupts_journals_and_restart_resumes_byte_identical() {
    let root = tmp_root("drain");
    let specs: Vec<ExperimentSpec> = {
        let mut req = CampaignRequest::single("carol", small_spec("drain"));
        req.sampling_ratios = vec![0.25, 0.5, 0.75, 1.0];
        req.specs().unwrap()
    };

    // Reference: the same four points run undisturbed.
    let ref_dir = tmp_root("drain-ref");
    let reference = Campaign::with_capacity(1)
        .run_journaled(&specs, &RunCaches::new(), &ref_dir)
        .unwrap();
    assert_eq!(reference.failures(), 0);

    // Service run, interrupted after point 0: points ≥ 1 are gated on
    // the draining flag, so exactly one point finishes before drain and
    // one finishes during it (in-flight work runs to completion and
    // journals); the rest are canceled while queued.
    let svc = Service::new(&root, ServicePolicy::default()).unwrap().with_slots(1);
    let first = specs[0].name.clone();
    let draining = svc.draining_flag();
    svc.set_test_runner(Arc::new(move |spec, _attempt| {
        while spec.name != first && !draining.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(2));
        }
        eth_core::run_native(spec)
    }));
    let mut req = CampaignRequest::single("carol", small_spec("drain"));
    req.sampling_ratios = vec![0.25, 0.5, 0.75, 1.0];
    let admitted = svc.submit(&req).unwrap();
    wait_until("first point", || {
        svc.status(admitted.id).map(|s| s.points_done >= 1).unwrap_or(false)
    });

    let report = svc.drain();
    assert!(!report.timed_out, "drain timed out: {report:?}");
    assert_eq!(report.interrupted, 1, "{report:?}");
    let status = svc.status(admitted.id).unwrap();
    assert_eq!(status.state, "interrupted");
    assert!(status.points_done >= 1);
    assert!(status.points_done < specs.len(), "nothing left to resume");

    // Draining services shed everything.
    assert!(matches!(
        svc.submit(&CampaignRequest::single("dave", small_spec("late"))),
        Err(AdmissionError::Draining)
    ));
    drop(svc);

    // "Restart": a fresh service over the same root resumes the
    // campaign; finished points restore from the WAL instead of
    // re-running.
    let done_before_restart = status.points_done;
    let svc2 = Service::new(&root, ServicePolicy::default()).unwrap().with_slots(1);
    let resumed = svc2.resume_existing().unwrap();
    assert_eq!(resumed, vec![admitted.id]);
    wait_until("resumed campaign", || terminal(&svc2, admitted.id));
    let final_status = svc2.status(admitted.id).unwrap();
    assert_eq!(final_status.state, "done");
    assert_eq!(final_status.points_restored, done_before_restart);
    assert_eq!(final_status.points_done, specs.len());

    // Byte-identical to the undisturbed reference, restored and re-run
    // points alike.
    let dir = root.join("campaign-0000");
    for (index, spec) in specs.iter().enumerate() {
        let hash = journal::spec_hash(spec);
        let served = journal::load_result(&dir, index, hash, spec).unwrap();
        let expected = reference.results[index].as_ref().unwrap();
        assert_eq!(
            served.images, expected.images,
            "point {index} diverged after drain/resume"
        );
    }

    // A second restart has nothing to do.
    let svc3 = Service::new(&root, ServicePolicy::default()).unwrap();
    assert!(svc3.resume_existing().unwrap().is_empty());
    assert_eq!(svc3.status(admitted.id).unwrap().state, "done");
}

/// Minimal HTTP/1.1 client: one request, read to EOF.
fn http(addr: std::net::SocketAddr, request: &str) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response head");
    let head = std::str::from_utf8(&raw[..head_end]).unwrap();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, raw[head_end + 4..].to_vec())
}

fn get(addr: std::net::SocketAddr, path: &str) -> (u16, Vec<u8>) {
    http(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
    )
}

#[test]
fn http_surface_end_to_end() {
    let root = tmp_root("http");
    let svc = Service::new(&root, ServicePolicy::default()).unwrap().with_slots(2);
    let mut server = Server::start(svc, "127.0.0.1:0").unwrap();
    let addr = server.addr();

    let (status, body) = get(addr, "/healthz");
    assert_eq!((status, body.as_slice()), (200, b"ok\n".as_slice()));
    assert_eq!(get(addr, "/readyz").0, 200);
    assert_eq!(get(addr, "/nope").0, 404);

    // Submit over HTTP.
    let req = CampaignRequest::single("alice", small_spec("http"));
    let payload = serde_json::to_string(&req).unwrap();
    let (status, body) = http(
        addr,
        &format!(
            "POST /campaigns HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{payload}",
            payload.len()
        ),
    );
    assert_eq!(status, 201, "{}", String::from_utf8_lossy(&body));
    let submitted: eth_core::serve::CampaignStatus =
        serde_json::from_str(std::str::from_utf8(&body).unwrap()).unwrap();

    wait_until("campaign over http", || {
        let (s, b) = get(addr, &format!("/campaigns/{}", submitted.id));
        s == 200 && !String::from_utf8_lossy(&b).contains("running")
    });

    // Journaled image arrives as a real PNG.
    let (status, png) = get(addr, &format!("/campaigns/{}/points/0/image", submitted.id));
    assert_eq!(status, 200);
    assert_eq!(&png[..8], &[0x89, b'P', b'N', b'G', 0x0D, 0x0A, 0x1A, 0x0A]);

    // SSE: a late subscriber still gets the status seed event.
    let (status, sse) = get(addr, &format!("/campaigns/{}/events", submitted.id));
    assert_eq!(status, 200);
    let sse = String::from_utf8_lossy(&sse);
    assert!(sse.contains("event: status"), "{sse}");
    assert_eq!(get(addr, "/campaigns/999/events").0, 404);

    // Metrics carry both the service and campaign namespaces.
    let (status, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    let metrics = String::from_utf8_lossy(&metrics);
    assert!(metrics.contains("eth_serve_admitted_campaigns_total 1"), "{metrics}");
    assert!(metrics.contains("eth_campaign_points_total"), "{metrics}");

    // Drain over HTTP flips readiness and sheds new work with 503.
    let (status, report) = http(
        addr,
        "POST /drain HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 200);
    assert!(String::from_utf8_lossy(&report).contains("\"campaigns_total\""));
    assert_eq!(get(addr, "/readyz").0, 503);
    let (status, _) = http(
        addr,
        &format!(
            "POST /campaigns HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{payload}",
            payload.len()
        ),
    );
    assert_eq!(status, 503);

    server.shutdown();
}

#[test]
fn stalled_clients_get_408_within_the_deadline() {
    let root = tmp_root("deadline");
    let policy = ServicePolicy {
        request_deadline_ms: 150,
        ..ServicePolicy::default()
    };
    let svc = Service::new(&root, policy).unwrap();
    let server = Server::start(svc, "127.0.0.1:0").unwrap();

    let t0 = Instant::now();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    // Send a partial request head and stall.
    stream.write_all(b"GET /healthz HTT").unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let text = String::from_utf8_lossy(&raw);
    assert!(text.starts_with("HTTP/1.1 408"), "{text}");
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "deadline not enforced: {:?}",
        t0.elapsed()
    );
}
