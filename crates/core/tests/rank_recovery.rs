//! Integration tests for the in-run rank fault-tolerance layer.
//!
//! These run against the public API only: a seeded `kill_rank_at_step`
//! fault must be survived *inside* the run — heartbeat detection, partition
//! adoption from the last step checkpoint, degraded compositing — without
//! any campaign-level retry, and without ever deadlocking, whichever rank
//! dies at whichever step.

use eth_core::{
    run_native, Algorithm, Application, Campaign, Coupling, ExperimentSpec, RecoveryPolicy,
    RunCaches,
};
use eth_transport::{FaultPlan, HeartbeatPolicy};
use std::time::{Duration, Instant};

/// Fast-detection policy so the tests spend milliseconds, not seconds,
/// waiting out the miss budget.
fn fast_recovery() -> RecoveryPolicy {
    RecoveryPolicy {
        heartbeat: HeartbeatPolicy {
            interval_ms: 10,
            miss_budget: 3,
        },
        max_rank_losses: 1,
        adopt: true,
    }
}

fn spec(name: &str, coupling: Coupling, ranks: usize, steps: usize) -> ExperimentSpec {
    ExperimentSpec::builder(name)
        .application(Application::Hacc { particles: 2_000 })
        .algorithm(Algorithm::GaussianSplat)
        .coupling(coupling)
        .ranks(ranks)
        .steps(steps)
        .image_size(32, 32)
        .build()
        .unwrap()
}

fn kill_spec(
    name: &str,
    coupling: Coupling,
    ranks: usize,
    steps: usize,
    victim: usize,
    step: usize,
) -> ExperimentSpec {
    let mut s = spec(name, coupling, ranks, steps);
    s.recovery = Some(fast_recovery());
    s.fault_plan = Some(FaultPlan::seeded(0xDEAD).with_kill_rank_at_step(victim, step));
    s
}

/// The ISSUE's acceptance run: an internode campaign point loses one
/// simulation rank mid-run to a seeded kill and must complete on its
/// first attempt — no campaign retry — with exactly one recorded loss and
/// one adoption, and with every pre-kill image byte-identical to the run
/// where nobody died.
#[test]
fn internode_seeded_kill_completes_without_campaign_retry() {
    let (ranks, steps, victim, kill_at) = (2usize, 4usize, 1usize, 2usize);
    let reference = run_native(&spec("in-ref", Coupling::Internode, ranks, steps)).unwrap();

    let killed = kill_spec("in-kill", Coupling::Internode, ranks, steps, victim, kill_at);
    let caches = RunCaches::new();
    let outcome = Campaign::new().run_with(std::slice::from_ref(&killed), &caches);

    assert_eq!(outcome.attempts, vec![1], "recovery must happen in-run");
    assert!(outcome.quarantined.is_empty());
    let native = outcome.results[0]
        .as_ref()
        .expect("the killed point must still complete");
    assert_eq!(native.degradation.rank_losses, 1, "{:?}", native.degradation);
    assert_eq!(native.degradation.adopted_partitions, 1);
    assert_eq!(outcome.degraded(), vec![0]);

    // every image slot is present despite the death...
    assert_eq!(native.images.len(), reference.images.len());
    // ...and steps completed before the kill cannot have been touched
    for i in 0..kill_at * killed.images_per_step {
        assert_eq!(
            reference.images[i], native.images[i],
            "pre-kill image {i} diverged from the no-fault run"
        );
    }

    // the detection-to-adoption latency is measured and plausible
    assert_eq!(native.recovery_latency_s.len(), 1);
    assert!(
        native.recovery_latency_s[0] > 0.0 && native.recovery_latency_s[0] < 30.0,
        "implausible recovery latency {:?}",
        native.recovery_latency_s
    );
    // and it surfaces in the campaign-wide telemetry as a histogram
    let view = outcome.telemetry.deterministic_view();
    assert!(
        view.contains(&("recovery_rank_losses_total".to_string(), 1)),
        "{view:?}"
    );
    assert!(
        view.contains(&("recovery_latency_s/count".to_string(), 1)),
        "{view:?}"
    );
}

/// Liveness: killing *any* single rank at *any* step must never deadlock
/// the run. Every combination completes — degraded, maybe, but inside a
/// wall-clock bound that a hung collective would blow immediately.
#[test]
fn any_single_rank_kill_at_any_step_never_deadlocks() {
    let (ranks, steps) = (2usize, 2usize);
    let budget = Duration::from_secs(120);
    let t0 = Instant::now();
    for coupling in [Coupling::Intercore, Coupling::Internode] {
        for victim in 0..ranks {
            for step in 0..steps {
                let name = format!("nd-{coupling:?}-{victim}-{step}").to_lowercase();
                let out = run_native(&kill_spec(&name, coupling, ranks, steps, victim, step))
                    .unwrap_or_else(|e| panic!("{name} failed: {e}"));
                assert_eq!(out.degradation.rank_losses, 1, "{name}: {:?}", out.degradation);
                assert_eq!(out.degradation.adopted_partitions, 1, "{name}");
                assert_eq!(out.images.len(), steps * out.spec.images_per_step, "{name}");
                assert!(
                    t0.elapsed() < budget,
                    "recovery runs are taking deadlock-shaped time ({name} at {:?})",
                    t0.elapsed()
                );
            }
        }
    }
}
