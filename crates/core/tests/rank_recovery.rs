//! Integration tests for the in-run rank fault-tolerance layer.
//!
//! These run against the public API only: a seeded `kill_rank_at_step`
//! fault must be survived *inside* the run — heartbeat detection, partition
//! adoption from the last step checkpoint, degraded compositing — without
//! any campaign-level retry, and without ever deadlocking, whichever rank
//! dies at whichever step.

use eth_core::{
    run_native, Algorithm, Application, Campaign, Coupling, DegradedReason, ExperimentSpec,
    MigrationPattern, MigrationPlan, RecoveryPolicy, RunCaches,
};
use eth_transport::{FaultPlan, HeartbeatPolicy};
use std::time::{Duration, Instant};

/// Fast-detection policy so the tests spend milliseconds, not seconds,
/// waiting out the miss budget.
fn fast_recovery() -> RecoveryPolicy {
    RecoveryPolicy {
        heartbeat: HeartbeatPolicy {
            interval_ms: 10,
            miss_budget: 3,
        },
        max_rank_losses: 1,
        adopt: true,
    }
}

fn spec(name: &str, coupling: Coupling, ranks: usize, steps: usize) -> ExperimentSpec {
    ExperimentSpec::builder(name)
        .application(Application::Hacc { particles: 2_000 })
        .algorithm(Algorithm::GaussianSplat)
        .coupling(coupling)
        .ranks(ranks)
        .steps(steps)
        .image_size(32, 32)
        .build()
        .unwrap()
}

fn kill_spec(
    name: &str,
    coupling: Coupling,
    ranks: usize,
    steps: usize,
    victim: usize,
    step: usize,
) -> ExperimentSpec {
    let mut s = spec(name, coupling, ranks, steps);
    s.recovery = Some(fast_recovery());
    s.fault_plan = Some(FaultPlan::seeded(0xDEAD).with_kill_rank_at_step(victim, step));
    s
}

/// The ISSUE's acceptance run: an internode campaign point loses one
/// simulation rank mid-run to a seeded kill and must complete on its
/// first attempt — no campaign retry — with exactly one recorded loss and
/// one adoption, and with every pre-kill image byte-identical to the run
/// where nobody died.
#[test]
fn internode_seeded_kill_completes_without_campaign_retry() {
    let (ranks, steps, victim, kill_at) = (2usize, 4usize, 1usize, 2usize);
    let reference = run_native(&spec("in-ref", Coupling::Internode, ranks, steps)).unwrap();

    let killed = kill_spec("in-kill", Coupling::Internode, ranks, steps, victim, kill_at);
    let caches = RunCaches::new();
    let outcome = Campaign::new().run_with(std::slice::from_ref(&killed), &caches);

    assert_eq!(outcome.attempts, vec![1], "recovery must happen in-run");
    assert!(outcome.quarantined.is_empty());
    let native = outcome.results[0]
        .as_ref()
        .expect("the killed point must still complete");
    assert_eq!(native.degradation.rank_losses, 1, "{:?}", native.degradation);
    assert_eq!(native.degradation.adopted_partitions, 1);
    assert_eq!(outcome.degraded(), vec![0]);

    // every image slot is present despite the death...
    assert_eq!(native.images.len(), reference.images.len());
    // ...and steps completed before the kill cannot have been touched
    for i in 0..kill_at * killed.images_per_step {
        assert_eq!(
            reference.images[i], native.images[i],
            "pre-kill image {i} diverged from the no-fault run"
        );
    }

    // the detection-to-adoption latency is measured and plausible
    assert_eq!(native.recovery_latency_s.len(), 1);
    assert!(
        native.recovery_latency_s[0] > 0.0 && native.recovery_latency_s[0] < 30.0,
        "implausible recovery latency {:?}",
        native.recovery_latency_s
    );
    // and it surfaces in the campaign-wide telemetry as a histogram
    let view = outcome.telemetry.deterministic_view();
    assert!(
        view.contains(&("recovery_rank_losses_total".to_string(), 1)),
        "{view:?}"
    );
    assert!(
        view.contains(&("recovery_latency_s/count".to_string(), 1)),
        "{view:?}"
    );
}

/// Liveness: killing *any* single rank at *any* step must never deadlock
/// the run. Every combination completes — degraded, maybe, but inside a
/// wall-clock bound that a hung collective would blow immediately.
#[test]
fn any_single_rank_kill_at_any_step_never_deadlocks() {
    let (ranks, steps) = (2usize, 2usize);
    let budget = Duration::from_secs(120);
    let t0 = Instant::now();
    for coupling in [Coupling::Intercore, Coupling::Internode] {
        for victim in 0..ranks {
            for step in 0..steps {
                let name = format!("nd-{coupling:?}-{victim}-{step}").to_lowercase();
                let out = run_native(&kill_spec(&name, coupling, ranks, steps, victim, step))
                    .unwrap_or_else(|e| panic!("{name} failed: {e}"));
                assert_eq!(out.degradation.rank_losses, 1, "{name}: {:?}", out.degradation);
                assert_eq!(out.degradation.adopted_partitions, 1, "{name}");
                assert_eq!(out.images.len(), steps * out.spec.images_per_step, "{name}");
                assert!(
                    t0.elapsed() < budget,
                    "recovery runs are taking deadlock-shaped time ({name} at {:?})",
                    t0.elapsed()
                );
            }
        }
    }
}

/// Interleaving a planned migration with a seeded kill: whichever handoff
/// the death races, the run completes in-run (no campaign retry), the
/// outcome is deterministic across repeats, and the campaign tags the
/// point with *both* degradation reasons — the involuntary rank loss and
/// the planned (here: lost-to-the-death) migration.
#[test]
fn migration_interleaved_with_kill_is_deterministic_and_tagged() {
    let (ranks, steps) = (3usize, 4usize);

    // A wider miss budget than fast_recovery(): a beater thread starved
    // by a loaded parallel test run must not be falsely declared dead,
    // or a spurious death would nondeterministically abort the handoff.
    let sturdy = RecoveryPolicy {
        heartbeat: HeartbeatPolicy {
            interval_ms: 10,
            miss_budget: 30,
        },
        max_rank_losses: 1,
        adopt: true,
    };

    // Point 0: pure elasticity — one Sudden handoff, nobody dies.
    let mut elastic = spec("mx-elastic", Coupling::Intercore, ranks, steps);
    elastic.recovery = Some(sturdy);
    elastic.migration = Some(MigrationPlan::new(MigrationPattern::Sudden {
        from: 1,
        to: 2,
        at_step: 2,
    }));

    // Point 1: the same schedule racing a kill of the migrating
    // partition's simulation rank one step before the handoff — death
    // wins, the handoff degrades to "no migration happened".
    let mut raced = kill_spec("mx-raced", Coupling::Intercore, ranks, steps, 1, 1);
    raced.recovery = Some(sturdy);
    raced.migration = elastic.migration;

    let run = |tag: &str| {
        let mut specs = [elastic.clone(), raced.clone()];
        for s in specs.iter_mut() {
            s.name = format!("{}-{tag}", s.name);
        }
        Campaign::new().run_with(&specs, &RunCaches::new())
    };

    let a = run("a");
    assert_eq!(a.attempts, vec![1, 1], "both points must complete in-run");
    assert!(a.quarantined.is_empty());

    let elastic_out = a.results[0].as_ref().expect("elastic point");
    assert_eq!(elastic_out.degradation.migrations, 1, "{:?}", elastic_out.degradation);
    assert_eq!(elastic_out.degradation.rank_losses, 0);

    let raced_out = a.results[1].as_ref().expect("raced point");
    assert_eq!(raced_out.degradation.migrations, 0, "{:?}", raced_out.degradation);
    assert_eq!(raced_out.degradation.migration_failures, 1);
    assert_eq!(raced_out.degradation.rank_losses, 1);
    assert_eq!(raced_out.images.len(), steps * raced.images_per_step);

    // the campaign separates voluntary from involuntary degradation
    assert_eq!(
        a.degraded_reasons(),
        vec![
            (0, vec![DegradedReason::PlannedMigration]),
            (1, vec![DegradedReason::RankLoss, DegradedReason::PlannedMigration]),
        ]
    );
    assert_eq!(a.degraded(), vec![0, 1]);

    // seeded determinism: a second campaign resolves the race identically
    let b = run("b");
    let (ra, rb) = (
        a.results[1].as_ref().unwrap(),
        b.results[1].as_ref().unwrap(),
    );
    assert_eq!(ra.degradation, rb.degradation, "race resolution must be seeded-deterministic");
    assert_eq!(ra.images, rb.images);
}
