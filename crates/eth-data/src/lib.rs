//! # eth-data — data model substrate for the Exploration Test Harness
//!
//! This crate plays the role VTK's data model plays in the original ETH
//! implementation: a small, self-contained set of scientific data containers
//! that every other layer of the harness (simulation proxies, renderers,
//! transport, the harness itself) operates on.
//!
//! The containers are deliberately close to the two data classes the paper
//! evaluates:
//!
//! * [`points::PointCloud`] — particle data (the HACC cosmology case),
//! * [`grid::UniformGrid`] — structured volumetric data (the xRAGE case),
//!
//! both carrying named attribute arrays ([`field::AttributeSet`]).
//!
//! On top of the containers the crate provides the pieces ETH needs to stand
//! up an in-situ experiment without a real simulation code:
//!
//! * [`partition`] — spatial decomposition of a dataset across ranks,
//! * [`sampling`] — the spatial down-sampling operator studied in the paper,
//! * [`io`] — a legacy-VTK-ASCII subset plus a fast binary format, so a
//!   "preliminary run" can write per-rank, per-timestep files to disk and the
//!   simulation proxy can read them back (Figures 3 and 7 of the paper),
//! * [`stats`] — summary statistics used by tests and workload validation.

pub mod bounds;
pub mod compress;
pub mod crc;
pub mod dataset;
pub mod error;
pub mod field;
pub mod grid;
pub mod io;
pub mod partition;
pub mod points;
pub mod sampling;
pub mod staging;
pub mod stats;
pub mod unstructured;
pub mod vec3;

pub use bounds::Aabb;
pub use bytes::Bytes;
pub use dataset::DataObject;
pub use error::DataError;
pub use field::{Attribute, AttributeSet};
pub use grid::UniformGrid;
pub use points::PointCloud;
pub use unstructured::UnstructuredGrid;
pub use vec3::Vec3;
