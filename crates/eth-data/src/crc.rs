//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the checksum
//! behind every integrity trailer in the harness: `.ebd` data objects
//! ([`crate::io::binary`]), recorded time-series blocks
//! (`eth-sim::timeseries`), and campaign journal records
//! (`eth-core::journal`).
//!
//! Implemented in-tree (table-driven, table built at compile time) so the
//! workspace stays dependency-free. This is an error-*detection* code, not
//! a cryptographic hash: it catches bit flips, truncation, and torn
//! writes, which is exactly the at-rest / on-the-wire corruption model the
//! fault plans inject.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Incremental CRC-32 state, for checksumming data produced in pieces.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    pub fn new() -> Crc32 {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feed more bytes.
    pub fn update(&mut self, data: &[u8]) {
        for &b in data {
            let idx = ((self.state ^ b as u32) & 0xFF) as usize;
            self.state = (self.state >> 8) ^ TABLE[idx];
        }
    }

    /// Final checksum value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// CRC-32 of one contiguous buffer.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        for split in [0, 1, 7, 100, 4095, 4096] {
            let mut c = Crc32::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finish(), crc32(&data), "split at {split}");
        }
    }

    #[test]
    fn detects_any_single_bit_flip() {
        let data = b"campaign journal record".to_vec();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut bad = data.clone();
                bad[byte] ^= 1 << bit;
                assert_ne!(crc32(&bad), clean, "flip at byte {byte} bit {bit}");
            }
        }
    }
}
