//! Named attribute arrays attached to datasets.
//!
//! A dataset (point cloud or grid) carries an [`AttributeSet`]: an ordered
//! map from attribute name to a typed array with one entry per point / cell.
//! This mirrors VTK's point-data arrays, which is all the original ETH needs
//! from the VTK data model.

use crate::error::{DataError, Result};
use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// One typed attribute array.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Attribute {
    /// Per-element scalar (e.g. temperature, density).
    Scalar(Vec<f32>),
    /// Per-element vector (e.g. velocity).
    Vector(Vec<Vec3>),
    /// Per-element 64-bit id (e.g. HACC particle ids).
    Id(Vec<u64>),
}

impl Attribute {
    /// Number of elements in the array.
    pub fn len(&self) -> usize {
        match self {
            Attribute::Scalar(v) => v.len(),
            Attribute::Vector(v) => v.len(),
            Attribute::Id(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Short type tag used by the IO formats.
    pub fn type_tag(&self) -> &'static str {
        match self {
            Attribute::Scalar(_) => "scalar",
            Attribute::Vector(_) => "vector",
            Attribute::Id(_) => "id",
        }
    }

    /// Keep only the elements at `indices` (in order). Indices must be in
    /// range; this is enforced by the samplers that produce them.
    pub fn gather(&self, indices: &[usize]) -> Attribute {
        match self {
            Attribute::Scalar(v) => Attribute::Scalar(indices.iter().map(|&i| v[i]).collect()),
            Attribute::Vector(v) => Attribute::Vector(indices.iter().map(|&i| v[i]).collect()),
            Attribute::Id(v) => Attribute::Id(indices.iter().map(|&i| v[i]).collect()),
        }
    }

    /// Append all elements of `other` (must be the same variant).
    pub fn append(&mut self, other: &Attribute) -> Result<()> {
        match (self, other) {
            (Attribute::Scalar(a), Attribute::Scalar(b)) => a.extend_from_slice(b),
            (Attribute::Vector(a), Attribute::Vector(b)) => a.extend_from_slice(b),
            (Attribute::Id(a), Attribute::Id(b)) => a.extend_from_slice(b),
            (me, other) => {
                return Err(DataError::InvalidArgument(format!(
                    "cannot append {} attribute to {} attribute",
                    other.type_tag(),
                    me.type_tag()
                )))
            }
        }
        Ok(())
    }

    /// View as scalars, if that is the variant.
    pub fn as_scalar(&self) -> Option<&[f32]> {
        match self {
            Attribute::Scalar(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_vector(&self) -> Option<&[Vec3]> {
        match self {
            Attribute::Vector(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_id(&self) -> Option<&[u64]> {
        match self {
            Attribute::Id(v) => Some(v),
            _ => None,
        }
    }
}

/// Ordered collection of named attributes, all with the same length.
///
/// Insertion order is preserved so files written from an `AttributeSet`
/// are deterministic.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AttributeSet {
    entries: Vec<(String, Attribute)>,
}

impl AttributeSet {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of attributes (not elements).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert or replace an attribute, validating its length against
    /// `expected_len` (the owning container's element count).
    pub fn insert(&mut self, name: &str, attr: Attribute, expected_len: usize) -> Result<()> {
        if attr.len() != expected_len {
            return Err(DataError::ShapeMismatch {
                expected: expected_len,
                got: attr.len(),
                name: name.to_string(),
            });
        }
        if let Some(slot) = self.entries.iter_mut().find(|(n, _)| n == name) {
            slot.1 = attr;
        } else {
            self.entries.push((name.to_string(), attr));
        }
        Ok(())
    }

    pub fn get(&self, name: &str) -> Option<&Attribute> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, a)| a)
    }

    /// Like [`AttributeSet::get`] but returns a typed error for the caller
    /// to propagate.
    pub fn require(&self, name: &str) -> Result<&Attribute> {
        self.get(name)
            .ok_or_else(|| DataError::MissingAttribute(name.to_string()))
    }

    /// Scalar view of the named attribute, erroring if missing or mistyped.
    pub fn require_scalar(&self, name: &str) -> Result<&[f32]> {
        self.require(name)?.as_scalar().ok_or_else(|| {
            DataError::InvalidArgument(format!("attribute '{name}' is not a scalar"))
        })
    }

    pub fn remove(&mut self, name: &str) -> Option<Attribute> {
        let idx = self.entries.iter().position(|(n, _)| n == name)?;
        Some(self.entries.remove(idx).1)
    }

    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(n, _)| n.as_str())
    }

    pub fn iter(&self) -> impl Iterator<Item = (&str, &Attribute)> {
        self.entries.iter().map(|(n, a)| (n.as_str(), a))
    }

    /// Produce a new set keeping only elements at `indices` in every array.
    pub fn gather(&self, indices: &[usize]) -> AttributeSet {
        AttributeSet {
            entries: self
                .entries
                .iter()
                .map(|(n, a)| (n.clone(), a.gather(indices)))
                .collect(),
        }
    }

    /// Append per-element data from another set. Attribute names must match
    /// exactly (same sets, same types); used when merging rank-local blocks.
    pub fn append(&mut self, other: &AttributeSet) -> Result<()> {
        if self.entries.len() != other.entries.len() {
            return Err(DataError::InvalidArgument(format!(
                "attribute sets differ: {} vs {} attributes",
                self.entries.len(),
                other.entries.len()
            )));
        }
        for (name, attr) in &mut self.entries {
            let theirs = other.require(name)?;
            attr.append(theirs)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_set() -> AttributeSet {
        let mut s = AttributeSet::new();
        s.insert("t", Attribute::Scalar(vec![1.0, 2.0, 3.0]), 3).unwrap();
        s.insert(
            "v",
            Attribute::Vector(vec![Vec3::ZERO, Vec3::ONE, Vec3::new(1.0, 0.0, 0.0)]),
            3,
        )
        .unwrap();
        s.insert("id", Attribute::Id(vec![10, 20, 30]), 3).unwrap();
        s
    }

    #[test]
    fn insert_validates_length() {
        let mut s = AttributeSet::new();
        let err = s.insert("t", Attribute::Scalar(vec![1.0]), 3).unwrap_err();
        assert!(matches!(err, DataError::ShapeMismatch { .. }));
    }

    #[test]
    fn insert_replaces_existing() {
        let mut s = sample_set();
        s.insert("t", Attribute::Scalar(vec![9.0, 9.0, 9.0]), 3).unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.require_scalar("t").unwrap(), &[9.0, 9.0, 9.0]);
    }

    #[test]
    fn gather_selects_in_order() {
        let s = sample_set();
        let g = s.gather(&[2, 0]);
        assert_eq!(g.require_scalar("t").unwrap(), &[3.0, 1.0]);
        assert_eq!(g.get("id").unwrap().as_id().unwrap(), &[30, 10]);
    }

    #[test]
    fn append_merges_matching_sets() {
        let mut a = sample_set();
        let b = sample_set();
        a.append(&b).unwrap();
        assert_eq!(a.get("t").unwrap().len(), 6);
        assert_eq!(a.get("id").unwrap().as_id().unwrap(), &[10, 20, 30, 10, 20, 30]);
    }

    #[test]
    fn append_rejects_type_mismatch() {
        let mut a = Attribute::Scalar(vec![1.0]);
        let b = Attribute::Id(vec![1]);
        assert!(a.append(&b).is_err());
    }

    #[test]
    fn require_missing_errors() {
        let s = sample_set();
        assert!(matches!(s.require("nope"), Err(DataError::MissingAttribute(_))));
        assert!(s.require_scalar("id").is_err());
    }

    #[test]
    fn names_preserve_insertion_order() {
        let s = sample_set();
        let names: Vec<_> = s.names().collect();
        assert_eq!(names, vec!["t", "v", "id"]);
    }

    #[test]
    fn remove_returns_attribute() {
        let mut s = sample_set();
        let a = s.remove("v").unwrap();
        assert_eq!(a.len(), 3);
        assert!(s.get("v").is_none());
        assert!(s.remove("v").is_none());
    }
}
