//! Unstructured tetrahedral grids — the Section VII extension.
//!
//! "Given that our experimental results showed that the optimal coupling
//! strategy is highly specific to the application under study … one would
//! have to extend ETH for other domains such as unstructured grid."
//! (Section VII). This module is that extension, and it also completes the
//! paper's own data path: xRAGE's AMR output "is typically converted to an
//! unstructured grid data which is then downsampled to a structured grid"
//! (Section IV-A) — the unstructured stage is now a first-class citizen.
//!
//! The container stores vertices with per-vertex attributes and
//! tetrahedral cells. It supports point location + barycentric
//! interpolation (through a uniform-bucket acceleration index) and
//! resampling onto a [`UniformGrid`], which is the hand-off the paper's
//! visualization stage consumes.

use crate::bounds::Aabb;
use crate::error::{DataError, Result};
use crate::field::{Attribute, AttributeSet};
use crate::grid::UniformGrid;
use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// A tetrahedral mesh with per-vertex attributes.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct UnstructuredGrid {
    points: Vec<Vec3>,
    /// Cells as vertex-index quadruples.
    tets: Vec<[u32; 4]>,
    attributes: AttributeSet,
}

impl UnstructuredGrid {
    pub fn new(points: Vec<Vec3>, tets: Vec<[u32; 4]>) -> Result<UnstructuredGrid> {
        let grid = UnstructuredGrid {
            points,
            tets,
            attributes: AttributeSet::new(),
        };
        grid.validate()?;
        Ok(grid)
    }

    fn validate(&self) -> Result<()> {
        let n = self.points.len() as u32;
        for (i, t) in self.tets.iter().enumerate() {
            for &v in t {
                if v >= n {
                    return Err(DataError::InvalidArgument(format!(
                        "tet {i} references vertex {v} but the mesh has {n}"
                    )));
                }
            }
        }
        Ok(())
    }

    pub fn num_points(&self) -> usize {
        self.points.len()
    }

    pub fn num_cells(&self) -> usize {
        self.tets.len()
    }

    pub fn points(&self) -> &[Vec3] {
        &self.points
    }

    pub fn tets(&self) -> &[[u32; 4]] {
        &self.tets
    }

    pub fn attributes(&self) -> &AttributeSet {
        &self.attributes
    }

    pub fn set_attribute(&mut self, name: &str, attr: Attribute) -> Result<()> {
        self.attributes.insert(name, attr, self.points.len())
    }

    pub fn scalar(&self, name: &str) -> Result<&[f32]> {
        self.attributes.require_scalar(name)
    }

    pub fn bounds(&self) -> Aabb {
        Aabb::from_points(&self.points)
    }

    /// Signed volume of one tetrahedron (positive for right-handed order).
    pub fn cell_volume(&self, cell: usize) -> f32 {
        let t = self.tets[cell];
        let a = self.points[t[0] as usize];
        let b = self.points[t[1] as usize];
        let c = self.points[t[2] as usize];
        let d = self.points[t[3] as usize];
        (b - a).cross(c - a).dot(d - a) / 6.0
    }

    /// Sum of |cell volume| over all cells.
    pub fn total_volume(&self) -> f32 {
        (0..self.tets.len()).map(|i| self.cell_volume(i).abs()).sum()
    }

    /// Approximate in-memory footprint in bytes.
    pub fn payload_bytes(&self) -> usize {
        let mut total = self.points.len() * 12 + self.tets.len() * 16;
        for (_, attr) in self.attributes.iter() {
            total += match attr {
                Attribute::Scalar(v) => v.len() * 4,
                Attribute::Vector(v) => v.len() * 12,
                Attribute::Id(v) => v.len() * 8,
            };
        }
        total
    }

    /// Barycentric coordinates of `p` in `cell`, or `None` for degenerate
    /// cells.
    pub fn barycentric(&self, cell: usize, p: Vec3) -> Option<[f32; 4]> {
        let t = self.tets[cell];
        let a = self.points[t[0] as usize];
        let b = self.points[t[1] as usize];
        let c = self.points[t[2] as usize];
        let d = self.points[t[3] as usize];
        let vol = (b - a).cross(c - a).dot(d - a);
        if vol.abs() < 1e-20 {
            return None;
        }
        let w1 = (p - a).cross(c - a).dot(d - a) / vol;
        let w2 = (b - a).cross(p - a).dot(d - a) / vol;
        let w3 = (b - a).cross(c - a).dot(p - a) / vol;
        let w0 = 1.0 - w1 - w2 - w3;
        Some([w0, w1, w2, w3])
    }

    /// Does `cell` contain `p` (with tolerance)?
    pub fn cell_contains(&self, cell: usize, p: Vec3) -> bool {
        match self.barycentric(cell, p) {
            Some(w) => w.iter().all(|&x| x >= -1e-4),
            None => false,
        }
    }

    /// Build a point-location index (uniform buckets over the bounds).
    pub fn build_locator(&self) -> CellLocator {
        CellLocator::build(self)
    }

    /// Resample a scalar field onto a uniform grid over this mesh's bounds
    /// — the paper's unstructured → structured downsampling stage.
    /// Vertices outside every cell (concave gaps) get `background`.
    pub fn resample(
        &self,
        field: &str,
        dims: [usize; 3],
        background: f32,
    ) -> Result<UniformGrid> {
        let values = self.scalar(field)?;
        let locator = self.build_locator();
        let mut out = UniformGrid::over_bounds(dims, self.bounds())?;
        let mut samples = Vec::with_capacity(out.num_vertices());
        for idx in 0..out.num_vertices() {
            let (i, j, k) = out.vertex_coords(idx);
            let p = out.vertex_position(i, j, k);
            let v = locator
                .interpolate(self, values, p)
                .unwrap_or(background);
            samples.push(v);
        }
        out.set_attribute(field, Attribute::Scalar(samples))?;
        Ok(out)
    }
}

/// Uniform-bucket point-location index over a tet mesh.
#[derive(Debug, Clone)]
pub struct CellLocator {
    bounds: Aabb,
    dims: [usize; 3],
    /// Cell indices per bucket.
    buckets: Vec<Vec<u32>>,
}

impl CellLocator {
    fn build(mesh: &UnstructuredGrid) -> CellLocator {
        let bounds = mesh.bounds().padded(1e-6);
        // ~2 cells per bucket on average
        let n = (mesh.num_cells() as f64 / 2.0).max(1.0);
        let side = n.powf(1.0 / 3.0).ceil() as usize;
        let dims = [side.max(1), side.max(1), side.max(1)];
        let mut buckets = vec![Vec::new(); dims[0] * dims[1] * dims[2]];
        let ext = bounds.extent();
        let clampi =
            |v: f32, d: usize| -> usize { (v as isize).clamp(0, d as isize - 1) as usize };
        for (ci, t) in mesh.tets.iter().enumerate() {
            let mut cb = Aabb::empty();
            for &v in t {
                cb.expand_point(mesh.points[v as usize]);
            }
            let lo = [
                clampi((cb.min.x - bounds.min.x) / ext.x.max(1e-20) * dims[0] as f32, dims[0]),
                clampi((cb.min.y - bounds.min.y) / ext.y.max(1e-20) * dims[1] as f32, dims[1]),
                clampi((cb.min.z - bounds.min.z) / ext.z.max(1e-20) * dims[2] as f32, dims[2]),
            ];
            let hi = [
                clampi((cb.max.x - bounds.min.x) / ext.x.max(1e-20) * dims[0] as f32, dims[0]),
                clampi((cb.max.y - bounds.min.y) / ext.y.max(1e-20) * dims[1] as f32, dims[1]),
                clampi((cb.max.z - bounds.min.z) / ext.z.max(1e-20) * dims[2] as f32, dims[2]),
            ];
            for k in lo[2]..=hi[2] {
                for j in lo[1]..=hi[1] {
                    for i in lo[0]..=hi[0] {
                        buckets[(k * dims[1] + j) * dims[0] + i].push(ci as u32);
                    }
                }
            }
        }
        CellLocator {
            bounds,
            dims,
            buckets,
        }
    }

    /// The cell containing `p`, if any.
    pub fn locate(&self, mesh: &UnstructuredGrid, p: Vec3) -> Option<usize> {
        if !self.bounds.contains(p) {
            return None;
        }
        let ext = self.bounds.extent();
        let f = |v: f32, lo: f32, e: f32, d: usize| -> usize {
            if e <= 0.0 {
                0
            } else {
                (((v - lo) / e * d as f32) as usize).min(d - 1)
            }
        };
        let i = f(p.x, self.bounds.min.x, ext.x, self.dims[0]);
        let j = f(p.y, self.bounds.min.y, ext.y, self.dims[1]);
        let k = f(p.z, self.bounds.min.z, ext.z, self.dims[2]);
        let bucket = &self.buckets[(k * self.dims[1] + j) * self.dims[0] + i];
        bucket
            .iter()
            .map(|&c| c as usize)
            .find(|&c| mesh.cell_contains(c, p))
    }

    /// Barycentric interpolation of a per-vertex field at `p`.
    pub fn interpolate(&self, mesh: &UnstructuredGrid, values: &[f32], p: Vec3) -> Option<f32> {
        let cell = self.locate(mesh, p)?;
        let w = mesh.barycentric(cell, p)?;
        let t = mesh.tets[cell];
        Some(
            w[0] * values[t[0] as usize]
                + w[1] * values[t[1] as usize]
                + w[2] * values[t[2] as usize]
                + w[3] * values[t[3] as usize],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A unit cube split into the 6 Freudenthal tets.
    fn cube_mesh() -> UnstructuredGrid {
        let points = vec![
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(1.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::new(1.0, 0.0, 1.0),
            Vec3::new(0.0, 1.0, 1.0),
            Vec3::new(1.0, 1.0, 1.0),
        ];
        let tets = vec![
            [0, 1, 3, 7],
            [0, 1, 5, 7],
            [0, 2, 3, 7],
            [0, 2, 6, 7],
            [0, 4, 5, 7],
            [0, 4, 6, 7],
        ];
        UnstructuredGrid::new(points, tets).unwrap()
    }

    #[test]
    fn construction_validates_indices() {
        let bad = UnstructuredGrid::new(vec![Vec3::ZERO], vec![[0, 0, 0, 9]]);
        assert!(bad.is_err());
    }

    #[test]
    fn cube_tets_fill_the_cube() {
        let m = cube_mesh();
        assert_eq!(m.num_cells(), 6);
        assert!((m.total_volume() - 1.0).abs() < 1e-5, "{}", m.total_volume());
        assert_eq!(m.bounds(), Aabb::unit());
    }

    #[test]
    fn barycentric_interpolation_is_exact_for_linear_fields() {
        let mut m = cube_mesh();
        // f = 2x + 3y - z
        let f: Vec<f32> = m
            .points()
            .iter()
            .map(|p| 2.0 * p.x + 3.0 * p.y - p.z)
            .collect();
        m.set_attribute("f", Attribute::Scalar(f.clone())).unwrap();
        let locator = m.build_locator();
        for &(x, y, z) in &[(0.5, 0.5, 0.5), (0.1, 0.8, 0.3), (0.9, 0.05, 0.7)] {
            let p = Vec3::new(x, y, z);
            let got = locator.interpolate(&m, &f, p).unwrap();
            let want = 2.0 * x + 3.0 * y - z;
            assert!((got - want).abs() < 1e-4, "at {p:?}: {got} vs {want}");
        }
    }

    #[test]
    fn locate_finds_containing_cell_everywhere_inside() {
        let m = cube_mesh();
        let locator = m.build_locator();
        let mut hits = 0;
        for i in 0..5 {
            for j in 0..5 {
                for k in 0..5 {
                    let p = Vec3::new(
                        0.1 + i as f32 * 0.2,
                        0.1 + j as f32 * 0.2,
                        0.1 + k as f32 * 0.2,
                    );
                    if let Some(c) = locator.locate(&m, p) {
                        assert!(m.cell_contains(c, p));
                        hits += 1;
                    }
                }
            }
        }
        assert_eq!(hits, 125, "every interior point must be located");
        assert!(locator.locate(&m, Vec3::splat(2.0)).is_none());
    }

    #[test]
    fn resample_reproduces_linear_field() {
        let mut m = cube_mesh();
        let f: Vec<f32> = m.points().iter().map(|p| p.x + 10.0 * p.z).collect();
        m.set_attribute("f", Attribute::Scalar(f)).unwrap();
        let grid = m.resample("f", [5, 5, 5], -1.0).unwrap();
        let vals = grid.scalar("f").unwrap();
        for (idx, &v) in vals.iter().enumerate() {
            let (i, j, k) = grid.vertex_coords(idx);
            let p = grid.vertex_position(i, j, k);
            let want = p.x + 10.0 * p.z;
            assert!((v - want).abs() < 1e-3, "at {p:?}: {v} vs {want}");
        }
    }

    #[test]
    fn attribute_length_enforced() {
        let mut m = cube_mesh();
        assert!(m.set_attribute("bad", Attribute::Scalar(vec![1.0])).is_err());
    }

    #[test]
    fn payload_accounts_cells_and_points() {
        let m = cube_mesh();
        assert_eq!(m.payload_bytes(), 8 * 12 + 6 * 16);
    }
}
