//! Dataset readers and writers.
//!
//! Two formats:
//! * [`binary`] — ETH's own length-prefixed little-endian binary format
//!   (`.ebd`, "ETH binary data"). This is the fast path used for the
//!   per-rank, per-timestep files of the preliminary run, and the wire
//!   format the transport layer ships across ranks.
//! * [`vtk_legacy`] — a reader/writer for the subset of the legacy VTK
//!   ASCII format covering `STRUCTURED_POINTS` and `POLYDATA` point sets,
//!   so users can move data between ETH and VTK-based tools
//!   ("the design requires that the data is exported as VTK data objects",
//!   Section III-B).

pub mod binary;
pub mod vtk_legacy;
