//! Legacy VTK ASCII format (subset).
//!
//! ETH's interoperability story is "users export their simulation data as
//! VTK data objects" (Section III-B). This module implements the slice of
//! the legacy ASCII format the harness needs:
//!
//! * `DATASET STRUCTURED_POINTS` with `POINT_DATA` / `SCALARS` / `VECTORS`
//!   — maps to [`UniformGrid`],
//! * `DATASET POLYDATA` with `POINTS` and `POINT_DATA` — maps to
//!   [`PointCloud`].
//!
//! The writer emits files readable by ParaView/VisIt; the reader accepts
//! files they write (within the subset above, `float` arrays, ASCII only).

use crate::dataset::DataObject;
use crate::error::{DataError, Result};
use crate::field::Attribute;
use crate::grid::UniformGrid;
use crate::points::PointCloud;
use crate::vec3::Vec3;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// Serialize a dataset to legacy VTK ASCII text.
pub fn to_string(obj: &DataObject) -> String {
    let mut s = String::new();
    s.push_str("# vtk DataFile Version 3.0\n");
    s.push_str("ETH exploration test harness dataset\n");
    s.push_str("ASCII\n");
    match obj {
        DataObject::Grid(g) => write_grid(&mut s, g),
        DataObject::Points(p) => write_points(&mut s, p),
    }
    s
}

fn write_grid(s: &mut String, g: &UniformGrid) {
    let d = g.dims();
    let o = g.origin();
    let sp = g.spacing();
    s.push_str("DATASET STRUCTURED_POINTS\n");
    let _ = writeln!(s, "DIMENSIONS {} {} {}", d[0], d[1], d[2]);
    let _ = writeln!(s, "ORIGIN {} {} {}", o.x, o.y, o.z);
    let _ = writeln!(s, "SPACING {} {} {}", sp.x, sp.y, sp.z);
    let _ = writeln!(s, "POINT_DATA {}", g.num_vertices());
    write_point_data(s, g.attributes());
}

fn write_points(s: &mut String, p: &PointCloud) {
    s.push_str("DATASET POLYDATA\n");
    let _ = writeln!(s, "POINTS {} float", p.len());
    for pos in p.positions() {
        let _ = writeln!(s, "{} {} {}", pos.x, pos.y, pos.z);
    }
    // VERTICES section so viewers render the points. Legacy cell format:
    // count, total-size, then per-cell "1 <index>".
    let _ = writeln!(s, "VERTICES {} {}", p.len(), p.len() * 2);
    for i in 0..p.len() {
        let _ = writeln!(s, "1 {i}");
    }
    let _ = writeln!(s, "POINT_DATA {}", p.len());
    write_point_data(s, p.attributes());
}

fn write_point_data(s: &mut String, attrs: &crate::field::AttributeSet) {
    for (name, attr) in attrs.iter() {
        match attr {
            Attribute::Scalar(v) => {
                let _ = writeln!(s, "SCALARS {name} float 1");
                s.push_str("LOOKUP_TABLE default\n");
                for x in v {
                    let _ = writeln!(s, "{x}");
                }
            }
            Attribute::Vector(v) => {
                let _ = writeln!(s, "VECTORS {name} float");
                for x in v {
                    let _ = writeln!(s, "{} {} {}", x.x, x.y, x.z);
                }
            }
            // Legacy VTK has no 64-bit id array in this subset; store ids
            // as a scalar field of floats (lossless below 2^24, documented).
            Attribute::Id(v) => {
                let _ = writeln!(s, "SCALARS {name} float 1");
                s.push_str("LOOKUP_TABLE default\n");
                for x in v {
                    let _ = writeln!(s, "{}", *x as f32);
                }
            }
        }
    }
}

/// Tokenizer that walks whitespace-separated words, tracking position for
/// error messages.
struct Tokens<'a> {
    words: std::str::SplitWhitespace<'a>,
    consumed: usize,
}

impl<'a> Tokens<'a> {
    fn new(text: &'a str) -> Self {
        Tokens {
            words: text.split_whitespace(),
            consumed: 0,
        }
    }

    fn next(&mut self) -> Result<&'a str> {
        self.consumed += 1;
        self.words
            .next()
            .ok_or_else(|| DataError::Format(format!("unexpected EOF at token {}", self.consumed)))
    }

    fn next_usize(&mut self) -> Result<usize> {
        let w = self.next()?;
        w.parse()
            .map_err(|_| DataError::Format(format!("expected integer, got '{w}'")))
    }

    fn next_f32(&mut self) -> Result<f32> {
        let w = self.next()?;
        w.parse()
            .map_err(|_| DataError::Format(format!("expected float, got '{w}'")))
    }

    fn expect(&mut self, want: &str) -> Result<()> {
        let got = self.next()?;
        if got.eq_ignore_ascii_case(want) {
            Ok(())
        } else {
            Err(DataError::Format(format!("expected '{want}', got '{got}'")))
        }
    }

    fn peek_done(&mut self) -> bool {
        self.words.clone().next().is_none()
    }
}

/// Parse legacy VTK ASCII text (the subset written by [`to_string`]).
pub fn from_str(text: &str) -> Result<DataObject> {
    // Strip the two header lines (comment line may contain anything).
    let mut lines = text.lines();
    let first = lines.next().unwrap_or("");
    if !first.starts_with("# vtk DataFile") {
        return Err(DataError::Format("missing '# vtk DataFile' header".into()));
    }
    let _title = lines.next().unwrap_or("");
    let rest: String = lines.collect::<Vec<_>>().join("\n");
    let mut t = Tokens::new(&rest);
    t.expect("ASCII")?;
    t.expect("DATASET")?;
    let kind = t.next()?;
    if kind.eq_ignore_ascii_case("STRUCTURED_POINTS") {
        parse_grid(&mut t)
    } else if kind.eq_ignore_ascii_case("POLYDATA") {
        parse_polydata(&mut t)
    } else {
        Err(DataError::Format(format!(
            "unsupported DATASET kind '{kind}' (subset: STRUCTURED_POINTS, POLYDATA)"
        )))
    }
}

fn parse_grid(t: &mut Tokens) -> Result<DataObject> {
    t.expect("DIMENSIONS")?;
    let dims = [t.next_usize()?, t.next_usize()?, t.next_usize()?];
    t.expect("ORIGIN")?;
    let origin = Vec3::new(t.next_f32()?, t.next_f32()?, t.next_f32()?);
    t.expect("SPACING")?;
    let spacing = Vec3::new(t.next_f32()?, t.next_f32()?, t.next_f32()?);
    let mut grid = UniformGrid::new(dims, origin, spacing)?;
    t.expect("POINT_DATA")?;
    let n = t.next_usize()?;
    if n != grid.num_vertices() {
        return Err(DataError::Format(format!(
            "POINT_DATA count {n} != grid vertex count {}",
            grid.num_vertices()
        )));
    }
    parse_point_data(t, n, |name, attr| grid.set_attribute(name, attr))?;
    Ok(DataObject::Grid(grid))
}

fn parse_polydata(t: &mut Tokens) -> Result<DataObject> {
    t.expect("POINTS")?;
    let n = t.next_usize()?;
    let _dtype = t.next()?; // "float"
    let mut pos = Vec::with_capacity(n);
    for _ in 0..n {
        pos.push(Vec3::new(t.next_f32()?, t.next_f32()?, t.next_f32()?));
    }
    let mut cloud = PointCloud::from_positions(pos);
    // Optional VERTICES section — skip it.
    // (clone-based lookahead keeps the tokenizer simple)
    let mut lookahead = Tokens {
        words: t.words.clone(),
        consumed: t.consumed,
    };
    if let Ok(word) = lookahead.next() {
        if word.eq_ignore_ascii_case("VERTICES") {
            t.expect("VERTICES")?;
            let ncells = t.next_usize()?;
            let total = t.next_usize()?;
            let _ = ncells;
            for _ in 0..total {
                t.next()?;
            }
        }
    }
    if t.peek_done() {
        return Ok(DataObject::Points(cloud));
    }
    t.expect("POINT_DATA")?;
    let pd = t.next_usize()?;
    if pd != n {
        return Err(DataError::Format(format!(
            "POINT_DATA count {pd} != point count {n}"
        )));
    }
    parse_point_data(t, n, |name, attr| cloud.set_attribute(name, attr))?;
    Ok(DataObject::Points(cloud))
}

fn parse_point_data(
    t: &mut Tokens,
    n: usize,
    mut sink: impl FnMut(&str, Attribute) -> Result<()>,
) -> Result<()> {
    while !t.peek_done() {
        let section = t.next()?;
        if section.eq_ignore_ascii_case("SCALARS") {
            let name = t.next()?.to_string();
            let _dtype = t.next()?;
            // optional component count
            let mut lookahead = Tokens {
                words: t.words.clone(),
                consumed: t.consumed,
            };
            if let Ok(w) = lookahead.next() {
                if w.parse::<usize>().is_ok() {
                    t.next()?;
                }
            }
            t.expect("LOOKUP_TABLE")?;
            let _table = t.next()?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(t.next_f32()?);
            }
            sink(&name, Attribute::Scalar(v))?;
        } else if section.eq_ignore_ascii_case("VECTORS") {
            let name = t.next()?.to_string();
            let _dtype = t.next()?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(Vec3::new(t.next_f32()?, t.next_f32()?, t.next_f32()?));
            }
            sink(&name, Attribute::Vector(v))?;
        } else {
            return Err(DataError::Format(format!(
                "unsupported POINT_DATA section '{section}'"
            )));
        }
    }
    Ok(())
}

/// Write a dataset to a legacy `.vtk` file.
pub fn write_file(obj: &DataObject, path: &Path) -> Result<()> {
    fs::write(path, to_string(obj))?;
    Ok(())
}

/// Read a dataset from a legacy `.vtk` file.
pub fn read_file(path: &Path) -> Result<DataObject> {
    let text = fs::read_to_string(path)?;
    from_str(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_obj() -> DataObject {
        let mut g =
            UniformGrid::new([3, 2, 2], Vec3::new(0.5, 0.0, -1.0), Vec3::splat(0.25)).unwrap();
        g.set_attribute(
            "temp",
            Attribute::Scalar((0..12).map(|i| i as f32).collect()),
        )
        .unwrap();
        g.set_attribute(
            "flow",
            Attribute::Vector((0..12).map(|i| Vec3::splat(i as f32 * 0.1)).collect()),
        )
        .unwrap();
        DataObject::Grid(g)
    }

    fn points_obj() -> DataObject {
        let mut c = PointCloud::from_positions(vec![
            Vec3::new(0.0, 1.0, 2.0),
            Vec3::new(3.5, -1.25, 0.0),
            Vec3::new(1.0, 1.0, 1.0),
        ]);
        c.set_attribute("mass", Attribute::Scalar(vec![0.5, 1.5, 2.5]))
            .unwrap();
        DataObject::Points(c)
    }

    #[test]
    fn grid_roundtrip() {
        let obj = grid_obj();
        let text = to_string(&obj);
        let back = from_str(&text).unwrap();
        assert_eq!(obj, back);
    }

    #[test]
    fn points_roundtrip() {
        let obj = points_obj();
        let back = from_str(&to_string(&obj)).unwrap();
        assert_eq!(obj, back);
    }

    #[test]
    fn header_present_in_output() {
        let text = to_string(&grid_obj());
        assert!(text.starts_with("# vtk DataFile Version 3.0\n"));
        assert!(text.contains("DATASET STRUCTURED_POINTS"));
        assert!(text.contains("SCALARS temp float 1"));
        assert!(text.contains("VECTORS flow float"));
    }

    #[test]
    fn rejects_missing_header() {
        assert!(from_str("DATASET POLYDATA").is_err());
    }

    #[test]
    fn rejects_unsupported_dataset() {
        let text = "# vtk DataFile Version 3.0\nt\nASCII\nDATASET UNSTRUCTURED_GRID\n";
        let err = from_str(text).unwrap_err();
        assert!(err.to_string().contains("UNSTRUCTURED_GRID"));
    }

    #[test]
    fn rejects_point_data_count_mismatch() {
        let mut text = to_string(&grid_obj());
        text = text.replace("POINT_DATA 12", "POINT_DATA 13");
        assert!(from_str(&text).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("eth-vtk-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("grid.vtk");
        let obj = grid_obj();
        write_file(&obj, &path).unwrap();
        assert_eq!(read_file(&path).unwrap(), obj);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn points_without_point_data_parse() {
        let text = "# vtk DataFile Version 3.0\nt\nASCII\nDATASET POLYDATA\nPOINTS 1 float\n1 2 3\n";
        let obj = from_str(text).unwrap();
        assert_eq!(obj.num_elements(), 1);
    }

    #[test]
    fn id_attribute_degrades_to_scalar() {
        let mut c = PointCloud::from_positions(vec![Vec3::ZERO]);
        c.set_attribute("id", Attribute::Id(vec![77])).unwrap();
        let text = to_string(&DataObject::Points(c));
        let back = from_str(&text).unwrap();
        let p = back.as_points().unwrap();
        assert_eq!(p.scalar("id").unwrap(), &[77.0]);
    }
}
