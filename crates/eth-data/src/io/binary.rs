//! ETH binary data format (`.ebd`).
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   : b"EBD2"
//! kind    : u8           1 = points, 2 = grid
//! -- points --
//! count   : u64
//! pos     : count * 3 * f32
//! -- grid --
//! dims    : 3 * u64
//! origin  : 3 * f32
//! spacing : 3 * f32
//! -- both --
//! n_attr  : u32
//! per attribute:
//!   name_len : u32, name bytes (utf-8)
//!   type     : u8   0 = scalar, 1 = vector, 2 = id
//!   len      : u64
//!   payload  : len * {4, 12, 8} bytes
//! -- trailer --
//! crc     : u32          CRC-32 (IEEE) of every byte above
//! ```
//!
//! Version 2 (`EBD2`) appends the integrity trailer: [`decode`] verifies
//! the checksum *before* parsing and returns [`DataError::Corrupt`] on a
//! mismatch, so a flipped payload byte — a chaos-injected wire fault, a
//! torn disk write — is detected at the codec layer instead of being
//! parsed into a silently wrong dataset (or rendered). A wrong magic word
//! is still the distinct [`DataError::Format`]: version skew and protocol
//! confusion are framing errors, not corruption.
//!
//! The encoder writes into a [`bytes::BytesMut`] so the same bytes can be
//! shipped over the transport layer without re-serialization.

use crate::crc::crc32;
use crate::dataset::DataObject;
use crate::error::{DataError, Result};
use crate::field::{Attribute, AttributeSet};
use crate::grid::UniformGrid;
use crate::points::PointCloud;
use crate::vec3::Vec3;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fs::File;
use std::io::{Read as _, Write as _};
use std::path::Path;

const MAGIC: &[u8; 4] = b"EBD2";

/// Bytes appended after the body: the CRC-32 integrity trailer.
const TRAILER_BYTES: usize = 4;

const KIND_POINTS: u8 = 1;
const KIND_GRID: u8 = 2;

const ATTR_SCALAR: u8 = 0;
const ATTR_VECTOR: u8 = 1;
const ATTR_ID: u8 = 2;

fn put_vec3(buf: &mut BytesMut, v: Vec3) {
    buf.put_f32_le(v.x);
    buf.put_f32_le(v.y);
    buf.put_f32_le(v.z);
}

fn get_vec3(buf: &mut Bytes) -> Result<Vec3> {
    if buf.remaining() < 12 {
        return Err(DataError::Format("truncated vec3".into()));
    }
    Ok(Vec3::new(buf.get_f32_le(), buf.get_f32_le(), buf.get_f32_le()))
}

fn put_attributes(buf: &mut BytesMut, attrs: &AttributeSet) {
    buf.put_u32_le(attrs.len() as u32);
    for (name, attr) in attrs.iter() {
        buf.put_u32_le(name.len() as u32);
        buf.put_slice(name.as_bytes());
        match attr {
            Attribute::Scalar(v) => {
                buf.put_u8(ATTR_SCALAR);
                buf.put_u64_le(v.len() as u64);
                for &x in v {
                    buf.put_f32_le(x);
                }
            }
            Attribute::Vector(v) => {
                buf.put_u8(ATTR_VECTOR);
                buf.put_u64_le(v.len() as u64);
                for &x in v {
                    put_vec3(buf, x);
                }
            }
            Attribute::Id(v) => {
                buf.put_u8(ATTR_ID);
                buf.put_u64_le(v.len() as u64);
                for &x in v {
                    buf.put_u64_le(x);
                }
            }
        }
    }
}

fn need(buf: &Bytes, n: usize, what: &str) -> Result<()> {
    if buf.remaining() < n {
        Err(DataError::Format(format!("truncated {what}")))
    } else {
        Ok(())
    }
}

/// Split `len * stride` bytes off the front of `buf` without copying.
/// `Bytes::split_to` shares the allocation, so the payload slice views the
/// wire buffer directly; the element conversion below is the only copy.
fn take(buf: &mut Bytes, len: usize, stride: usize, what: &str) -> Result<Bytes> {
    let bytes = len
        .checked_mul(stride)
        .ok_or_else(|| DataError::Format(format!("{what} length overflow")))?;
    need(buf, bytes, what)?;
    Ok(buf.split_to(bytes))
}

fn f32s_from(raw: &[u8]) -> Vec<f32> {
    raw.chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

fn vec3s_from(raw: &[u8]) -> Vec<Vec3> {
    raw.chunks_exact(12)
        .map(|c| {
            Vec3::new(
                f32::from_le_bytes([c[0], c[1], c[2], c[3]]),
                f32::from_le_bytes([c[4], c[5], c[6], c[7]]),
                f32::from_le_bytes([c[8], c[9], c[10], c[11]]),
            )
        })
        .collect()
}

fn u64s_from(raw: &[u8]) -> Vec<u64> {
    raw.chunks_exact(8)
        .map(|c| u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
        .collect()
}

/// Decode the attribute section. Returns owned `(name, attribute)` pairs so
/// the caller can move them into the dataset instead of cloning.
fn get_attributes(buf: &mut Bytes) -> Result<Vec<(String, Attribute)>> {
    need(buf, 4, "attribute count")?;
    let n_attr = buf.get_u32_le() as usize;
    let mut attrs = Vec::with_capacity(n_attr);
    for _ in 0..n_attr {
        need(buf, 4, "attribute name length")?;
        let name_len = buf.get_u32_le() as usize;
        need(buf, name_len, "attribute name")?;
        let name_bytes = buf.split_to(name_len);
        let name = std::str::from_utf8(&name_bytes)
            .map_err(|_| DataError::Format("attribute name is not utf-8".into()))?
            .to_string();
        need(buf, 9, "attribute header")?;
        let ty = buf.get_u8();
        let len = buf.get_u64_le() as usize;
        let attr = match ty {
            ATTR_SCALAR => Attribute::Scalar(f32s_from(&take(buf, len, 4, "scalar payload")?)),
            ATTR_VECTOR => Attribute::Vector(vec3s_from(&take(buf, len, 12, "vector payload")?)),
            ATTR_ID => Attribute::Id(u64s_from(&take(buf, len, 8, "id payload")?)),
            other => {
                return Err(DataError::Format(format!("unknown attribute type {other}")))
            }
        };
        attrs.push((name, attr));
    }
    Ok(attrs)
}

fn attributes_encoded_len(attrs: &AttributeSet) -> usize {
    4 + attrs
        .iter()
        .map(|(name, attr)| {
            4 + name.len()
                + 9
                + match attr {
                    Attribute::Scalar(v) => v.len() * 4,
                    Attribute::Vector(v) => v.len() * 12,
                    Attribute::Id(v) => v.len() * 8,
                }
        })
        .sum::<usize>()
}

/// Exact size of [`encode`]'s output for `obj`, from the format layout in
/// the module docs. Lets the encoder allocate once with no slack and no
/// mid-encode growth copies.
pub fn encoded_len(obj: &DataObject) -> usize {
    5 + match obj {
        DataObject::Points(p) => 8 + p.len() * 12 + attributes_encoded_len(p.attributes()),
        DataObject::Grid(g) => 24 + 24 + attributes_encoded_len(g.attributes()),
    } + TRAILER_BYTES
}

/// Encode a dataset into a fresh byte buffer.
pub fn encode(obj: &DataObject) -> Bytes {
    let exact = encoded_len(obj);
    let mut buf = BytesMut::with_capacity(exact);
    buf.put_slice(MAGIC);
    match obj {
        DataObject::Points(p) => {
            buf.put_u8(KIND_POINTS);
            buf.put_u64_le(p.len() as u64);
            for &pos in p.positions() {
                put_vec3(&mut buf, pos);
            }
            put_attributes(&mut buf, p.attributes());
        }
        DataObject::Grid(g) => {
            buf.put_u8(KIND_GRID);
            for d in g.dims() {
                buf.put_u64_le(d as u64);
            }
            put_vec3(&mut buf, g.origin());
            put_vec3(&mut buf, g.spacing());
            put_attributes(&mut buf, g.attributes());
        }
    }
    let crc = crc32(&buf);
    buf.put_u32_le(crc);
    debug_assert_eq!(buf.len(), exact, "encoded_len out of sync with encode");
    buf.freeze()
}

/// Decode a dataset from bytes produced by [`encode`].
///
/// Check order: magic first (wrong magic is a [`DataError::Format`] —
/// version skew, not bit rot), then the CRC-32 trailer over the whole
/// body ([`DataError::Corrupt`] on mismatch), and only then the parse.
/// A corrupted buffer therefore never reaches the structural decoder.
pub fn decode(buf: Bytes) -> Result<DataObject> {
    need(&buf, 5, "header")?;
    if &buf[..4] != MAGIC {
        return Err(DataError::Format(format!(
            "bad magic {:?}, expected {MAGIC:?}",
            &buf[..4]
        )));
    }
    need(&buf, 5 + TRAILER_BYTES, "integrity trailer")?;
    let body_len = buf.len() - TRAILER_BYTES;
    let stored = u32::from_le_bytes([
        buf[body_len],
        buf[body_len + 1],
        buf[body_len + 2],
        buf[body_len + 3],
    ]);
    let computed = crc32(&buf[..body_len]);
    if stored != computed {
        return Err(DataError::Corrupt(format!(
            "dataset checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
        )));
    }
    // body minus the (verified) magic and the trailer, sharing the
    // allocation
    let mut buf = buf.slice(4..body_len);
    match buf.get_u8() {
        KIND_POINTS => {
            need(&buf, 8, "point count")?;
            let count = buf.get_u64_le() as usize;
            let pos = vec3s_from(&take(&mut buf, count, 12, "positions")?);
            let mut cloud = PointCloud::from_positions(pos);
            for (name, attr) in get_attributes(&mut buf)? {
                cloud.set_attribute(&name, attr)?;
            }
            Ok(DataObject::Points(cloud))
        }
        KIND_GRID => {
            need(&buf, 24, "grid dims")?;
            let dims = [
                buf.get_u64_le() as usize,
                buf.get_u64_le() as usize,
                buf.get_u64_le() as usize,
            ];
            let origin = get_vec3(&mut buf)?;
            let spacing = get_vec3(&mut buf)?;
            let mut grid = UniformGrid::new(dims, origin, spacing)?;
            for (name, attr) in get_attributes(&mut buf)? {
                grid.set_attribute(&name, attr)?;
            }
            Ok(DataObject::Grid(grid))
        }
        other => Err(DataError::Format(format!("unknown dataset kind {other}"))),
    }
}

/// Write a dataset to a `.ebd` file.
pub fn write_file(obj: &DataObject, path: &Path) -> Result<()> {
    let bytes = encode(obj);
    let mut f = File::create(path)?;
    f.write_all(&bytes)?;
    Ok(())
}

/// Read a dataset from a `.ebd` file.
pub fn read_file(path: &Path) -> Result<DataObject> {
    let mut f = File::open(path)?;
    let mut v = Vec::new();
    f.read_to_end(&mut v)?;
    decode(Bytes::from(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_points() -> DataObject {
        let mut c = PointCloud::from_positions(vec![
            Vec3::new(0.5, 1.5, 2.5),
            Vec3::new(-1.0, 0.0, 3.0),
        ]);
        c.set_attribute("mass", Attribute::Scalar(vec![1.0, 2.0])).unwrap();
        c.set_attribute(
            "vel",
            Attribute::Vector(vec![Vec3::ONE, Vec3::new(0.0, -1.0, 0.5)]),
        )
        .unwrap();
        c.set_attribute("id", Attribute::Id(vec![42, 7])).unwrap();
        DataObject::Points(c)
    }

    fn sample_grid() -> DataObject {
        let mut g =
            UniformGrid::new([3, 2, 2], Vec3::new(1.0, 2.0, 3.0), Vec3::splat(0.5)).unwrap();
        g.set_attribute(
            "temp",
            Attribute::Scalar((0..12).map(|i| i as f32 * 0.25).collect()),
        )
        .unwrap();
        DataObject::Grid(g)
    }

    #[test]
    fn points_roundtrip_in_memory() {
        let obj = sample_points();
        let back = decode(encode(&obj)).unwrap();
        assert_eq!(obj, back);
    }

    #[test]
    fn grid_roundtrip_in_memory() {
        let obj = sample_grid();
        let back = decode(encode(&obj)).unwrap();
        assert_eq!(obj, back);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("eth-data-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("points.ebd");
        let obj = sample_points();
        write_file(&obj, &path).unwrap();
        let back = read_file(&path).unwrap();
        assert_eq!(obj, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn encoded_len_is_exact() {
        for obj in [
            sample_points(),
            sample_grid(),
            DataObject::Points(PointCloud::new()),
        ] {
            assert_eq!(encode(&obj).len(), encoded_len(&obj));
        }
    }

    #[test]
    fn rejects_wrong_attribute_length() {
        // Corrupt a scalar attribute's length field: the integrity trailer
        // catches the flip before the structural parse even runs.
        let obj = sample_points();
        let raw = encode(&obj).to_vec();
        // The first attribute ("mass") starts after magic(4) + kind(1) +
        // count(8) + 2 positions(24) + n_attr(4) = 41; its header is
        // name_len(4) + "mass"(4) + type(1), then len: u64 at offset 50.
        let mut bad = raw.clone();
        bad[50] = 1; // claim 1 element instead of 2
        assert!(matches!(
            decode(Bytes::from(bad)),
            Err(DataError::Corrupt(_))
        ));
    }

    #[test]
    fn any_payload_byte_flip_is_detected_as_corruption() {
        // The acceptance property: flipping ANY byte past the magic makes
        // decode fail with the corruption error (the magic bytes instead
        // fail as Format — version skew, not bit rot).
        for obj in [sample_points(), sample_grid()] {
            let raw = encode(&obj).to_vec();
            for offset in 0..raw.len() {
                let mut bad = raw.clone();
                bad[offset] ^= 0x01;
                match decode(Bytes::from(bad)) {
                    Err(DataError::Format(_)) if offset < 4 => {}
                    Err(DataError::Corrupt(_)) if offset >= 4 => {}
                    other => panic!("flip at {offset}: unexpected {other:?}"),
                }
            }
        }
    }

    #[test]
    fn trailer_stripped_before_parse() {
        // A valid buffer must decode with the trailer present (i.e. the
        // trailer is not mistaken for attribute data).
        let obj = sample_grid();
        let bytes = encode(&obj);
        assert_eq!(bytes.len(), encoded_len(&obj));
        assert_eq!(decode(bytes).unwrap(), obj);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut raw = encode(&sample_points()).to_vec();
        raw[0] = b'X';
        assert!(matches!(
            decode(Bytes::from(raw)),
            Err(DataError::Format(_))
        ));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let full = encode(&sample_points()).to_vec();
        // Chop at a spread of offsets; every prefix must fail cleanly,
        // never panic.
        for cut in [0, 3, 4, 5, 12, 13, 20, full.len() - 1] {
            let r = decode(Bytes::from(full[..cut].to_vec()));
            assert!(r.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn rejects_unknown_kind() {
        let mut raw = encode(&sample_grid()).to_vec();
        raw[4] = 99;
        assert!(decode(Bytes::from(raw)).is_err());
    }

    #[test]
    fn empty_cloud_roundtrips() {
        let obj = DataObject::Points(PointCloud::new());
        let back = decode(encode(&obj)).unwrap();
        assert_eq!(obj, back);
    }
}
