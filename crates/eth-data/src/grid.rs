//! Uniform structured grid — the volumetric data class (xRAGE case).
//!
//! The paper's asteroid pipeline converts AMR output to an unstructured grid
//! and downsamples it to a *structured* grid before visualization; this type
//! is the structured end of that pipeline. It stores vertex-centered samples
//! on a regular lattice with uniform spacing and supports the operations the
//! renderers need: index↔world mapping, trilinear sampling, and central-
//! difference gradients (for isosurface shading).

use crate::bounds::Aabb;
use crate::error::{DataError, Result};
use crate::field::{Attribute, AttributeSet};
use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// A vertex-centered uniform grid with named attribute arrays.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UniformGrid {
    /// Number of vertices along x, y, z (each >= 1).
    dims: [usize; 3],
    /// World-space position of vertex (0,0,0).
    origin: Vec3,
    /// World-space distance between adjacent vertices on each axis.
    spacing: Vec3,
    attributes: AttributeSet,
}

impl UniformGrid {
    /// Create an empty grid of the given shape.
    pub fn new(dims: [usize; 3], origin: Vec3, spacing: Vec3) -> Result<Self> {
        if dims.contains(&0) {
            return Err(DataError::InvalidArgument(format!(
                "grid dims must be non-zero, got {dims:?}"
            )));
        }
        if spacing.x <= 0.0 || spacing.y <= 0.0 || spacing.z <= 0.0 {
            return Err(DataError::InvalidArgument(format!(
                "grid spacing must be positive, got {spacing:?}"
            )));
        }
        Ok(UniformGrid {
            dims,
            origin,
            spacing,
            attributes: AttributeSet::new(),
        })
    }

    /// Grid covering `bounds` with the given vertex counts.
    pub fn over_bounds(dims: [usize; 3], bounds: Aabb) -> Result<Self> {
        let e = bounds.extent();
        let sp = Vec3::new(
            if dims[0] > 1 { e.x / (dims[0] - 1) as f32 } else { 1.0 },
            if dims[1] > 1 { e.y / (dims[1] - 1) as f32 } else { 1.0 },
            if dims[2] > 1 { e.z / (dims[2] - 1) as f32 } else { 1.0 },
        );
        UniformGrid::new(dims, bounds.min, sp)
    }

    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }

    pub fn origin(&self) -> Vec3 {
        self.origin
    }

    pub fn spacing(&self) -> Vec3 {
        self.spacing
    }

    /// Total number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.dims[0] * self.dims[1] * self.dims[2]
    }

    /// Total number of cells (hexahedra between vertices).
    pub fn num_cells(&self) -> usize {
        self.dims
            .iter()
            .map(|&d| d.saturating_sub(1))
            .product()
    }

    pub fn attributes(&self) -> &AttributeSet {
        &self.attributes
    }

    pub fn set_attribute(&mut self, name: &str, attr: Attribute) -> Result<()> {
        self.attributes.insert(name, attr, self.num_vertices())
    }

    pub fn attribute(&self, name: &str) -> Option<&Attribute> {
        self.attributes.get(name)
    }

    pub fn scalar(&self, name: &str) -> Result<&[f32]> {
        self.attributes.require_scalar(name)
    }

    /// World-space bounding box of the grid.
    pub fn bounds(&self) -> Aabb {
        let ext = Vec3::new(
            (self.dims[0] - 1) as f32 * self.spacing.x,
            (self.dims[1] - 1) as f32 * self.spacing.y,
            (self.dims[2] - 1) as f32 * self.spacing.z,
        );
        Aabb::new(self.origin, self.origin + ext)
    }

    /// Flat index of vertex (i, j, k), x-fastest.
    #[inline]
    pub fn vertex_index(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.dims[0] && j < self.dims[1] && k < self.dims[2]);
        (k * self.dims[1] + j) * self.dims[0] + i
    }

    /// Inverse of [`UniformGrid::vertex_index`].
    #[inline]
    pub fn vertex_coords(&self, index: usize) -> (usize, usize, usize) {
        let i = index % self.dims[0];
        let j = (index / self.dims[0]) % self.dims[1];
        let k = index / (self.dims[0] * self.dims[1]);
        (i, j, k)
    }

    /// World position of vertex (i, j, k).
    #[inline]
    pub fn vertex_position(&self, i: usize, j: usize, k: usize) -> Vec3 {
        self.origin
            + Vec3::new(
                i as f32 * self.spacing.x,
                j as f32 * self.spacing.y,
                k as f32 * self.spacing.z,
            )
    }

    /// Continuous grid coordinates of a world point (0..dims-1 inside).
    #[inline]
    pub fn world_to_grid(&self, p: Vec3) -> Vec3 {
        Vec3::new(
            (p.x - self.origin.x) / self.spacing.x,
            (p.y - self.origin.y) / self.spacing.y,
            (p.z - self.origin.z) / self.spacing.z,
        )
    }

    /// Trilinearly interpolated sample of a scalar field at world point `p`.
    /// Returns `None` outside the grid.
    pub fn sample_trilinear(&self, values: &[f32], p: Vec3) -> Option<f32> {
        debug_assert_eq!(values.len(), self.num_vertices());
        let g = self.world_to_grid(p);
        let nx = self.dims[0];
        let ny = self.dims[1];
        let nz = self.dims[2];
        if g.x < 0.0 || g.y < 0.0 || g.z < 0.0 {
            return None;
        }
        if g.x > (nx - 1) as f32 || g.y > (ny - 1) as f32 || g.z > (nz - 1) as f32 {
            return None;
        }
        let i0 = (g.x as usize).min(nx.saturating_sub(2));
        let j0 = (g.y as usize).min(ny.saturating_sub(2));
        let k0 = (g.z as usize).min(nz.saturating_sub(2));
        // Degenerate (flat) axes clamp their interpolation weight to zero.
        let fx = if nx > 1 { g.x - i0 as f32 } else { 0.0 };
        let fy = if ny > 1 { g.y - j0 as f32 } else { 0.0 };
        let fz = if nz > 1 { g.z - k0 as f32 } else { 0.0 };
        let i1 = (i0 + 1).min(nx - 1);
        let j1 = (j0 + 1).min(ny - 1);
        let k1 = (k0 + 1).min(nz - 1);

        let v = |i: usize, j: usize, k: usize| values[self.vertex_index(i, j, k)];
        let c00 = v(i0, j0, k0) * (1.0 - fx) + v(i1, j0, k0) * fx;
        let c10 = v(i0, j1, k0) * (1.0 - fx) + v(i1, j1, k0) * fx;
        let c01 = v(i0, j0, k1) * (1.0 - fx) + v(i1, j0, k1) * fx;
        let c11 = v(i0, j1, k1) * (1.0 - fx) + v(i1, j1, k1) * fx;
        let c0 = c00 * (1.0 - fy) + c10 * fy;
        let c1 = c01 * (1.0 - fy) + c11 * fy;
        Some(c0 * (1.0 - fz) + c1 * fz)
    }

    /// Central-difference gradient of a scalar field at vertex (i, j, k)
    /// (one-sided at boundaries). Used for isosurface shading normals.
    pub fn gradient_at_vertex(&self, values: &[f32], i: usize, j: usize, k: usize) -> Vec3 {
        debug_assert_eq!(values.len(), self.num_vertices());
        let v = |i: usize, j: usize, k: usize| values[self.vertex_index(i, j, k)];
        let diff = |lo: f32, hi: f32, h: f32| (hi - lo) / h;

        let gx = {
            let (a, b, h) = if self.dims[0] == 1 {
                (0.0, 0.0, 1.0)
            } else if i == 0 {
                (v(0, j, k), v(1, j, k), self.spacing.x)
            } else if i == self.dims[0] - 1 {
                (v(i - 1, j, k), v(i, j, k), self.spacing.x)
            } else {
                (v(i - 1, j, k), v(i + 1, j, k), 2.0 * self.spacing.x)
            };
            diff(a, b, h)
        };
        let gy = {
            let (a, b, h) = if self.dims[1] == 1 {
                (0.0, 0.0, 1.0)
            } else if j == 0 {
                (v(i, 0, k), v(i, 1, k), self.spacing.y)
            } else if j == self.dims[1] - 1 {
                (v(i, j - 1, k), v(i, j, k), self.spacing.y)
            } else {
                (v(i, j - 1, k), v(i, j + 1, k), 2.0 * self.spacing.y)
            };
            diff(a, b, h)
        };
        let gz = {
            let (a, b, h) = if self.dims[2] == 1 {
                (0.0, 0.0, 1.0)
            } else if k == 0 {
                (v(i, j, 0), v(i, j, 1), self.spacing.z)
            } else if k == self.dims[2] - 1 {
                (v(i, j, k - 1), v(i, j, k), self.spacing.z)
            } else {
                (v(i, j, k - 1), v(i, j, k + 1), 2.0 * self.spacing.z)
            };
            diff(a, b, h)
        };
        Vec3::new(gx, gy, gz)
    }

    /// Trilinearly interpolated gradient at an arbitrary world point
    /// (gradient of the interpolant via finite differences of samples).
    pub fn gradient_at_point(&self, values: &[f32], p: Vec3) -> Option<Vec3> {
        let h = self.spacing * 0.5;
        let s = |q: Vec3| self.sample_trilinear(values, q);
        // Fall back to the center sample when a probe would leave the grid.
        let c = s(p)?;
        let probe = |lo: Option<f32>, hi: Option<f32>, h: f32| match (lo, hi) {
            (Some(a), Some(b)) => (b - a) / (2.0 * h),
            (None, Some(b)) => (b - c) / h,
            (Some(a), None) => (c - a) / h,
            (None, None) => 0.0,
        };
        let gx = probe(
            s(p - Vec3::new(h.x, 0.0, 0.0)),
            s(p + Vec3::new(h.x, 0.0, 0.0)),
            h.x,
        );
        let gy = probe(
            s(p - Vec3::new(0.0, h.y, 0.0)),
            s(p + Vec3::new(0.0, h.y, 0.0)),
            h.y,
        );
        let gz = probe(
            s(p - Vec3::new(0.0, 0.0, h.z)),
            s(p + Vec3::new(0.0, 0.0, h.z)),
            h.z,
        );
        Some(Vec3::new(gx, gy, gz))
    }

    /// Approximate in-memory footprint in bytes.
    pub fn payload_bytes(&self) -> usize {
        let mut total = 0;
        for (_, attr) in self.attributes.iter() {
            total += match attr {
                Attribute::Scalar(v) => v.len() * 4,
                Attribute::Vector(v) => v.len() * 12,
                Attribute::Id(v) => v.len() * 8,
            };
        }
        total
    }

    /// Extract the sub-grid covering vertex range `[lo, hi)` on each axis.
    /// Used by the slab partitioner.
    pub fn extract_subgrid(&self, lo: [usize; 3], hi: [usize; 3]) -> Result<UniformGrid> {
        for a in 0..3 {
            if lo[a] >= hi[a] || hi[a] > self.dims[a] {
                return Err(DataError::InvalidArgument(format!(
                    "bad subgrid range [{lo:?}, {hi:?}) for dims {:?}",
                    self.dims
                )));
            }
        }
        let dims = [hi[0] - lo[0], hi[1] - lo[1], hi[2] - lo[2]];
        let origin = self.vertex_position(lo[0], lo[1], lo[2]);
        let mut out = UniformGrid::new(dims, origin, self.spacing)?;
        // Gather flat indices of the kept vertices, x-fastest to match layout.
        let mut indices = Vec::with_capacity(dims[0] * dims[1] * dims[2]);
        for k in lo[2]..hi[2] {
            for j in lo[1]..hi[1] {
                for i in lo[0]..hi[0] {
                    indices.push(self.vertex_index(i, j, k));
                }
            }
        }
        let gathered = self.attributes.gather(&indices);
        for (name, attr) in gathered.iter() {
            out.set_attribute(name, attr.clone())?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_grid() -> UniformGrid {
        // 3x3x3 grid on [0,2]^3, scalar = x + 10y + 100z at each vertex.
        let mut g = UniformGrid::new([3, 3, 3], Vec3::ZERO, Vec3::ONE).unwrap();
        let mut vals = Vec::new();
        for k in 0..3 {
            for j in 0..3 {
                for i in 0..3 {
                    vals.push(i as f32 + 10.0 * j as f32 + 100.0 * k as f32);
                }
            }
        }
        g.set_attribute("f", Attribute::Scalar(vals)).unwrap();
        g
    }

    #[test]
    fn construction_validates() {
        assert!(UniformGrid::new([0, 3, 3], Vec3::ZERO, Vec3::ONE).is_err());
        assert!(UniformGrid::new([3, 3, 3], Vec3::ZERO, Vec3::new(1.0, 0.0, 1.0)).is_err());
    }

    #[test]
    fn counts_and_bounds() {
        let g = ramp_grid();
        assert_eq!(g.num_vertices(), 27);
        assert_eq!(g.num_cells(), 8);
        let b = g.bounds();
        assert_eq!(b.min, Vec3::ZERO);
        assert_eq!(b.max, Vec3::splat(2.0));
    }

    #[test]
    fn index_roundtrip() {
        let g = ramp_grid();
        for idx in 0..g.num_vertices() {
            let (i, j, k) = g.vertex_coords(idx);
            assert_eq!(g.vertex_index(i, j, k), idx);
        }
    }

    #[test]
    fn trilinear_reproduces_linear_field() {
        let g = ramp_grid();
        let f = g.scalar("f").unwrap().to_vec();
        // A linear field must be reproduced exactly by trilinear interpolation.
        let p = Vec3::new(0.5, 1.25, 1.75);
        let got = g.sample_trilinear(&f, p).unwrap();
        let want = 0.5 + 10.0 * 1.25 + 100.0 * 1.75;
        assert!((got - want).abs() < 1e-4, "got {got}, want {want}");
    }

    #[test]
    fn trilinear_outside_is_none() {
        let g = ramp_grid();
        let f = g.scalar("f").unwrap().to_vec();
        assert!(g.sample_trilinear(&f, Vec3::splat(-0.1)).is_none());
        assert!(g.sample_trilinear(&f, Vec3::splat(2.1)).is_none());
        // exactly on the max corner is inside
        assert!(g.sample_trilinear(&f, Vec3::splat(2.0)).is_some());
    }

    #[test]
    fn gradient_of_linear_field_is_constant() {
        let g = ramp_grid();
        let f = g.scalar("f").unwrap().to_vec();
        for k in 0..3 {
            for j in 0..3 {
                for i in 0..3 {
                    let grad = g.gradient_at_vertex(&f, i, j, k);
                    assert!((grad.x - 1.0).abs() < 1e-4);
                    assert!((grad.y - 10.0).abs() < 1e-4);
                    assert!((grad.z - 100.0).abs() < 1e-4);
                }
            }
        }
        let gp = g.gradient_at_point(&f, Vec3::splat(1.0)).unwrap();
        assert!((gp.x - 1.0).abs() < 1e-3);
        assert!((gp.y - 10.0).abs() < 1e-3);
        assert!((gp.z - 100.0).abs() < 1e-3);
    }

    #[test]
    fn subgrid_extraction_preserves_values() {
        let g = ramp_grid();
        let sub = g.extract_subgrid([1, 0, 1], [3, 2, 3]).unwrap();
        assert_eq!(sub.dims(), [2, 2, 2]);
        assert_eq!(sub.origin(), Vec3::new(1.0, 0.0, 1.0));
        let f = sub.scalar("f").unwrap();
        // first kept vertex is (1,0,1) -> 1 + 0 + 100
        assert_eq!(f[0], 101.0);
        // last is (2,1,2) -> 2 + 10 + 200
        assert_eq!(*f.last().unwrap(), 212.0);
    }

    #[test]
    fn subgrid_rejects_bad_ranges() {
        let g = ramp_grid();
        assert!(g.extract_subgrid([0, 0, 0], [4, 2, 2]).is_err());
        assert!(g.extract_subgrid([2, 0, 0], [2, 2, 2]).is_err());
    }

    #[test]
    fn over_bounds_covers_box() {
        let b = Aabb::new(Vec3::ZERO, Vec3::new(4.0, 2.0, 1.0));
        let g = UniformGrid::over_bounds([5, 3, 2], b).unwrap();
        assert_eq!(g.bounds(), b);
        assert_eq!(g.spacing(), Vec3::new(1.0, 1.0, 1.0));
    }

    #[test]
    fn flat_axis_grid_samples() {
        // 2D grid (one vertex thick in z) still samples correctly.
        let mut g = UniformGrid::new([2, 2, 1], Vec3::ZERO, Vec3::ONE).unwrap();
        g.set_attribute("f", Attribute::Scalar(vec![0.0, 1.0, 2.0, 3.0]))
            .unwrap();
        let f = g.scalar("f").unwrap().to_vec();
        let v = g.sample_trilinear(&f, Vec3::new(0.5, 0.5, 0.0)).unwrap();
        assert!((v - 1.5).abs() < 1e-5);
    }
}
