//! Spatial decomposition of datasets across ranks.
//!
//! Every rank of the ETH simulation proxy must be able to load exactly the
//! block of data it will serve to the in-situ interface (Figure 7 of the
//! paper). This module produces those blocks: a recursive-bisection block
//! decomposition for point data and a slab/brick decomposition for grids.
//!
//! Invariants (enforced by tests and property tests):
//! * blocks cover the domain,
//! * every particle lands in exactly one block,
//! * grid slabs reassemble to the original vertex count (with shared faces
//!   counted once).

use crate::bounds::Aabb;
use crate::error::{DataError, Result};
use crate::grid::UniformGrid;
use crate::points::PointCloud;

/// How many blocks along each axis for a given rank count: a near-cubic
/// factorization of `n` into three factors, largest factor on the longest
/// axis of `domain`.
pub fn factor_blocks(n: usize, domain: &Aabb) -> [usize; 3] {
    assert!(n > 0, "cannot partition into zero blocks");
    // Find the factorization a*b*c == n minimizing the spread of per-block
    // aspect ratios (brute force; n is a rank count, so small).
    let mut best = [n, 1, 1];
    let mut best_score = f32::INFINITY;
    let ext = {
        let e = domain.extent();
        // Guard degenerate/empty domains.
        [e.x.max(1e-20), e.y.max(1e-20), e.z.max(1e-20)]
    };
    let mut a = 1;
    while a * a * a <= n {
        if n.is_multiple_of(a) {
            let rem = n / a;
            let mut b = a;
            while b * b <= rem {
                if rem.is_multiple_of(b) {
                    let c = rem / b;
                    // try all assignments of (a,b,c) to axes
                    let factors = [a, b, c];
                    let perms: [[usize; 3]; 6] = [
                        [0, 1, 2],
                        [0, 2, 1],
                        [1, 0, 2],
                        [1, 2, 0],
                        [2, 0, 1],
                        [2, 1, 0],
                    ];
                    for perm in perms {
                        let f = [factors[perm[0]], factors[perm[1]], factors[perm[2]]];
                        // block edge lengths
                        let bl = [
                            ext[0] / f[0] as f32,
                            ext[1] / f[1] as f32,
                            ext[2] / f[2] as f32,
                        ];
                        let lo = bl[0].min(bl[1]).min(bl[2]);
                        let hi = bl[0].max(bl[1]).max(bl[2]);
                        let score = hi / lo;
                        if score < best_score {
                            best_score = score;
                            best = f;
                        }
                    }
                }
                b += 1;
            }
        }
        a += 1;
    }
    best
}

/// Axis-aligned block decomposition of a domain into `n` boxes.
///
/// Blocks tile the domain exactly: unions reproduce the domain and interior
/// faces are shared. Use [`Aabb::contains_half_open`] for unique membership.
pub fn decompose_domain(domain: &Aabb, n: usize) -> Vec<Aabb> {
    let f = factor_blocks(n, domain);
    let e = domain.extent();
    let step = [
        e.x / f[0] as f32,
        e.y / f[1] as f32,
        e.z / f[2] as f32,
    ];
    let mut blocks = Vec::with_capacity(n);
    for bk in 0..f[2] {
        for bj in 0..f[1] {
            for bi in 0..f[0] {
                let min = crate::vec3::Vec3::new(
                    domain.min.x + bi as f32 * step[0],
                    domain.min.y + bj as f32 * step[1],
                    domain.min.z + bk as f32 * step[2],
                );
                // Use exact domain max on the last block of each axis to
                // avoid floating-point shortfall at the boundary.
                let max = crate::vec3::Vec3::new(
                    if bi + 1 == f[0] { domain.max.x } else { domain.min.x + (bi + 1) as f32 * step[0] },
                    if bj + 1 == f[1] { domain.max.y } else { domain.min.y + (bj + 1) as f32 * step[1] },
                    if bk + 1 == f[2] { domain.max.z } else { domain.min.z + (bk + 1) as f32 * step[2] },
                );
                blocks.push(Aabb::new(min, max));
            }
        }
    }
    blocks
}

/// Assign every particle of `cloud` to exactly one of `n` spatial blocks,
/// returning per-rank clouds (attributes gathered consistently).
pub fn partition_points(cloud: &PointCloud, n: usize) -> Result<Vec<PointCloud>> {
    if n == 0 {
        return Err(DataError::InvalidArgument("zero ranks".into()));
    }
    let domain = cloud.bounds();
    if cloud.is_empty() {
        // n empty clouds — a rank is allowed to hold no data.
        return Ok((0..n).map(|_| cloud.gather(&[]).unwrap()).collect());
    }
    let blocks = decompose_domain(&domain, n);
    let mut index_lists: Vec<Vec<usize>> = vec![Vec::new(); n];
    'next_point: for (pi, &p) in cloud.positions().iter().enumerate() {
        for (bi, b) in blocks.iter().enumerate() {
            // Half-open membership makes interior faces unambiguous; points
            // on the global max faces fall through to the closed test below.
            if b.contains_half_open(p) {
                index_lists[bi].push(pi);
                continue 'next_point;
            }
        }
        // Domain-boundary points (on a global max face): first closed match.
        for (bi, b) in blocks.iter().enumerate() {
            if b.contains(p) {
                index_lists[bi].push(pi);
                continue 'next_point;
            }
        }
        // Floating-point stragglers go to the nearest block center.
        let (bi, _) = blocks
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                let da = (a.center() - p).length_squared();
                let db = (b.center() - p).length_squared();
                da.partial_cmp(&db).unwrap()
            })
            .expect("at least one block");
        index_lists[bi].push(pi);
    }
    index_lists.iter().map(|ix| cloud.gather(ix)).collect()
}

/// Partition a grid into `n` slabs along its longest axis.
///
/// Adjacent slabs share one layer of vertices (ghost-free rendering needs
/// the boundary values on both sides, exactly as VTK's extent splitting
/// does). Slab vertex counts are balanced to within one layer.
pub fn partition_grid_slabs(grid: &UniformGrid, n: usize) -> Result<Vec<UniformGrid>> {
    if n == 0 {
        return Err(DataError::InvalidArgument("zero ranks".into()));
    }
    let dims = grid.dims();
    let axis = grid.bounds().longest_axis();
    let cells = dims[axis] - 1;
    if n == 1 || cells == 0 {
        return Ok(vec![grid.clone(); n]);
    }
    let slabs = n.min(cells); // cannot split finer than one cell per slab
    let mut out = Vec::with_capacity(n);
    for s in 0..slabs {
        let c0 = s * cells / slabs;
        let c1 = (s + 1) * cells / slabs;
        let mut lo = [0usize; 3];
        let mut hi = dims;
        lo[axis] = c0;
        hi[axis] = c1 + 1; // +1: share the boundary vertex layer
        out.push(grid.extract_subgrid(lo, hi)?);
    }
    // If n > cells some ranks get an empty share; replicate the last slab's
    // metadata with a minimal 1-layer grid so every rank has a valid object.
    while out.len() < n {
        let mut lo = [0usize; 3];
        let mut hi = dims;
        lo[axis] = dims[axis] - 1;
        hi[axis] = dims[axis];
        out.push(grid.extract_subgrid(lo, hi)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::Attribute;
    use crate::vec3::Vec3;

    #[test]
    fn factor_blocks_near_cubic() {
        let d = Aabb::unit();
        assert_eq!(factor_blocks(1, &d), [1, 1, 1]);
        let f8 = factor_blocks(8, &d);
        assert_eq!(f8.iter().product::<usize>(), 8);
        assert_eq!(f8, [2, 2, 2]);
        let f12 = factor_blocks(12, &d);
        assert_eq!(f12.iter().product::<usize>(), 12);
    }

    #[test]
    fn factor_blocks_follows_domain_shape() {
        // A domain stretched in x should put more blocks along x.
        let d = Aabb::new(Vec3::ZERO, Vec3::new(100.0, 1.0, 1.0));
        let f = factor_blocks(4, &d);
        assert_eq!(f, [4, 1, 1]);
    }

    #[test]
    fn decompose_covers_domain() {
        let d = Aabb::new(Vec3::new(-1.0, 0.0, 2.0), Vec3::new(3.0, 2.0, 4.0));
        let blocks = decompose_domain(&d, 6);
        assert_eq!(blocks.len(), 6);
        let mut u = Aabb::empty();
        let mut vol = 0.0;
        for b in &blocks {
            u.expand_box(b);
            vol += b.volume();
        }
        assert_eq!(u, d);
        assert!((vol - d.volume()).abs() < 1e-3 * d.volume());
    }

    fn random_cloud(n: usize, seed: u64) -> PointCloud {
        // Tiny deterministic LCG to avoid pulling rand into unit tests.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) as f32
        };
        let mut pos = Vec::with_capacity(n);
        for _ in 0..n {
            pos.push(Vec3::new(next() * 4.0 - 1.0, next() * 2.0, next() * 3.0));
        }
        let mut c = PointCloud::from_positions(pos);
        let ids: Vec<u64> = (0..n as u64).collect();
        c.set_attribute("id", Attribute::Id(ids)).unwrap();
        c
    }

    #[test]
    fn partition_points_is_exhaustive_and_disjoint() {
        let cloud = random_cloud(500, 7);
        for n in [1usize, 2, 3, 4, 7, 8] {
            let parts = partition_points(&cloud, n).unwrap();
            assert_eq!(parts.len(), n);
            let total: usize = parts.iter().map(|p| p.len()).sum();
            assert_eq!(total, cloud.len(), "n={n}: particles lost or duplicated");
            // ids across all parts must be a permutation of 0..N
            let mut seen = vec![false; cloud.len()];
            for p in &parts {
                for &id in p.attribute("id").unwrap().as_id().unwrap() {
                    assert!(!seen[id as usize], "duplicate particle {id}");
                    seen[id as usize] = true;
                }
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn partition_empty_cloud() {
        let c = PointCloud::new();
        let parts = partition_points(&c, 4).unwrap();
        assert_eq!(parts.len(), 4);
        assert!(parts.iter().all(|p| p.is_empty()));
    }

    fn labeled_grid(dims: [usize; 3]) -> UniformGrid {
        let mut g = UniformGrid::new(dims, Vec3::ZERO, Vec3::ONE).unwrap();
        let vals: Vec<f32> = (0..g.num_vertices()).map(|i| i as f32).collect();
        g.set_attribute("f", Attribute::Scalar(vals)).unwrap();
        g
    }

    #[test]
    fn grid_slabs_share_boundary_layers() {
        let g = labeled_grid([9, 4, 4]);
        let slabs = partition_grid_slabs(&g, 2).unwrap();
        assert_eq!(slabs.len(), 2);
        // longest axis is x (8 cells): 2 slabs of 4 cells = 5 vertices each
        assert_eq!(slabs[0].dims(), [5, 4, 4]);
        assert_eq!(slabs[1].dims(), [5, 4, 4]);
        // shared face: last x-layer of slab 0 == first x-layer of slab 1
        let f0 = slabs[0].scalar("f").unwrap();
        let f1 = slabs[1].scalar("f").unwrap();
        for k in 0..4 {
            for j in 0..4 {
                let a = f0[slabs[0].vertex_index(4, j, k)];
                let b = f1[slabs[1].vertex_index(0, j, k)];
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn grid_slabs_cover_all_cells() {
        let g = labeled_grid([10, 3, 3]);
        for n in [1usize, 2, 3, 4] {
            let slabs = partition_grid_slabs(&g, n).unwrap();
            assert_eq!(slabs.len(), n);
            let total_cells: usize = slabs.iter().map(|s| s.num_cells()).sum();
            // slabs tile the cell range exactly when n <= cells
            if n <= 9 {
                assert_eq!(total_cells, g.num_cells(), "n={n}");
            }
        }
    }

    #[test]
    fn more_ranks_than_cells_still_valid() {
        let g = labeled_grid([2, 2, 2]);
        let slabs = partition_grid_slabs(&g, 5).unwrap();
        assert_eq!(slabs.len(), 5);
        for s in &slabs {
            assert!(s.num_vertices() > 0);
        }
    }
}
