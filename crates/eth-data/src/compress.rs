//! Lossy quantization compression for in-situ transport.
//!
//! The paper's introduction lists compression alongside in-situ methods
//! and data sampling as the techniques developed for extreme-scale
//! datasets; this module provides the data-reduction operator the
//! harness's internode coupling can apply before shipping blocks across
//! the interconnect.
//!
//! Scheme (simple, bounded-error, fast):
//! * positions — 16-bit fixed point per axis over the block bounds
//!   (error ≤ extent/65535 per axis),
//! * scalar attributes — 8-bit fixed point over the value range
//!   (error ≤ range/255),
//! * vector attributes — 8-bit per component over the component range,
//! * id attributes — kept verbatim (lossless; ids don't quantize).
//!
//! Grids compress their scalar fields the same way; topology is implicit.

use crate::dataset::DataObject;
use crate::error::{DataError, Result};
use crate::field::Attribute;
use crate::grid::UniformGrid;
use crate::points::PointCloud;
use crate::vec3::Vec3;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

const MAGIC: &[u8; 4] = b"EBC1";

/// A named block codec: the unit of choice for the wire format and the
/// spill format. `Quantize` is the bounded-error scheme this module
/// implements (`EBC1`); `Lossless` is the CRC-trailed binary format
/// ([`crate::io::binary`], `EBD2`) — bigger on the wire, but blocks
/// round-trip byte-identically, which is what staging spill requires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Codec {
    /// 16-bit positions / 8-bit attributes (lossy, ~2-4x smaller).
    Quantize,
    /// Full-precision binary encoding with a CRC-32 trailer.
    Lossless,
}

impl Codec {
    /// Encode one block with this codec. Both encodings are
    /// self-describing (distinct magics, `EBC1` vs `EBD2`).
    pub fn encode(&self, obj: &DataObject) -> Bytes {
        match self {
            Codec::Quantize => compress(obj),
            Codec::Lossless => crate::io::binary::encode(obj),
        }
    }

    /// Decode a payload produced by [`Codec::encode`] with the same codec.
    pub fn decode(&self, buf: Bytes) -> Result<DataObject> {
        match self {
            Codec::Quantize => decompress(buf),
            Codec::Lossless => crate::io::binary::decode(buf),
        }
    }

    /// Whether a block survives an encode/decode round trip bit-exactly.
    pub fn is_lossless(&self) -> bool {
        matches!(self, Codec::Lossless)
    }

    /// Stable name for metrics and logs.
    pub fn name(&self) -> &'static str {
        match self {
            Codec::Quantize => "quantize",
            Codec::Lossless => "lossless",
        }
    }
}

const KIND_POINTS: u8 = 1;
const KIND_GRID: u8 = 2;

const ATTR_SCALAR_Q8: u8 = 0;
const ATTR_VECTOR_Q8: u8 = 1;
const ATTR_ID_RAW: u8 = 2;

/// Quantize `v` into `[lo, hi]` with `levels` steps.
#[inline]
fn quantize(v: f32, lo: f32, hi: f32, levels: u32) -> u32 {
    if hi <= lo {
        return 0;
    }
    let t = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
    (t * (levels - 1) as f32 + 0.5) as u32
}

#[inline]
fn dequantize(q: u32, lo: f32, hi: f32, levels: u32) -> f32 {
    if levels <= 1 {
        return lo;
    }
    lo + (q as f32 / (levels - 1) as f32) * (hi - lo)
}

fn value_range(values: &[f32]) -> (f32, f32) {
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for &v in values {
        if v.is_finite() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if !lo.is_finite() {
        (0.0, 0.0)
    } else {
        (lo, hi)
    }
}

fn put_attr(buf: &mut BytesMut, name: &str, attr: &Attribute) {
    buf.put_u32_le(name.len() as u32);
    buf.put_slice(name.as_bytes());
    match attr {
        Attribute::Scalar(v) => {
            let (lo, hi) = value_range(v);
            buf.put_u8(ATTR_SCALAR_Q8);
            buf.put_u64_le(v.len() as u64);
            buf.put_f32_le(lo);
            buf.put_f32_le(hi);
            for &x in v {
                buf.put_u8(quantize(x, lo, hi, 256) as u8);
            }
        }
        Attribute::Vector(v) => {
            let mut lo = Vec3::splat(f32::INFINITY);
            let mut hi = Vec3::splat(f32::NEG_INFINITY);
            for &x in v {
                lo = lo.min(x);
                hi = hi.max(x);
            }
            if v.is_empty() {
                lo = Vec3::ZERO;
                hi = Vec3::ZERO;
            }
            buf.put_u8(ATTR_VECTOR_Q8);
            buf.put_u64_le(v.len() as u64);
            for c in [lo.x, lo.y, lo.z, hi.x, hi.y, hi.z] {
                buf.put_f32_le(c);
            }
            for &x in v {
                buf.put_u8(quantize(x.x, lo.x, hi.x, 256) as u8);
                buf.put_u8(quantize(x.y, lo.y, hi.y, 256) as u8);
                buf.put_u8(quantize(x.z, lo.z, hi.z, 256) as u8);
            }
        }
        Attribute::Id(v) => {
            buf.put_u8(ATTR_ID_RAW);
            buf.put_u64_le(v.len() as u64);
            for &x in v {
                buf.put_u64_le(x);
            }
        }
    }
}

fn need(buf: &Bytes, n: usize, what: &str) -> Result<()> {
    if buf.remaining() < n {
        Err(DataError::Format(format!("truncated compressed {what}")))
    } else {
        Ok(())
    }
}

fn get_attr(buf: &mut Bytes) -> Result<(String, Attribute)> {
    need(buf, 4, "attr name len")?;
    let len = buf.get_u32_le() as usize;
    need(buf, len, "attr name")?;
    let name_bytes = buf.split_to(len);
    let name = std::str::from_utf8(&name_bytes)
        .map_err(|_| DataError::Format("attr name not utf-8".into()))?
        .to_string();
    need(buf, 9, "attr header")?;
    let ty = buf.get_u8();
    let count = buf.get_u64_le() as usize;
    let attr = match ty {
        ATTR_SCALAR_Q8 => {
            need(buf, 8 + count, "scalar payload")?;
            let lo = buf.get_f32_le();
            let hi = buf.get_f32_le();
            let mut v = Vec::with_capacity(count);
            for _ in 0..count {
                v.push(dequantize(buf.get_u8() as u32, lo, hi, 256));
            }
            Attribute::Scalar(v)
        }
        ATTR_VECTOR_Q8 => {
            need(buf, 24 + count * 3, "vector payload")?;
            let lo = Vec3::new(buf.get_f32_le(), buf.get_f32_le(), buf.get_f32_le());
            let hi = Vec3::new(buf.get_f32_le(), buf.get_f32_le(), buf.get_f32_le());
            let mut v = Vec::with_capacity(count);
            for _ in 0..count {
                let x = dequantize(buf.get_u8() as u32, lo.x, hi.x, 256);
                let y = dequantize(buf.get_u8() as u32, lo.y, hi.y, 256);
                let z = dequantize(buf.get_u8() as u32, lo.z, hi.z, 256);
                v.push(Vec3::new(x, y, z));
            }
            Attribute::Vector(v)
        }
        ATTR_ID_RAW => {
            need(buf, count * 8, "id payload")?;
            let mut v = Vec::with_capacity(count);
            for _ in 0..count {
                v.push(buf.get_u64_le());
            }
            Attribute::Id(v)
        }
        other => return Err(DataError::Format(format!("unknown compressed attr {other}"))),
    };
    Ok((name, attr))
}

/// Compress a dataset for the wire. Positions get 16 bits/axis, scalars
/// 8 bits, vectors 8 bits/component; ids stay lossless.
pub fn compress(obj: &DataObject) -> Bytes {
    let mut buf = BytesMut::with_capacity(obj.payload_bytes() / 2 + 256);
    buf.put_slice(MAGIC);
    match obj {
        DataObject::Points(cloud) => {
            buf.put_u8(KIND_POINTS);
            let bounds = cloud.bounds();
            let (lo, hi) = if bounds.is_empty() {
                (Vec3::ZERO, Vec3::ZERO)
            } else {
                (bounds.min, bounds.max)
            };
            buf.put_u64_le(cloud.len() as u64);
            for c in [lo.x, lo.y, lo.z, hi.x, hi.y, hi.z] {
                buf.put_f32_le(c);
            }
            for &p in cloud.positions() {
                buf.put_u16_le(quantize(p.x, lo.x, hi.x, 65536) as u16);
                buf.put_u16_le(quantize(p.y, lo.y, hi.y, 65536) as u16);
                buf.put_u16_le(quantize(p.z, lo.z, hi.z, 65536) as u16);
            }
            buf.put_u32_le(cloud.attributes().len() as u32);
            for (name, attr) in cloud.attributes().iter() {
                put_attr(&mut buf, name, attr);
            }
        }
        DataObject::Grid(grid) => {
            buf.put_u8(KIND_GRID);
            for d in grid.dims() {
                buf.put_u64_le(d as u64);
            }
            for c in [
                grid.origin().x,
                grid.origin().y,
                grid.origin().z,
                grid.spacing().x,
                grid.spacing().y,
                grid.spacing().z,
            ] {
                buf.put_f32_le(c);
            }
            buf.put_u32_le(grid.attributes().len() as u32);
            for (name, attr) in grid.attributes().iter() {
                put_attr(&mut buf, name, attr);
            }
        }
    }
    buf.freeze()
}

/// Decompress a payload produced by [`compress`].
pub fn decompress(mut buf: Bytes) -> Result<DataObject> {
    need(&buf, 5, "header")?;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(DataError::Format("bad compressed magic".into()));
    }
    match buf.get_u8() {
        KIND_POINTS => {
            need(&buf, 8 + 24, "point header")?;
            let count = buf.get_u64_le() as usize;
            let lo = Vec3::new(buf.get_f32_le(), buf.get_f32_le(), buf.get_f32_le());
            let hi = Vec3::new(buf.get_f32_le(), buf.get_f32_le(), buf.get_f32_le());
            need(&buf, count * 6, "positions")?;
            let mut pos = Vec::with_capacity(count);
            for _ in 0..count {
                let x = dequantize(buf.get_u16_le() as u32, lo.x, hi.x, 65536);
                let y = dequantize(buf.get_u16_le() as u32, lo.y, hi.y, 65536);
                let z = dequantize(buf.get_u16_le() as u32, lo.z, hi.z, 65536);
                pos.push(Vec3::new(x, y, z));
            }
            let mut cloud = PointCloud::from_positions(pos);
            need(&buf, 4, "attr count")?;
            let n_attr = buf.get_u32_le();
            for _ in 0..n_attr {
                let (name, attr) = get_attr(&mut buf)?;
                cloud.set_attribute(&name, attr)?;
            }
            Ok(DataObject::Points(cloud))
        }
        KIND_GRID => {
            need(&buf, 24 + 24, "grid header")?;
            let dims = [
                buf.get_u64_le() as usize,
                buf.get_u64_le() as usize,
                buf.get_u64_le() as usize,
            ];
            let origin = Vec3::new(buf.get_f32_le(), buf.get_f32_le(), buf.get_f32_le());
            let spacing = Vec3::new(buf.get_f32_le(), buf.get_f32_le(), buf.get_f32_le());
            let mut grid = UniformGrid::new(dims, origin, spacing)?;
            need(&buf, 4, "attr count")?;
            let n_attr = buf.get_u32_le();
            for _ in 0..n_attr {
                let (name, attr) = get_attr(&mut buf)?;
                grid.set_attribute(&name, attr)?;
            }
            Ok(DataObject::Grid(grid))
        }
        other => Err(DataError::Format(format!("unknown compressed kind {other}"))),
    }
}

/// Compression ratio achieved for a dataset (raw payload / compressed).
pub fn ratio(obj: &DataObject) -> f64 {
    let raw = crate::io::binary::encode(obj).len() as f64;
    let packed = compress(obj).len() as f64;
    raw / packed.max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud(n: usize) -> PointCloud {
        let mut pos = Vec::with_capacity(n);
        let mut s = 7u64;
        let mut rnd = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) as f32
        };
        for _ in 0..n {
            pos.push(Vec3::new(rnd() * 10.0, rnd() * 4.0 - 2.0, rnd()));
        }
        let mut c = PointCloud::from_positions(pos);
        c.set_attribute(
            "density",
            Attribute::Scalar((0..n).map(|i| (i % 37) as f32 * 0.5).collect()),
        )
        .unwrap();
        c.set_attribute(
            "velocity",
            Attribute::Vector((0..n).map(|i| Vec3::splat((i % 11) as f32 - 5.0)).collect()),
        )
        .unwrap();
        c.set_attribute("id", Attribute::Id((0..n as u64).collect())).unwrap();
        c
    }

    #[test]
    fn roundtrip_error_bounds_hold() {
        let original = cloud(500);
        let obj = DataObject::Points(original.clone());
        let back = decompress(compress(&obj)).unwrap();
        let b = back.as_points().unwrap();
        assert_eq!(b.len(), original.len());
        let extent = original.bounds().extent();
        let tol = Vec3::new(extent.x, extent.y, extent.z) * (1.5 / 65535.0);
        for (p, q) in original.positions().iter().zip(b.positions()) {
            assert!((p.x - q.x).abs() <= tol.x);
            assert!((p.y - q.y).abs() <= tol.y);
            assert!((p.z - q.z).abs() <= tol.z);
        }
        // scalar within range/255
        let orig_s = original.scalar("density").unwrap();
        let back_s = b.scalar("density").unwrap();
        let range = 18.0f32;
        for (x, y) in orig_s.iter().zip(back_s) {
            assert!((x - y).abs() <= range * 1.5 / 255.0, "{x} vs {y}");
        }
        // ids lossless
        assert_eq!(
            original.attribute("id").unwrap().as_id().unwrap(),
            b.attribute("id").unwrap().as_id().unwrap()
        );
    }

    #[test]
    fn compression_actually_compresses() {
        let obj = DataObject::Points(cloud(2_000));
        let r = ratio(&obj);
        // raw: 12B pos + 4B scalar + 12B vector + 8B id = 36 B/particle;
        // packed: 6 + 1 + 3 + 8 = 18 B/particle -> ratio ~2
        assert!(r > 1.7, "ratio {r}");
    }

    #[test]
    fn grid_field_roundtrip() {
        let mut g = UniformGrid::new([6, 5, 4], Vec3::ZERO, Vec3::ONE).unwrap();
        let vals: Vec<f32> = (0..120).map(|i| (i as f32 * 0.37).sin() * 100.0).collect();
        g.set_attribute("t", Attribute::Scalar(vals.clone())).unwrap();
        let back = decompress(compress(&DataObject::Grid(g.clone()))).unwrap();
        let bg = back.as_grid().unwrap();
        assert_eq!(bg.dims(), g.dims());
        assert_eq!(bg.origin(), g.origin());
        let back_vals = bg.scalar("t").unwrap();
        for (a, b) in vals.iter().zip(back_vals) {
            assert!((a - b).abs() <= 200.0 * 1.5 / 255.0, "{a} vs {b}");
        }
        // a grid field compresses ~4x (f32 -> u8) once the payload
        // dwarfs the header
        let mut big = UniformGrid::new([16, 16, 16], Vec3::ZERO, Vec3::ONE).unwrap();
        big.set_attribute(
            "t",
            Attribute::Scalar((0..4096).map(|i| (i as f32 * 0.1).cos()).collect()),
        )
        .unwrap();
        assert!(ratio(&DataObject::Grid(big)) > 3.0);
    }

    #[test]
    fn degenerate_inputs_survive() {
        // empty cloud
        let empty = DataObject::Points(PointCloud::new());
        assert_eq!(decompress(compress(&empty)).unwrap().num_elements(), 0);
        // constant field (zero range)
        let flat = {
            let mut c = PointCloud::from_positions(vec![Vec3::ONE; 10]);
            c.set_attribute("k", Attribute::Scalar(vec![5.0; 10])).unwrap();
            DataObject::Points(c)
        };
        let back = decompress(compress(&flat)).unwrap();
        let b = back.as_points().unwrap();
        assert!(b.scalar("k").unwrap().iter().all(|&v| v == 5.0));
        assert!(b.positions().iter().all(|&p| (p - Vec3::ONE).length() < 1e-6));
    }

    #[test]
    fn lossless_codec_roundtrips_bit_exactly() {
        let obj = DataObject::Points(cloud(300));
        let back = Codec::Lossless.decode(Codec::Lossless.encode(&obj)).unwrap();
        let (a, b) = (obj.as_points().unwrap(), back.as_points().unwrap());
        assert_eq!(a.positions(), b.positions());
        assert_eq!(a.scalar("density").unwrap(), b.scalar("density").unwrap());
        assert!(Codec::Lossless.is_lossless());
        assert!(!Codec::Quantize.is_lossless());
        // quantize path through the enum matches the free functions
        let q = Codec::Quantize.encode(&obj);
        assert_eq!(q, compress(&obj));
        assert_eq!(
            Codec::Quantize.decode(q).unwrap().num_elements(),
            obj.num_elements()
        );
    }

    #[test]
    fn codec_roundtrips_through_serde() {
        for c in [Codec::Quantize, Codec::Lossless] {
            let json = serde_json::to_string(&c).unwrap();
            let back: Codec = serde_json::from_str(&json).unwrap();
            assert_eq!(back, c);
        }
    }

    #[test]
    fn corrupt_payloads_rejected() {
        let obj = DataObject::Points(cloud(20));
        let raw = compress(&obj);
        assert!(decompress(Bytes::from_static(b"nope")).is_err());
        let mut bad = raw.to_vec();
        bad[0] = b'X';
        assert!(decompress(Bytes::from(bad)).is_err());
        let truncated = raw.slice(0..raw.len() - 3);
        assert!(decompress(truncated).is_err());
    }
}
