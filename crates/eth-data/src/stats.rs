//! Summary statistics over scalar fields.
//!
//! Used by workload validation (the synthetic generators must produce fields
//! whose distributions look like science data), by the results tables, and
//! by tests.

use serde::{Deserialize, Serialize};

/// Single-pass summary of a scalar array.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    pub count: usize,
    pub min: f32,
    pub max: f32,
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
}

impl Summary {
    /// Compute a summary; `None` for an empty slice.
    pub fn of(values: &[f32]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let mut min = f32::INFINITY;
        let mut max = f32::NEG_INFINITY;
        // Welford's algorithm: numerically stable single pass.
        let mut mean = 0.0f64;
        let mut m2 = 0.0f64;
        for (i, &v) in values.iter().enumerate() {
            min = min.min(v);
            max = max.max(v);
            let d = v as f64 - mean;
            mean += d / (i + 1) as f64;
            m2 += d * (v as f64 - mean);
        }
        Some(Summary {
            count: values.len(),
            min,
            max,
            mean,
            std_dev: (m2 / values.len() as f64).sqrt(),
        })
    }

    /// Value range (max - min).
    pub fn range(&self) -> f32 {
        self.max - self.min
    }
}

/// Fixed-width histogram over `[lo, hi]` with `bins` buckets.
/// Values outside the range are clamped into the edge buckets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    pub lo: f32,
    pub hi: f32,
    pub counts: Vec<u64>,
}

impl Histogram {
    pub fn build(values: &[f32], lo: f32, hi: f32, bins: usize) -> Histogram {
        assert!(bins > 0 && hi > lo, "invalid histogram domain");
        let mut counts = vec![0u64; bins];
        let w = (hi - lo) / bins as f32;
        for &v in values {
            let b = (((v - lo) / w) as isize).clamp(0, bins as isize - 1) as usize;
            counts[b] += 1;
        }
        Histogram { lo, hi, counts }
    }

    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Index of the fullest bucket.
    pub fn mode_bin(&self) -> usize {
        self.counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Shannon entropy of the normalized histogram, in bits. A rough proxy
    /// for information content; used to validate that synthetic fields are
    /// not trivially flat ("simulated data does not generally contain enough
    /// complexity", Section III).
    pub fn entropy_bits(&self) -> f64 {
        let total = self.total() as f64;
        if total == 0.0 {
            return 0.0;
        }
        let mut h = 0.0;
        for &c in &self.counts {
            if c > 0 {
                let p = c as f64 / total;
                h -= p * p.log2();
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constants() {
        let s = Summary::of(&[5.0; 10]).unwrap();
        assert_eq!(s.count, 10);
        assert_eq!(s.min, 5.0);
        assert_eq!(s.max, 5.0);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!(s.std_dev < 1e-9);
        assert_eq!(s.range(), 0.0);
    }

    #[test]
    fn summary_of_known_values() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.mean, 2.5);
        // population std dev of 1..4 = sqrt(1.25)
        assert!((s.std_dev - 1.25f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn summary_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn histogram_counts_and_clamps() {
        let h = Histogram::build(&[0.1, 0.2, 0.6, -5.0, 99.0], 0.0, 1.0, 2);
        assert_eq!(h.total(), 5);
        assert_eq!(h.counts, vec![3, 2]); // -5 clamps low, 99 clamps high
        assert_eq!(h.mode_bin(), 0);
    }

    #[test]
    fn entropy_extremes() {
        // All mass in one bin: zero entropy.
        let h = Histogram::build(&[0.5; 100], 0.0, 1.0, 8);
        assert!(h.entropy_bits() < 1e-9);
        // Uniform over 8 bins: 3 bits.
        let vals: Vec<f32> = (0..800).map(|i| (i % 8) as f32 / 8.0 + 0.01).collect();
        let h = Histogram::build(&vals, 0.0, 1.0, 8);
        assert!((h.entropy_bits() - 3.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic]
    fn histogram_rejects_empty_domain() {
        Histogram::build(&[1.0], 1.0, 1.0, 4);
    }
}
