//! Budgeted block staging with least-recently-used spill to disk.
//!
//! The paper ran 0.25–1B particles across 400 nodes; a single box runs
//! out of RAM long before that. [`BlockStore`] is the byte-accounted
//! staging layer that closes the gap: staged blocks live in memory up to
//! a configurable budget, the least-recently-used block is spilled to a
//! compressed on-disk chunk when the budget would be exceeded, and a
//! spilled block streams back transparently on access. Spill chunks use
//! the **lossless** codec ([`crate::compress::Codec::Lossless`], the
//! CRC-trailed `EBD2` binary format) so a replay through the store is
//! byte-identical to an unbudgeted run — lossy quantization is a wire
//! choice, never a staging one.
//!
//! **Accounting invariant.** After every `insert`/`get`, the resident
//! byte total (measured as each block's exact encoded length) is ≤ the
//! budget. A block larger than the whole budget lives on disk and is
//! decoded straight through on access without being re-admitted.
//!
//! **Crash hygiene.** Chunks are written temp-then-rename, so a torn
//! spill is never read back (decode would refuse the CRC anyway). A
//! store pointed at an explicit spill directory sweeps stale
//! `block_*.ebd`/`*.tmp` chunks left by a dead process before reusing
//! the directory; anonymous stores use a fresh per-process temp
//! directory removed on drop.
//!
//! **Determinism.** Spill order is a pure function of the insert/access
//! sequence and the budget — no timers, no randomness — so a budgeted
//! campaign's pressure counters replay exactly.
//!
//! Process-wide gauges ([`process_resident_bytes`],
//! [`process_spilled_bytes`]) aggregate every live store so schedulers
//! (sweep admission, `eth serve` shedding) can observe memory pressure
//! without holding a reference to each store.

use crate::compress::Codec;
use crate::dataset::DataObject;
use crate::error::{DataError, Result};
use crate::io::binary;
use serde::{Deserialize, Serialize};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Bytes currently resident across every live [`BlockStore`] in this
/// process. The backpressure signal: sweep admission and service
/// shedding compare this against a policy's watermarks.
static PROCESS_RESIDENT: AtomicU64 = AtomicU64::new(0);
/// Total bytes ever spilled to disk across this process.
static PROCESS_SPILLED: AtomicU64 = AtomicU64::new(0);
/// Uniquifier for anonymous spill directories.
static STORE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Process-wide resident staged bytes (sum over live stores).
pub fn process_resident_bytes() -> u64 {
    PROCESS_RESIDENT.load(Ordering::Relaxed)
}

/// Process-wide cumulative spilled bytes.
pub fn process_spilled_bytes() -> u64 {
    PROCESS_SPILLED.load(Ordering::Relaxed)
}

/// Byte-accountant counters for one store. All sizes are exact encoded
/// lengths ([`binary::encoded_len`]), so they are deterministic for a
/// given insert/access sequence.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StagingStats {
    /// Bytes currently held in memory.
    pub resident_bytes: u64,
    /// High-water mark of `resident_bytes` over the store's life.
    pub peak_resident_bytes: u64,
    /// Blocks written to disk (cumulative; a block can spill repeatedly).
    pub spills: u64,
    /// Bytes written to spill chunks (cumulative, encoded size).
    pub spilled_bytes: u64,
    /// Blocks streamed back from disk.
    pub reloads: u64,
    /// Bytes streamed back from disk (cumulative, encoded size).
    pub reloaded_bytes: u64,
    /// Total `insert` calls.
    pub inserts: u64,
}

enum Slot {
    Vacant,
    Resident {
        obj: DataObject,
        bytes: u64,
        last_use: u64,
    },
    Spilled {
        path: PathBuf,
        bytes: u64,
    },
}

struct Inner {
    slots: Vec<Slot>,
    clock: u64,
    stats: StagingStats,
}

/// A bounded-memory staging area for indexed data blocks.
pub struct BlockStore {
    budget: Option<u64>,
    dir: PathBuf,
    owns_dir: bool,
    inner: Mutex<Inner>,
}

impl BlockStore {
    /// An unbounded in-memory store (no budget: nothing ever spills).
    pub fn unbounded() -> BlockStore {
        BlockStore::new(None, None)
    }

    /// A store holding at most `budget` encoded bytes resident, spilling
    /// to `spill_dir` (or a fresh per-process temp directory when
    /// `None`). An explicit directory is swept of stale chunks first —
    /// the torn-spill leftovers of a crashed predecessor.
    pub fn new(budget: Option<u64>, spill_dir: Option<PathBuf>) -> BlockStore {
        let (dir, owns_dir) = match spill_dir {
            Some(d) => {
                sweep_stale_chunks(&d);
                (d, false)
            }
            None => (
                std::env::temp_dir().join(format!(
                    "eth-spill-{}-{}",
                    std::process::id(),
                    STORE_SEQ.fetch_add(1, Ordering::Relaxed)
                )),
                true,
            ),
        };
        BlockStore {
            budget,
            dir,
            owns_dir,
            inner: Mutex::new(Inner {
                slots: Vec::new(),
                clock: 0,
                stats: StagingStats::default(),
            }),
        }
    }

    /// The configured memory budget, if any.
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// Stage block `index`. Least-recently-used blocks are spilled
    /// *before* admission, so the resident total never exceeds the
    /// budget, not even transiently; a block bigger than the whole
    /// budget goes straight to its spill chunk.
    pub fn insert(&self, index: usize, obj: DataObject) -> Result<()> {
        let bytes = binary::encoded_len(&obj) as u64;
        let mut inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if inner.slots.len() <= index {
            inner.slots.resize_with(index + 1, || Slot::Vacant);
        }
        self.evict_slot(&mut inner, index)?;
        inner.stats.inserts += 1;
        inner.clock += 1;
        let now = inner.clock;
        if self.budget.is_some_and(|b| bytes > b) {
            let path = self.write_chunk(index, &obj)?;
            inner.slots[index] = Slot::Spilled { path, bytes };
            inner.stats.spills += 1;
            inner.stats.spilled_bytes += bytes;
            PROCESS_SPILLED.fetch_add(bytes, Ordering::Relaxed);
            return Ok(());
        }
        self.make_room(&mut inner, bytes)?;
        inner.slots[index] = Slot::Resident { obj, bytes, last_use: now };
        inner.stats.resident_bytes += bytes;
        PROCESS_RESIDENT.fetch_add(bytes, Ordering::Relaxed);
        inner.stats.peak_resident_bytes =
            inner.stats.peak_resident_bytes.max(inner.stats.resident_bytes);
        Ok(())
    }

    /// Fetch a copy of block `index`, streaming it back from its spill
    /// chunk if it was evicted. Re-admission respects the budget: the
    /// reloaded block only stays resident if it fits after evicting
    /// colder blocks.
    pub fn get(&self, index: usize) -> Result<DataObject> {
        let mut inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.clock += 1;
        let now = inner.clock;
        match inner.slots.get_mut(index) {
            Some(Slot::Resident { obj, last_use, .. }) => {
                *last_use = now;
                Ok(obj.clone())
            }
            Some(Slot::Spilled { path, bytes }) => {
                let (path, bytes) = (path.clone(), *bytes);
                let raw = fs::read(&path)?;
                let obj = Codec::Lossless.decode(crate::Bytes::from(raw))?;
                inner.stats.reloads += 1;
                inner.stats.reloaded_bytes += bytes;
                // Re-admit only a block that can ever fit: a block
                // larger than the whole budget streams straight through.
                if self.budget.is_none_or(|b| bytes <= b) {
                    self.make_room(&mut inner, bytes)?;
                    let _ = fs::remove_file(&path);
                    inner.slots[index] = Slot::Resident {
                        obj: obj.clone(),
                        bytes,
                        last_use: now,
                    };
                    inner.stats.resident_bytes += bytes;
                    PROCESS_RESIDENT.fetch_add(bytes, Ordering::Relaxed);
                    inner.stats.peak_resident_bytes = inner
                        .stats
                        .peak_resident_bytes
                        .max(inner.stats.resident_bytes);
                }
                Ok(obj)
            }
            _ => Err(DataError::MissingAttribute(format!("staged block {index}"))),
        }
    }

    /// Number of slots (occupied or not).
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .slots
            .len()
    }

    /// Whether the store holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `index` holds a block (resident or spilled). Does not
    /// touch the LRU clock.
    pub fn contains(&self, index: usize) -> bool {
        matches!(
            self.inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .slots
                .get(index),
            Some(Slot::Resident { .. } | Slot::Spilled { .. })
        )
    }

    /// Snapshot of the byte-accountant counters.
    pub fn stats(&self) -> StagingStats {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .stats
    }

    /// Spill every resident block whose last use is older than the
    /// newest `keep_hot` accesses would allow, until the resident total
    /// is ≤ `target`. Used by the harness to shrink staging ahead of a
    /// memory-hungry phase.
    pub fn shrink_to(&self, target: u64) -> Result<()> {
        let mut inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        while inner.stats.resident_bytes > target {
            if !self.spill_coldest(&mut inner)? {
                break;
            }
        }
        Ok(())
    }

    /// Panic if the accounting invariant (resident ≤ budget) is broken.
    /// Cheap: reads one counter. Tests and the pressure bench call this
    /// after every phase.
    pub fn assert_within_budget(&self) {
        if let Some(budget) = self.budget {
            let resident = self.stats().resident_bytes;
            assert!(
                resident <= budget,
                "staging byte-accountant violated: {resident} resident > budget {budget}"
            );
        }
    }

    /// Spill least-recently-used blocks until `incoming` more bytes fit
    /// under the budget.
    fn make_room(&self, inner: &mut Inner, incoming: u64) -> Result<()> {
        let Some(budget) = self.budget else { return Ok(()) };
        while inner.stats.resident_bytes + incoming > budget {
            if !self.spill_coldest(inner)? {
                break;
            }
        }
        Ok(())
    }

    /// Spill the least-recently-used resident block. Returns false when
    /// nothing is left to spill.
    fn spill_coldest(&self, inner: &mut Inner) -> Result<bool> {
        let coldest = inner
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                Slot::Resident { last_use, .. } => Some((*last_use, i)),
                _ => None,
            })
            .min();
        let Some((_, index)) = coldest else { return Ok(false) };
        self.spill_index(inner, index)?;
        Ok(true)
    }

    fn spill_index(&self, inner: &mut Inner, index: usize) -> Result<()> {
        let Slot::Resident { obj, bytes, .. } =
            std::mem::replace(&mut inner.slots[index], Slot::Vacant)
        else {
            return Ok(());
        };
        let path = self.write_chunk(index, &obj)?;
        inner.slots[index] = Slot::Spilled { path, bytes };
        inner.stats.resident_bytes -= bytes;
        inner.stats.spills += 1;
        inner.stats.spilled_bytes += bytes;
        PROCESS_RESIDENT.fetch_sub(bytes, Ordering::Relaxed);
        PROCESS_SPILLED.fetch_add(bytes, Ordering::Relaxed);
        Ok(())
    }

    /// Write one block's spill chunk temp-then-rename and return its
    /// final path. A crash mid-write leaves only a `.tmp` orphan, which
    /// the stale-chunk sweep reclaims on resume.
    fn write_chunk(&self, index: usize, obj: &DataObject) -> Result<PathBuf> {
        fs::create_dir_all(&self.dir)?;
        let path = self.chunk_path(index);
        let tmp = path.with_extension("ebd.tmp");
        fs::write(&tmp, Codec::Lossless.encode(obj))?;
        fs::rename(&tmp, &path)?;
        Ok(path)
    }

    /// Drop any previous occupant of `index`, reclaiming its bytes or
    /// its chunk file.
    fn evict_slot(&self, inner: &mut Inner, index: usize) -> Result<()> {
        match std::mem::replace(&mut inner.slots[index], Slot::Vacant) {
            Slot::Resident { bytes, .. } => {
                inner.stats.resident_bytes -= bytes;
                PROCESS_RESIDENT.fetch_sub(bytes, Ordering::Relaxed);
            }
            Slot::Spilled { path, .. } => {
                let _ = fs::remove_file(path);
            }
            Slot::Vacant => {}
        }
        Ok(())
    }

    fn chunk_path(&self, index: usize) -> PathBuf {
        self.dir.join(format!("block_{index:05}.ebd"))
    }
}

impl Drop for BlockStore {
    fn drop(&mut self) {
        let inner = self.inner.get_mut().unwrap_or_else(std::sync::PoisonError::into_inner);
        PROCESS_RESIDENT.fetch_sub(inner.stats.resident_bytes, Ordering::Relaxed);
        for slot in &inner.slots {
            if let Slot::Spilled { path, .. } = slot {
                let _ = fs::remove_file(path);
            }
        }
        if self.owns_dir {
            let _ = fs::remove_dir(&self.dir);
        }
    }
}

/// Remove stale spill chunks (and torn temp files) from a reused spill
/// directory — the cleanup a resume owes a crashed predecessor.
fn sweep_stale_chunks(dir: &Path) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with("block_") && (name.ends_with(".ebd") || name.ends_with(".tmp")) {
            let _ = fs::remove_file(entry.path());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::Attribute;
    use crate::points::PointCloud;
    use crate::vec3::Vec3;
    use proptest::prelude::*;

    fn block(seed: u64, n: usize) -> DataObject {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut rnd = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 40) as f32 / 16_777_216.0
        };
        let pos: Vec<Vec3> = (0..n).map(|_| Vec3::new(rnd(), rnd(), rnd())).collect();
        let mut c = PointCloud::from_positions(pos);
        c.set_attribute("density", Attribute::Scalar((0..n).map(|i| i as f32 * 0.25).collect()))
            .unwrap();
        DataObject::Points(c)
    }

    fn positions(obj: &DataObject) -> Vec<Vec3> {
        obj.as_points().unwrap().positions().to_vec()
    }

    #[test]
    fn unbounded_store_never_spills() {
        let store = BlockStore::unbounded();
        for i in 0..4 {
            store.insert(i, block(i as u64, 100)).unwrap();
        }
        for i in 0..4 {
            assert_eq!(positions(&store.get(i).unwrap()), positions(&block(i as u64, 100)));
        }
        let stats = store.stats();
        assert_eq!(stats.spills, 0);
        assert_eq!(stats.reloads, 0);
        assert!(stats.resident_bytes > 0);
    }

    #[test]
    fn over_budget_blocks_spill_lru_and_stream_back_byte_identical() {
        let one = binary::encoded_len(&block(0, 200)) as u64;
        // room for two blocks: the third insert must spill the coldest
        let store = BlockStore::new(Some(one * 2 + one / 2), None);
        for i in 0..4 {
            store.insert(i, block(i as u64, 200)).unwrap();
            store.assert_within_budget();
        }
        let stats = store.stats();
        assert!(stats.spills >= 2, "spills: {}", stats.spills);
        assert!(stats.peak_resident_bytes <= one * 2 + one / 2);
        // every block — resident or spilled — reads back bit-exactly
        for i in 0..4 {
            let got = store.get(i).unwrap();
            let want = block(i as u64, 200);
            assert_eq!(positions(&got), positions(&want), "block {i}");
            assert_eq!(
                got.as_points().unwrap().scalar("density").unwrap(),
                want.as_points().unwrap().scalar("density").unwrap()
            );
            store.assert_within_budget();
        }
        assert!(store.stats().reloads >= 2);
    }

    #[test]
    fn block_larger_than_budget_streams_through_without_admission() {
        let big = block(7, 500);
        let bytes = binary::encoded_len(&big) as u64;
        let store = BlockStore::new(Some(bytes / 2), None);
        store.insert(0, big.clone()).unwrap();
        store.assert_within_budget();
        assert_eq!(store.stats().resident_bytes, 0, "oversized block must not stay resident");
        for _ in 0..2 {
            assert_eq!(positions(&store.get(0).unwrap()), positions(&big));
            store.assert_within_budget();
        }
    }

    #[test]
    fn process_gauges_track_stores_and_release_on_drop() {
        let before = process_resident_bytes();
        let store = BlockStore::unbounded();
        store.insert(0, block(1, 300)).unwrap();
        assert!(process_resident_bytes() > before);
        drop(store);
        assert_eq!(process_resident_bytes(), before);
    }

    #[test]
    fn explicit_spill_dir_is_swept_of_stale_chunks() {
        let dir = std::env::temp_dir().join(format!("eth-staging-sweep-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("block_00000.ebd"), b"stale garbage").unwrap();
        fs::write(dir.join("block_00001.ebd.tmp"), b"torn spill").unwrap();
        fs::write(dir.join("unrelated.txt"), b"keep me").unwrap();
        let store = BlockStore::new(Some(1), Some(dir.clone()));
        assert!(!dir.join("block_00000.ebd").exists(), "stale chunk must be GC'd");
        assert!(!dir.join("block_00001.ebd.tmp").exists(), "torn spill must be GC'd");
        assert!(dir.join("unrelated.txt").exists(), "non-chunk files are not ours");
        store.insert(0, block(3, 100)).unwrap();
        assert_eq!(positions(&store.get(0).unwrap()), positions(&block(3, 100)));
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reinserting_an_index_reclaims_the_old_occupant() {
        let store = BlockStore::unbounded();
        store.insert(0, block(1, 400)).unwrap();
        let after_first = store.stats().resident_bytes;
        store.insert(0, block(2, 400)).unwrap();
        assert_eq!(store.stats().resident_bytes, after_first);
        assert_eq!(positions(&store.get(0).unwrap()), positions(&block(2, 400)));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Any interleaving of stage -> spill -> reload under a shrinking
        /// budget yields byte-identical staged blocks, with the resident
        /// accountant never exceeding the budget in force.
        #[test]
        fn any_interleaving_under_shrinking_budget_is_byte_identical(
            ops in proptest::collection::vec((0usize..6, 0u8..3), 1..40),
            start_budget in 1u64..5,
        ) {
            let one = binary::encoded_len(&block(0, 150)) as u64;
            // budget shrinks as the op sequence progresses: generous ->
            // one block -> smaller than any block
            let mut budget = start_budget * one;
            let mut store = BlockStore::new(Some(budget), None);
            let mut staged: Vec<Option<u64>> = vec![None; 6];
            for (step, (index, op)) in ops.into_iter().enumerate() {
                match op {
                    0 => {
                        let seed = (step as u64) << 8 | index as u64;
                        store.insert(index, block(seed, 150)).unwrap();
                        staged[index] = Some(seed);
                    }
                    1 => {
                        if let Some(seed) = staged[index] {
                            let got = store.get(index).unwrap();
                            let want = block(seed, 150);
                            prop_assert_eq!(positions(&got), positions(&want));
                        }
                    }
                    _ => {
                        // shrink the budget and rebuild the store around
                        // the surviving blocks (a rescale under pressure)
                        budget = (budget / 2).max(1);
                        let next = BlockStore::new(Some(budget), None);
                        for (i, seed) in staged.iter().enumerate() {
                            if let Some(seed) = seed {
                                next.insert(i, store.get(i).unwrap()).unwrap();
                                prop_assert_eq!(
                                    positions(&next.get(i).unwrap()),
                                    positions(&block(*seed, 150))
                                );
                            }
                        }
                        store = next;
                    }
                }
                store.assert_within_budget();
            }
            // final sweep: everything staged reads back bit-exactly
            for (i, seed) in staged.iter().enumerate() {
                if let Some(seed) = seed {
                    prop_assert_eq!(
                        positions(&store.get(i).unwrap()),
                        positions(&block(*seed, 150))
                    );
                }
            }
        }
    }
}
