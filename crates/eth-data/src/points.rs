//! Point-cloud container — the particle-data class (HACC cosmology case).

use crate::bounds::Aabb;
use crate::error::{DataError, Result};
use crate::field::{Attribute, AttributeSet};
use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// A set of particles with positions and per-particle attributes.
///
/// This mirrors the HACC payload of the paper: each particle carries an id,
/// position, and velocity; the id and velocity live in [`PointCloud::attributes`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PointCloud {
    positions: Vec<Vec3>,
    attributes: AttributeSet,
}

impl PointCloud {
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from positions; attributes can be attached afterwards.
    pub fn from_positions(positions: Vec<Vec3>) -> Self {
        PointCloud {
            positions,
            attributes: AttributeSet::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.positions.len()
    }

    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    pub fn positions(&self) -> &[Vec3] {
        &self.positions
    }

    pub fn positions_mut(&mut self) -> &mut [Vec3] {
        &mut self.positions
    }

    pub fn attributes(&self) -> &AttributeSet {
        &self.attributes
    }

    /// Attach (or replace) a per-particle attribute; its length must equal
    /// the particle count.
    pub fn set_attribute(&mut self, name: &str, attr: Attribute) -> Result<()> {
        self.attributes.insert(name, attr, self.positions.len())
    }

    pub fn attribute(&self, name: &str) -> Option<&Attribute> {
        self.attributes.get(name)
    }

    /// Scalar attribute view with a typed error.
    pub fn scalar(&self, name: &str) -> Result<&[f32]> {
        self.attributes.require_scalar(name)
    }

    /// Tight bounding box over all particles (empty box when no particles).
    pub fn bounds(&self) -> Aabb {
        Aabb::from_points(&self.positions)
    }

    /// New cloud containing only the particles at `indices`, with all
    /// attributes gathered consistently.
    pub fn gather(&self, indices: &[usize]) -> Result<PointCloud> {
        if let Some(&bad) = indices.iter().find(|&&i| i >= self.positions.len()) {
            return Err(DataError::InvalidArgument(format!(
                "gather index {bad} out of range for {} points",
                self.positions.len()
            )));
        }
        Ok(PointCloud {
            positions: indices.iter().map(|&i| self.positions[i]).collect(),
            attributes: self.attributes.gather(indices),
        })
    }

    /// Append all particles of `other`; attribute sets must match.
    pub fn append(&mut self, other: &PointCloud) -> Result<()> {
        // Validate before touching positions so a failure leaves self intact.
        if self.attributes.len() != other.attributes.len() {
            return Err(DataError::InvalidArgument(
                "point clouds carry different attribute sets".into(),
            ));
        }
        self.attributes.append(&other.attributes)?;
        self.positions.extend_from_slice(&other.positions);
        Ok(())
    }

    /// Approximate in-memory footprint in bytes (positions + attributes).
    /// Drives the data-volume accounting of the coupling experiments.
    pub fn payload_bytes(&self) -> usize {
        let mut total = self.positions.len() * std::mem::size_of::<Vec3>();
        for (_, attr) in self.attributes.iter() {
            total += match attr {
                Attribute::Scalar(v) => v.len() * 4,
                Attribute::Vector(v) => v.len() * 12,
                Attribute::Id(v) => v.len() * 8,
            };
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud() -> PointCloud {
        let mut c = PointCloud::from_positions(vec![
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 2.0, 0.0),
            Vec3::new(0.0, 0.0, 3.0),
        ]);
        c.set_attribute("mass", Attribute::Scalar(vec![1.0, 2.0, 3.0, 4.0]))
            .unwrap();
        c.set_attribute("id", Attribute::Id(vec![0, 1, 2, 3])).unwrap();
        c
    }

    #[test]
    fn bounds_cover_particles() {
        let c = cloud();
        let b = c.bounds();
        assert_eq!(b.min, Vec3::ZERO);
        assert_eq!(b.max, Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn attribute_length_enforced() {
        let mut c = cloud();
        assert!(c.set_attribute("bad", Attribute::Scalar(vec![1.0])).is_err());
    }

    #[test]
    fn gather_keeps_attributes_aligned() {
        let c = cloud();
        let g = c.gather(&[3, 1]).unwrap();
        assert_eq!(g.len(), 2);
        assert_eq!(g.positions()[0], Vec3::new(0.0, 0.0, 3.0));
        assert_eq!(g.scalar("mass").unwrap(), &[4.0, 2.0]);
        assert_eq!(g.attribute("id").unwrap().as_id().unwrap(), &[3, 1]);
    }

    #[test]
    fn gather_rejects_out_of_range() {
        let c = cloud();
        assert!(c.gather(&[0, 99]).is_err());
    }

    #[test]
    fn append_merges_clouds() {
        let mut a = cloud();
        let b = cloud();
        a.append(&b).unwrap();
        assert_eq!(a.len(), 8);
        assert_eq!(a.scalar("mass").unwrap().len(), 8);
    }

    #[test]
    fn append_rejects_mismatched_attributes() {
        let mut a = cloud();
        let b = PointCloud::from_positions(vec![Vec3::ZERO]);
        assert!(a.append(&b).is_err());
        // failure left `a` untouched
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn payload_bytes_counts_everything() {
        let c = cloud();
        // 4 positions * 12 + 4 scalars * 4 + 4 ids * 8 = 48 + 16 + 32
        assert_eq!(c.payload_bytes(), 96);
    }

    #[test]
    fn empty_cloud_has_empty_bounds() {
        let c = PointCloud::new();
        assert!(c.is_empty());
        assert!(c.bounds().is_empty());
        assert_eq!(c.payload_bytes(), 0);
    }
}
