//! Axis-aligned bounding boxes.
//!
//! Bounding boxes drive spatial partitioning across ranks, BVH construction
//! in the raycaster, and camera framing in the renderers.

use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// An axis-aligned bounding box in world space.
///
/// The box is *empty* when `min > max` on any axis; [`Aabb::empty`] produces
/// the canonical empty box which absorbs nothing and expands correctly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb {
    pub min: Vec3,
    pub max: Vec3,
}

impl Aabb {
    /// The canonical empty box (`min = +inf`, `max = -inf`).
    pub fn empty() -> Self {
        Aabb {
            min: Vec3::splat(f32::INFINITY),
            max: Vec3::splat(f32::NEG_INFINITY),
        }
    }

    pub fn new(min: Vec3, max: Vec3) -> Self {
        Aabb { min, max }
    }

    /// Unit cube `[0,1]^3`.
    pub fn unit() -> Self {
        Aabb::new(Vec3::ZERO, Vec3::ONE)
    }

    /// Cube centered at the origin with the given half-extent.
    pub fn centered_cube(half: f32) -> Self {
        Aabb::new(Vec3::splat(-half), Vec3::splat(half))
    }

    /// Box tightly covering a set of points. Empty for an empty slice.
    pub fn from_points(points: &[Vec3]) -> Self {
        let mut b = Aabb::empty();
        for &p in points {
            b.expand_point(p);
        }
        b
    }

    /// True when the box contains no volume (some axis has `min > max`).
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y || self.min.z > self.max.z
    }

    /// Grow to include `p`.
    pub fn expand_point(&mut self, p: Vec3) {
        self.min = self.min.min(p);
        self.max = self.max.max(p);
    }

    /// Grow to include another box.
    pub fn expand_box(&mut self, o: &Aabb) {
        self.min = self.min.min(o.min);
        self.max = self.max.max(o.max);
    }

    /// Union of two boxes.
    pub fn union(&self, o: &Aabb) -> Aabb {
        let mut b = *self;
        b.expand_box(o);
        b
    }

    /// Pad the box by `margin` on every side.
    pub fn padded(&self, margin: f32) -> Aabb {
        Aabb::new(self.min - Vec3::splat(margin), self.max + Vec3::splat(margin))
    }

    /// Point membership (closed box: faces included).
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// Membership that is half-open on the max faces — used by partitioners
    /// so a point on an internal face belongs to exactly one block.
    pub fn contains_half_open(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x < self.max.x
            && p.y >= self.min.y
            && p.y < self.max.y
            && p.z >= self.min.z
            && p.z < self.max.z
    }

    /// True if the boxes overlap (closed comparison).
    pub fn intersects(&self, o: &Aabb) -> bool {
        self.min.x <= o.max.x
            && self.max.x >= o.min.x
            && self.min.y <= o.max.y
            && self.max.y >= o.min.y
            && self.min.z <= o.max.z
            && self.max.z >= o.min.z
    }

    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Edge lengths; zero vector for an empty box.
    pub fn extent(&self) -> Vec3 {
        if self.is_empty() {
            Vec3::ZERO
        } else {
            self.max - self.min
        }
    }

    /// Diagonal length; the renderers use this to frame cameras.
    pub fn diagonal(&self) -> f32 {
        self.extent().length()
    }

    /// Surface area (used by the BVH build heuristic). Zero for empty.
    pub fn surface_area(&self) -> f32 {
        let e = self.extent();
        2.0 * (e.x * e.y + e.y * e.z + e.z * e.x)
    }

    pub fn volume(&self) -> f32 {
        let e = self.extent();
        e.x * e.y * e.z
    }

    /// Axis along which the box is longest.
    pub fn longest_axis(&self) -> usize {
        self.extent().dominant_axis()
    }

    /// Split the box at `t in (0,1)` along `axis`, returning (low, high).
    pub fn split(&self, axis: usize, t: f32) -> (Aabb, Aabb) {
        debug_assert!((0.0..=1.0).contains(&t));
        let mut cut = self.min;
        let lo = self.min[axis];
        let hi = self.max[axis];
        let c = lo + (hi - lo) * t;
        match axis {
            0 => cut.x = c,
            1 => cut.y = c,
            _ => cut.z = c,
        }
        let mut low = *self;
        let mut high = *self;
        match axis {
            0 => {
                low.max.x = c;
                high.min.x = c;
            }
            1 => {
                low.max.y = c;
                high.min.y = c;
            }
            _ => {
                low.max.z = c;
                high.min.z = c;
            }
        }
        let _ = cut;
        (low, high)
    }

    /// Parametric ray/box intersection. Returns the `(t_near, t_far)`
    /// interval clipped to `[t_min, t_max]`, or `None` if the ray misses.
    pub fn ray_intersect(
        &self,
        origin: Vec3,
        inv_dir: Vec3,
        t_min: f32,
        t_max: f32,
    ) -> Option<(f32, f32)> {
        let mut t0 = t_min;
        let mut t1 = t_max;
        for axis in 0..3 {
            let inv = inv_dir[axis];
            let mut near = (self.min[axis] - origin[axis]) * inv;
            let mut far = (self.max[axis] - origin[axis]) * inv;
            if near > far {
                std::mem::swap(&mut near, &mut far);
            }
            t0 = t0.max(near);
            t1 = t1.min(far);
            if t0 > t1 {
                return None;
            }
        }
        Some((t0, t1))
    }
}

impl Default for Aabb {
    fn default() -> Self {
        Aabb::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_box_absorbs_nothing() {
        let e = Aabb::empty();
        assert!(e.is_empty());
        assert_eq!(e.extent(), Vec3::ZERO);
        assert_eq!(e.volume(), 0.0);
        let u = e.union(&Aabb::unit());
        assert_eq!(u, Aabb::unit());
    }

    #[test]
    fn from_points_covers_all() {
        let pts = [
            Vec3::new(0.0, 1.0, 2.0),
            Vec3::new(-1.0, 4.0, 0.5),
            Vec3::new(3.0, -2.0, 1.0),
        ];
        let b = Aabb::from_points(&pts);
        for p in pts {
            assert!(b.contains(p));
        }
        assert_eq!(b.min, Vec3::new(-1.0, -2.0, 0.5));
        assert_eq!(b.max, Vec3::new(3.0, 4.0, 2.0));
    }

    #[test]
    fn contains_half_open_excludes_max_face() {
        let b = Aabb::unit();
        assert!(b.contains_half_open(Vec3::ZERO));
        assert!(!b.contains_half_open(Vec3::ONE));
        assert!(b.contains(Vec3::ONE));
    }

    #[test]
    fn split_partitions_volume() {
        let b = Aabb::unit();
        let (lo, hi) = b.split(0, 0.25);
        assert!((lo.volume() - 0.25).abs() < 1e-6);
        assert!((hi.volume() - 0.75).abs() < 1e-6);
        assert_eq!(lo.union(&hi), b);
    }

    #[test]
    fn intersects_detects_overlap_and_miss() {
        let a = Aabb::unit();
        let b = Aabb::new(Vec3::splat(0.5), Vec3::splat(1.5));
        let c = Aabb::new(Vec3::splat(2.0), Vec3::splat(3.0));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        // touching faces count as intersecting
        let d = Aabb::new(Vec3::new(1.0, 0.0, 0.0), Vec3::new(2.0, 1.0, 1.0));
        assert!(a.intersects(&d));
    }

    #[test]
    fn ray_hits_unit_box() {
        let b = Aabb::unit();
        let origin = Vec3::new(0.5, 0.5, -1.0);
        let dir = Vec3::new(0.0, 0.0, 1.0);
        let inv = Vec3::new(1.0 / dir.x, 1.0 / dir.y, 1.0 / dir.z);
        let (t0, t1) = b.ray_intersect(origin, inv, 0.0, f32::MAX).unwrap();
        assert!((t0 - 1.0).abs() < 1e-6);
        assert!((t1 - 2.0).abs() < 1e-6);
    }

    #[test]
    fn ray_misses_box() {
        let b = Aabb::unit();
        let origin = Vec3::new(2.0, 2.0, -1.0);
        let dir = Vec3::new(0.0, 0.0, 1.0);
        let inv = Vec3::new(1.0 / dir.x, 1.0 / dir.y, 1.0 / dir.z);
        assert!(b.ray_intersect(origin, inv, 0.0, f32::MAX).is_none());
    }

    #[test]
    fn surface_area_and_longest_axis() {
        let b = Aabb::new(Vec3::ZERO, Vec3::new(2.0, 1.0, 1.0));
        assert!((b.surface_area() - 10.0).abs() < 1e-6);
        assert_eq!(b.longest_axis(), 0);
    }
}
