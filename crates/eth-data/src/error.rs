//! Error type shared by the data-model crate.

use std::fmt;

/// Errors produced by data-model operations (IO, format parsing,
/// shape mismatches between containers and attribute arrays).
#[derive(Debug)]
pub enum DataError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// A file did not conform to the expected format.
    Format(String),
    /// An attribute array's length does not match its container.
    ShapeMismatch { expected: usize, got: usize, name: String },
    /// A named attribute was not found.
    MissingAttribute(String),
    /// A parameter was outside its legal domain.
    InvalidArgument(String),
    /// Data failed an integrity (checksum) verification: the bytes were
    /// framed correctly but do not match the checksum they carry.
    Corrupt(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Io(e) => write!(f, "io error: {e}"),
            DataError::Format(m) => write!(f, "format error: {m}"),
            DataError::ShapeMismatch { expected, got, name } => write!(
                f,
                "attribute '{name}' has {got} values but the container holds {expected}"
            ),
            DataError::MissingAttribute(n) => write!(f, "missing attribute '{n}'"),
            DataError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            DataError::Corrupt(m) => write!(f, "corrupt data: {m}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, DataError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = DataError::ShapeMismatch {
            expected: 10,
            got: 7,
            name: "density".into(),
        };
        let s = e.to_string();
        assert!(s.contains("density"));
        assert!(s.contains("10"));
        assert!(s.contains('7'));
        assert!(DataError::MissingAttribute("t".into()).to_string().contains("'t'"));
    }

    #[test]
    fn io_error_converts_and_sources() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: DataError = io.into();
        assert!(matches!(e, DataError::Io(_)));
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
