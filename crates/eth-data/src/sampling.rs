//! Spatial sampling — the down-sampling operator studied in the paper.
//!
//! "Spatial sampling is explored which operates by selecting a subset of
//! points (down sampling) from the original dataset based on some given
//! distribution. We vary the sampling ratio and study how the metrics
//! included in this study change." (Section IV-B)
//!
//! Two distributions are provided:
//! * [`SamplingMethod::Random`] — uniform Bernoulli-style selection with an
//!   exact target count (a deterministic partial Fisher–Yates draw),
//! * [`SamplingMethod::Stratified`] — the domain is divided into a coarse
//!   lattice and the per-cell budget is drawn per stratum, preserving the
//!   large-scale density structure (important for halo visibility).
//!
//! Grids are sampled by masking vertices to a background value — the grid
//! topology is preserved (which is why sampling does *not* reduce traversal
//! occupancy, reproducing the paper's Figure 14 power result).

use crate::error::{DataError, Result};
use crate::grid::UniformGrid;
use crate::points::PointCloud;
use crate::field::Attribute;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Which spatial-sampling distribution to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SamplingMethod {
    /// Uniform random subset of exactly `ratio * N` points.
    Random,
    /// Per-stratum uniform sampling over a `strata^3` lattice.
    Stratified { strata: usize },
}

/// Validated sampling configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplingSpec {
    /// Fraction of points kept, in `(0, 1]`. 1.0 is the unsampled baseline.
    pub ratio: f64,
    pub method: SamplingMethod,
    /// RNG seed so experiments are reproducible run-to-run.
    pub seed: u64,
}

impl SamplingSpec {
    pub fn new(ratio: f64, method: SamplingMethod, seed: u64) -> Result<Self> {
        if !(ratio > 0.0 && ratio <= 1.0) {
            return Err(DataError::InvalidArgument(format!(
                "sampling ratio must be in (0, 1], got {ratio}"
            )));
        }
        Ok(SamplingSpec { ratio, method, seed })
    }

    /// The unsampled baseline (identity).
    pub fn full() -> Self {
        SamplingSpec {
            ratio: 1.0,
            method: SamplingMethod::Random,
            seed: 0,
        }
    }

    /// Is this the identity operator?
    pub fn is_identity(&self) -> bool {
        self.ratio >= 1.0
    }
}

/// Select `k` indices uniformly without replacement from `0..n`
/// (deterministic given the rng): partial Fisher–Yates.
fn draw_indices(n: usize, k: usize, rng: &mut StdRng) -> Vec<usize> {
    let k = k.min(n);
    let mut pool: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.random_range(i..n);
        pool.swap(i, j);
    }
    let mut picked = pool[..k].to_vec();
    picked.sort_unstable();
    picked
}

/// Apply spatial sampling to a point cloud, returning the sampled cloud.
///
/// The output is deterministic in `(spec.seed, cloud contents)` and the kept
/// indices are in ascending order, so attribute alignment is stable.
pub fn sample_points(cloud: &PointCloud, spec: &SamplingSpec) -> Result<PointCloud> {
    if spec.is_identity() {
        return Ok(cloud.clone());
    }
    let n = cloud.len();
    let target = ((n as f64) * spec.ratio).round() as usize;
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let indices = match spec.method {
        SamplingMethod::Random => draw_indices(n, target, &mut rng),
        SamplingMethod::Stratified { strata } => {
            if strata == 0 {
                return Err(DataError::InvalidArgument("strata must be > 0".into()));
            }
            stratified_indices(cloud, spec.ratio, strata, &mut rng)
        }
    };
    cloud.gather(&indices)
}

fn stratified_indices(
    cloud: &PointCloud,
    ratio: f64,
    strata: usize,
    rng: &mut StdRng,
) -> Vec<usize> {
    let bounds = cloud.bounds();
    if bounds.is_empty() {
        return Vec::new();
    }
    let ext = bounds.extent();
    let cell = |p: crate::vec3::Vec3| -> usize {
        let f = |v: f32, lo: f32, e: f32| -> usize {
            if e <= 0.0 {
                0
            } else {
                (((v - lo) / e * strata as f32) as usize).min(strata - 1)
            }
        };
        let i = f(p.x, bounds.min.x, ext.x);
        let j = f(p.y, bounds.min.y, ext.y);
        let k = f(p.z, bounds.min.z, ext.z);
        (k * strata + j) * strata + i
    };
    // Bucket point indices by stratum.
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); strata * strata * strata];
    for (i, &p) in cloud.positions().iter().enumerate() {
        buckets[cell(p)].push(i);
    }
    let mut kept = Vec::new();
    for bucket in buckets {
        if bucket.is_empty() {
            continue;
        }
        let want = ((bucket.len() as f64) * ratio).round() as usize;
        let picks = draw_indices(bucket.len(), want, rng);
        kept.extend(picks.into_iter().map(|local| bucket[local]));
    }
    kept.sort_unstable();
    kept
}

/// Apply spatial sampling to a grid scalar field by masking de-selected
/// vertices to `background`. Topology (and therefore traversal cost in the
/// renderers) is unchanged; only the information content drops.
pub fn sample_grid_field(
    grid: &UniformGrid,
    field: &str,
    spec: &SamplingSpec,
    background: f32,
) -> Result<UniformGrid> {
    if spec.is_identity() {
        return Ok(grid.clone());
    }
    let values = grid.scalar(field)?;
    let n = values.len();
    let target = ((n as f64) * spec.ratio).round() as usize;
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let keep = draw_indices(n, target, &mut rng);
    let mut mask = vec![false; n];
    for &i in &keep {
        mask[i] = true;
    }
    let sampled: Vec<f32> = values
        .iter()
        .zip(&mask)
        .map(|(&v, &m)| if m { v } else { background })
        .collect();
    let mut out = grid.clone();
    out.set_attribute(field, Attribute::Scalar(sampled))?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec3::Vec3;

    fn grid_cloud(n_side: usize) -> PointCloud {
        let mut pos = Vec::new();
        for k in 0..n_side {
            for j in 0..n_side {
                for i in 0..n_side {
                    pos.push(Vec3::new(i as f32, j as f32, k as f32));
                }
            }
        }
        let n = pos.len();
        let mut c = PointCloud::from_positions(pos);
        c.set_attribute("id", Attribute::Id((0..n as u64).collect()))
            .unwrap();
        c
    }

    #[test]
    fn ratio_validation() {
        assert!(SamplingSpec::new(0.0, SamplingMethod::Random, 1).is_err());
        assert!(SamplingSpec::new(1.5, SamplingMethod::Random, 1).is_err());
        assert!(SamplingSpec::new(1.0, SamplingMethod::Random, 1).is_ok());
    }

    #[test]
    fn identity_sampling_is_noop() {
        let c = grid_cloud(4);
        let s = sample_points(&c, &SamplingSpec::full()).unwrap();
        assert_eq!(s, c);
    }

    #[test]
    fn random_sampling_hits_exact_count() {
        let c = grid_cloud(8); // 512 points
        for ratio in [0.75, 0.5, 0.25] {
            let spec = SamplingSpec::new(ratio, SamplingMethod::Random, 42).unwrap();
            let s = sample_points(&c, &spec).unwrap();
            assert_eq!(s.len(), (512.0 * ratio).round() as usize);
        }
    }

    #[test]
    fn sampling_is_deterministic_and_a_subset() {
        let c = grid_cloud(6);
        let spec = SamplingSpec::new(0.5, SamplingMethod::Random, 9).unwrap();
        let a = sample_points(&c, &spec).unwrap();
        let b = sample_points(&c, &spec).unwrap();
        assert_eq!(a, b);
        // kept ids are a subset of the originals and strictly increasing
        let ids = a.attribute("id").unwrap().as_id().unwrap();
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
        assert!(ids.iter().all(|&id| (id as usize) < c.len()));
    }

    #[test]
    fn different_seeds_differ() {
        let c = grid_cloud(6);
        let s1 = sample_points(
            &c,
            &SamplingSpec::new(0.5, SamplingMethod::Random, 1).unwrap(),
        )
        .unwrap();
        let s2 = sample_points(
            &c,
            &SamplingSpec::new(0.5, SamplingMethod::Random, 2).unwrap(),
        )
        .unwrap();
        assert_ne!(s1, s2);
    }

    #[test]
    fn stratified_preserves_density_structure() {
        // Two clusters of very different density; stratified sampling must
        // keep their point-count ratio approximately intact.
        let mut pos = Vec::new();
        for i in 0..900 {
            let t = i as f32 * 0.001;
            pos.push(Vec3::new(t.sin() * 0.1, t.cos() * 0.1, (i % 10) as f32 * 0.01));
        }
        for i in 0..100 {
            let t = i as f32 * 0.01;
            pos.push(Vec3::new(5.0 + t.sin() * 0.1, 5.0 + t.cos() * 0.1, 5.0));
        }
        let n = pos.len();
        let mut c = PointCloud::from_positions(pos);
        c.set_attribute("id", Attribute::Id((0..n as u64).collect()))
            .unwrap();
        let spec =
            SamplingSpec::new(0.5, SamplingMethod::Stratified { strata: 4 }, 3).unwrap();
        let s = sample_points(&c, &spec).unwrap();
        // dense cluster near origin should hold ~90% of sampled points
        let near_origin = s
            .positions()
            .iter()
            .filter(|p| p.length() < 1.0)
            .count() as f64;
        let frac = near_origin / s.len() as f64;
        assert!((0.8..=0.98).contains(&frac), "dense fraction {frac}");
        assert!((s.len() as f64 - 500.0).abs() <= 5.0, "len {}", s.len());
    }

    #[test]
    fn grid_field_sampling_masks_but_keeps_topology() {
        let mut g = UniformGrid::new([4, 4, 4], Vec3::ZERO, Vec3::ONE).unwrap();
        g.set_attribute("t", Attribute::Scalar(vec![10.0; 64])).unwrap();
        let spec = SamplingSpec::new(0.25, SamplingMethod::Random, 5).unwrap();
        let s = sample_grid_field(&g, "t", &spec, 0.0).unwrap();
        assert_eq!(s.dims(), g.dims());
        let vals = s.scalar("t").unwrap();
        let kept = vals.iter().filter(|&&v| v == 10.0).count();
        assert_eq!(kept, 16);
        let masked = vals.iter().filter(|&&v| v == 0.0).count();
        assert_eq!(masked, 48);
    }

    #[test]
    fn draw_indices_edge_cases() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(draw_indices(0, 5, &mut rng).is_empty());
        assert_eq!(draw_indices(5, 0, &mut rng).len(), 0);
        let all = draw_indices(5, 5, &mut rng);
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
        let over = draw_indices(3, 10, &mut rng);
        assert_eq!(over.len(), 3);
    }
}
