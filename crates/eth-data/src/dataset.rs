//! The polymorphic dataset handed across the in-situ interface.

use crate::bounds::Aabb;
use crate::grid::UniformGrid;
use crate::points::PointCloud;
use serde::{Deserialize, Serialize};

/// Any dataset ETH can move through a pipeline.
///
/// The paper evaluates exactly two data classes — particle data (HACC) and
/// structured-grid data (xRAGE) — and notes unstructured grids as the main
/// extension point; adding a variant here is that extension point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DataObject {
    Points(PointCloud),
    Grid(UniformGrid),
}

impl DataObject {
    /// Number of fundamental elements (particles or grid vertices).
    pub fn num_elements(&self) -> usize {
        match self {
            DataObject::Points(p) => p.len(),
            DataObject::Grid(g) => g.num_vertices(),
        }
    }

    /// World-space bounds.
    pub fn bounds(&self) -> Aabb {
        match self {
            DataObject::Points(p) => p.bounds(),
            DataObject::Grid(g) => g.bounds(),
        }
    }

    /// Approximate payload size in bytes — what would move over the
    /// interconnect under internode coupling.
    pub fn payload_bytes(&self) -> usize {
        match self {
            DataObject::Points(p) => p.payload_bytes(),
            DataObject::Grid(g) => g.payload_bytes(),
        }
    }

    /// Short human-readable kind tag for logs and results tables.
    pub fn kind(&self) -> &'static str {
        match self {
            DataObject::Points(_) => "points",
            DataObject::Grid(_) => "grid",
        }
    }

    pub fn as_points(&self) -> Option<&PointCloud> {
        match self {
            DataObject::Points(p) => Some(p),
            _ => None,
        }
    }

    pub fn as_grid(&self) -> Option<&UniformGrid> {
        match self {
            DataObject::Grid(g) => Some(g),
            _ => None,
        }
    }
}

impl From<PointCloud> for DataObject {
    fn from(p: PointCloud) -> Self {
        DataObject::Points(p)
    }
}

impl From<UniformGrid> for DataObject {
    fn from(g: UniformGrid) -> Self {
        DataObject::Grid(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec3::Vec3;

    #[test]
    fn dispatch_over_variants() {
        let p: DataObject = PointCloud::from_positions(vec![Vec3::ZERO, Vec3::ONE]).into();
        assert_eq!(p.num_elements(), 2);
        assert_eq!(p.kind(), "points");
        assert!(p.as_points().is_some());
        assert!(p.as_grid().is_none());

        let g: DataObject = UniformGrid::new([2, 2, 2], Vec3::ZERO, Vec3::ONE)
            .unwrap()
            .into();
        assert_eq!(g.num_elements(), 8);
        assert_eq!(g.kind(), "grid");
        assert!(g.as_grid().is_some());
        assert_eq!(g.bounds().max, Vec3::ONE);
    }
}
