//! Minimal 3-component vector used throughout the harness.
//!
//! A deliberate non-goal is a full linear-algebra library: the renderers and
//! data model only need component-wise arithmetic, dot/cross products, and
//! normalization, so that is all that lives here.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Div, Index, Mul, Neg, Sub, SubAssign};

/// A 3-component `f32` vector (positions, directions, velocities, colors).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    pub x: f32,
    pub y: f32,
    pub z: f32,
}

impl Vec3 {
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };
    pub const ONE: Vec3 = Vec3 { x: 1.0, y: 1.0, z: 1.0 };

    #[inline]
    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        Vec3 { x, y, z }
    }

    /// All three components set to `v`.
    #[inline]
    pub const fn splat(v: f32) -> Self {
        Vec3::new(v, v, v)
    }

    #[inline]
    pub fn dot(self, o: Vec3) -> f32 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    #[inline]
    pub fn length_squared(self) -> f32 {
        self.dot(self)
    }

    #[inline]
    pub fn length(self) -> f32 {
        self.length_squared().sqrt()
    }

    /// Unit vector in the same direction. Returns `Vec3::ZERO` for a
    /// zero-length input rather than producing NaNs.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let len = self.length();
        if len > 0.0 {
            self / len
        } else {
            Vec3::ZERO
        }
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.min(o.x), self.y.min(o.y), self.z.min(o.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.max(o.x), self.y.max(o.y), self.z.max(o.z))
    }

    /// Component-wise multiply.
    #[inline]
    pub fn mul_elem(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x * o.x, self.y * o.y, self.z * o.z)
    }

    /// Linear interpolation: `self` at `t == 0`, `o` at `t == 1`.
    #[inline]
    pub fn lerp(self, o: Vec3, t: f32) -> Vec3 {
        self + (o - self) * t
    }

    /// Largest component value.
    #[inline]
    pub fn max_component(self) -> f32 {
        self.x.max(self.y).max(self.z)
    }

    /// Smallest component value.
    #[inline]
    pub fn min_component(self) -> f32 {
        self.x.min(self.y).min(self.z)
    }

    /// Index of the component with the greatest absolute value (0, 1 or 2).
    #[inline]
    pub fn dominant_axis(self) -> usize {
        let a = Vec3::new(self.x.abs(), self.y.abs(), self.z.abs());
        if a.x >= a.y && a.x >= a.z {
            0
        } else if a.y >= a.z {
            1
        } else {
            2
        }
    }

    /// True if every component is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    #[inline]
    pub fn to_array(self) -> [f32; 3] {
        [self.x, self.y, self.z]
    }

    #[inline]
    pub fn from_array(a: [f32; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, o: Vec3) {
        *self = *self - o;
    }
}

impl Mul<f32> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f32) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f32 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl Div<f32> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f32) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Index<usize> for Vec3 {
    type Output = f32;
    #[inline]
    fn index(&self, i: usize) -> &f32 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index {i} out of range"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_basics() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn dot_and_cross() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        let z = Vec3::new(0.0, 0.0, 1.0);
        assert_eq!(x.dot(y), 0.0);
        assert_eq!(x.cross(y), z);
        assert_eq!(y.cross(z), x);
        assert_eq!(z.cross(x), y);
        // anti-commutative
        assert_eq!(x.cross(y), -(y.cross(x)));
    }

    #[test]
    fn length_and_normalize() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.length(), 5.0);
        let n = v.normalized();
        assert!((n.length() - 1.0).abs() < 1e-6);
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
    }

    #[test]
    fn min_max_lerp() {
        let a = Vec3::new(1.0, 5.0, -2.0);
        let b = Vec3::new(2.0, 3.0, 0.0);
        assert_eq!(a.min(b), Vec3::new(1.0, 3.0, -2.0));
        assert_eq!(a.max(b), Vec3::new(2.0, 5.0, 0.0));
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        let mid = a.lerp(b, 0.5);
        assert_eq!(mid, Vec3::new(1.5, 4.0, -1.0));
    }

    #[test]
    fn dominant_axis_picks_largest_abs() {
        assert_eq!(Vec3::new(-5.0, 1.0, 2.0).dominant_axis(), 0);
        assert_eq!(Vec3::new(0.0, -3.0, 2.0).dominant_axis(), 1);
        assert_eq!(Vec3::new(0.0, 1.0, -2.0).dominant_axis(), 2);
    }

    #[test]
    fn indexing() {
        let v = Vec3::new(7.0, 8.0, 9.0);
        assert_eq!(v[0], 7.0);
        assert_eq!(v[1], 8.0);
        assert_eq!(v[2], 9.0);
    }

    #[test]
    #[should_panic]
    fn index_out_of_range_panics() {
        let _ = Vec3::ZERO[3];
    }
}
