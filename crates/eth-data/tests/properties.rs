//! Property-based tests for the data-model substrate.

use eth_data::compress;
use eth_data::field::Attribute;
use eth_data::io::{binary, vtk_legacy};
use eth_data::partition::{decompose_domain, partition_grid_slabs, partition_points};
use eth_data::sampling::{sample_points, SamplingMethod, SamplingSpec};
use eth_data::{Aabb, DataError, DataObject, PointCloud, UniformGrid, Vec3};
use proptest::prelude::*;

fn arb_vec3(range: f32) -> impl Strategy<Value = Vec3> {
    (
        -range..range,
        -range..range,
        -range..range,
    )
        .prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn arb_cloud(max_n: usize) -> impl Strategy<Value = PointCloud> {
    prop::collection::vec(arb_vec3(100.0), 1..max_n).prop_map(|pos| {
        let n = pos.len();
        let mut c = PointCloud::from_positions(pos);
        c.set_attribute("id", Attribute::Id((0..n as u64).collect()))
            .unwrap();
        c.set_attribute(
            "w",
            Attribute::Scalar((0..n).map(|i| i as f32 * 0.5).collect()),
        )
        .unwrap();
        c
    })
}

proptest! {
    #[test]
    fn binary_roundtrip_points(cloud in arb_cloud(200)) {
        let obj = DataObject::Points(cloud);
        let back = binary::decode(binary::encode(&obj)).unwrap();
        prop_assert_eq!(obj, back);
    }

    #[test]
    fn binary_roundtrip_grid(
        nx in 1usize..6, ny in 1usize..6, nz in 1usize..6,
        seed in 0u64..1000,
    ) {
        let mut g = UniformGrid::new([nx, ny, nz], Vec3::ZERO, Vec3::ONE).unwrap();
        let n = g.num_vertices();
        let vals: Vec<f32> = (0..n).map(|i| ((i as u64).wrapping_mul(seed + 1) % 1000) as f32).collect();
        g.set_attribute("f", Attribute::Scalar(vals)).unwrap();
        let obj = DataObject::Grid(g);
        let back = binary::decode(binary::encode(&obj)).unwrap();
        prop_assert_eq!(obj, back);
    }

    #[test]
    fn vtk_roundtrip_points(cloud in arb_cloud(60)) {
        // Legacy VTK stores ids as f32; restrict to the exactly-representable
        // range (ids < 200 here, far below 2^24).
        let obj = DataObject::Points(cloud.clone());
        let text = vtk_legacy::to_string(&obj);
        let back = vtk_legacy::from_str(&text).unwrap();
        let p = back.as_points().unwrap();
        prop_assert_eq!(p.len(), cloud.len());
        // scalars survive exactly (they are small half-integers)
        prop_assert_eq!(p.scalar("w").unwrap(), cloud.scalar("w").unwrap());
    }

    #[test]
    fn partition_points_conserves_everything(cloud in arb_cloud(300), n in 1usize..9) {
        let parts = partition_points(&cloud, n).unwrap();
        prop_assert_eq!(parts.len(), n);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        prop_assert_eq!(total, cloud.len());
        let mut seen = vec![false; cloud.len()];
        for part in &parts {
            for &id in part.attribute("id").unwrap().as_id().unwrap() {
                prop_assert!(!seen[id as usize]);
                seen[id as usize] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        // every particle lies inside (or on) its block's bounds… blocks are
        // derived from the global bounds, so just check containment in the
        // global domain padded for float slop.
        let domain = cloud.bounds().padded(1e-3);
        for part in &parts {
            for &p in part.positions() {
                prop_assert!(domain.contains(p));
            }
        }
    }

    #[test]
    fn decompose_domain_tiles_exactly(n in 1usize..25) {
        let d = Aabb::new(Vec3::new(-3.0, 1.0, 0.0), Vec3::new(5.0, 4.0, 2.0));
        let blocks = decompose_domain(&d, n);
        prop_assert_eq!(blocks.len(), n);
        let mut union = Aabb::empty();
        let mut vol = 0.0f64;
        for b in &blocks {
            union.expand_box(b);
            vol += b.volume() as f64;
        }
        prop_assert_eq!(union, d);
        prop_assert!((vol - d.volume() as f64).abs() < 1e-3 * d.volume() as f64);
        // pairwise disjoint interiors
        for i in 0..blocks.len() {
            for j in (i + 1)..blocks.len() {
                let a = &blocks[i];
                let b = &blocks[j];
                // shrink one slightly: interiors must not overlap
                let shrunk = Aabb::new(
                    a.min + Vec3::splat(1e-4),
                    a.max - Vec3::splat(1e-4),
                );
                if shrunk.intersects(b) {
                    // overlap region must be degenerate (face contact)
                    let lo = shrunk.min.max(b.min);
                    let hi = shrunk.max.min(b.max);
                    let overlap = (hi - lo).max_component();
                    prop_assert!((hi.x - lo.x).min(hi.y - lo.y).min(hi.z - lo.z) <= 1e-3,
                        "blocks {i} and {j} overlap volumetrically: {overlap}");
                }
            }
        }
    }

    #[test]
    fn sampling_ratio_and_subset(
        cloud in arb_cloud(400),
        ratio in 0.05f64..1.0,
        seed in 0u64..500,
    ) {
        let spec = SamplingSpec::new(ratio, SamplingMethod::Random, seed).unwrap();
        let s = sample_points(&cloud, &spec).unwrap();
        let want = ((cloud.len() as f64) * ratio).round() as usize;
        prop_assert_eq!(s.len(), want);
        // sampled ids form a strictly increasing subset
        let ids = s.attribute("id").unwrap().as_id().unwrap();
        prop_assert!(ids.windows(2).all(|w| w[0] < w[1]));
        // attribute alignment preserved: w[i] == id[i] * 0.5
        let w = s.scalar("w").unwrap();
        for (i, &id) in ids.iter().enumerate() {
            prop_assert_eq!(w[i], id as f32 * 0.5);
        }
    }

    #[test]
    fn stratified_sampling_within_tolerance(
        cloud in arb_cloud(400),
        ratio in 0.1f64..0.9,
        strata in 1usize..5,
    ) {
        let spec = SamplingSpec::new(ratio, SamplingMethod::Stratified { strata }, 11).unwrap();
        let s = sample_points(&cloud, &spec).unwrap();
        // per-stratum rounding can drift by up to one point per stratum
        let want = (cloud.len() as f64) * ratio;
        let slack = (strata * strata * strata) as f64;
        prop_assert!((s.len() as f64 - want).abs() <= slack + 1.0,
            "len {} vs want {want} (slack {slack})", s.len());
    }

    #[test]
    fn grid_slabs_conserve_cells(
        nx in 3usize..12, ny in 2usize..6, nz in 2usize..6,
        n in 1usize..5,
    ) {
        let mut g = UniformGrid::new([nx, ny, nz], Vec3::ZERO, Vec3::ONE).unwrap();
        let vals: Vec<f32> = (0..g.num_vertices()).map(|i| i as f32).collect();
        g.set_attribute("f", Attribute::Scalar(vals)).unwrap();
        let slabs = partition_grid_slabs(&g, n).unwrap();
        prop_assert_eq!(slabs.len(), n);
        let axis = g.bounds().longest_axis();
        let cells_along_axis = g.dims()[axis] - 1;
        if n <= cells_along_axis {
            let total: usize = slabs.iter().map(|s| s.num_cells()).sum();
            prop_assert_eq!(total, g.num_cells());
        }
    }

    #[test]
    fn trilinear_sample_within_vertex_range(
        seed in 0u64..200,
        px in 0.0f32..2.0, py in 0.0f32..2.0, pz in 0.0f32..2.0,
    ) {
        let mut g = UniformGrid::new([3, 3, 3], Vec3::ZERO, Vec3::ONE).unwrap();
        let vals: Vec<f32> = (0..27)
            .map(|i| (((i as u64 + 1).wrapping_mul(seed.wrapping_mul(2654435761) + 1)) % 997) as f32)
            .collect();
        g.set_attribute("f", Attribute::Scalar(vals.clone())).unwrap();
        let v = g.sample_trilinear(&vals, Vec3::new(px, py, pz)).unwrap();
        let lo = vals.iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = vals.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        // interpolation is a convex combination: must stay inside the hull
        prop_assert!(v >= lo - 1e-3 && v <= hi + 1e-3, "{v} not in [{lo}, {hi}]");
    }

    #[test]
    fn aabb_union_contains_both(a in arb_vec3(10.0), b in arb_vec3(10.0),
                                c in arb_vec3(10.0), d in arb_vec3(10.0)) {
        let b1 = Aabb::new(a.min(b), a.max(b));
        let b2 = Aabb::new(c.min(d), c.max(d));
        let u = b1.union(&b2);
        prop_assert!(u.contains(b1.min) && u.contains(b1.max));
        prop_assert!(u.contains(b2.min) && u.contains(b2.max));
        prop_assert!(u.volume() + 1e-3 >= b1.volume().max(b2.volume()));
    }

    /// Compression round-trips within its documented error bounds and ids
    /// survive losslessly.
    #[test]
    fn compression_bounds(cloud in arb_cloud(300)) {
        let obj = DataObject::Points(cloud.clone());
        let back = compress::decompress(compress::compress(&obj)).unwrap();
        let b = back.as_points().unwrap();
        prop_assert_eq!(b.len(), cloud.len());
        let ext = cloud.bounds().extent();
        for (p, q) in cloud.positions().iter().zip(b.positions()) {
            prop_assert!((p.x - q.x).abs() <= ext.x * 1.5 / 65535.0 + 1e-6);
            prop_assert!((p.y - q.y).abs() <= ext.y * 1.5 / 65535.0 + 1e-6);
            prop_assert!((p.z - q.z).abs() <= ext.z * 1.5 / 65535.0 + 1e-6);
        }
        // scalar error bound: range / 255 (w = i * 0.5, so range = (n-1)/2)
        let w_orig = cloud.scalar("w").unwrap();
        let w_back = b.scalar("w").unwrap();
        let range = (cloud.len() as f32 - 1.0) * 0.5;
        for (x, y) in w_orig.iter().zip(w_back) {
            prop_assert!((x - y).abs() <= range * 1.5 / 255.0 + 1e-6);
        }
        prop_assert_eq!(
            cloud.attribute("id").unwrap().as_id().unwrap(),
            b.attribute("id").unwrap().as_id().unwrap()
        );
    }

    /// Compression never inflates a non-trivial payload.
    #[test]
    fn compression_never_inflates(cloud in arb_cloud(300)) {
        prop_assume!(cloud.len() >= 16);
        let obj = DataObject::Points(cloud);
        let raw = eth_data::io::binary::encode(&obj).len();
        let packed = compress::compress(&obj).len();
        prop_assert!(packed < raw, "packed {packed} >= raw {raw}");
    }

    /// The grid-field sampler masks exactly the complement of the kept set
    /// and never changes topology, at any ratio.
    #[test]
    fn grid_sampling_masks_exactly(
        side in 2usize..6,
        ratio in 0.05f64..0.95,
        seed in 0u64..300,
    ) {
        let mut g = UniformGrid::new([side, side, side], Vec3::ZERO, Vec3::ONE).unwrap();
        let n = g.num_vertices();
        let vals: Vec<f32> = (0..n).map(|i| 1.0 + i as f32).collect(); // all > 0
        g.set_attribute("f", Attribute::Scalar(vals)).unwrap();
        let spec = SamplingSpec::new(ratio, SamplingMethod::Random, seed).unwrap();
        let s = eth_data::sampling::sample_grid_field(&g, "f", &spec, 0.0).unwrap();
        prop_assert_eq!(s.dims(), g.dims());
        let out = s.scalar("f").unwrap();
        let kept = out.iter().filter(|&&v| v > 0.0).count();
        prop_assert_eq!(kept, ((n as f64) * ratio).round() as usize);
    }

    /// Flipping *any* byte of an encoded object is detected at decode time:
    /// the first four bytes are the magic (a `Format` error), everything
    /// after — including the trailer itself — trips the checksum.
    #[test]
    fn binary_flip_any_byte_detected(cloud in arb_cloud(150), pick in 0usize..usize::MAX, bit in 0u8..8) {
        let obj = DataObject::Points(cloud);
        let encoded = binary::encode(&obj);
        let offset = pick % encoded.len();
        let mut bad = encoded.to_vec();
        bad[offset] ^= 1 << bit;
        let err = binary::decode(bad.into()).unwrap_err();
        if offset < 4 {
            prop_assert!(matches!(err, DataError::Format(_)), "offset {offset}: {err}");
        } else {
            prop_assert!(matches!(err, DataError::Corrupt(_)), "offset {offset}: {err}");
        }
    }
}
