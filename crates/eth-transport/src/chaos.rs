//! Chaos wrappers: enact a [`FaultPlan`] around a real transport.
//!
//! [`ChaosComm`] wraps any [`Communicator`] (the N-rank fabrics);
//! [`ChaosChannel`] wraps a [`StreamChannel`] (the internode sim↔viz pair
//! link). Both consult the plan's deterministic decision function per
//! message, enact the faults, and append every injected fault to a log so
//! a run's fault schedule can be asserted byte-identical across runs.
//!
//! Enactment sides:
//! * **send** — delay (sleep before the write), drop (the write never
//!   happens), wire corruption (the payload is mangled before the write,
//!   so the receiver sees a decode failure, like real bit rot),
//! * **recv** — injected disconnect (the link is treated as dead from a
//!   chosen message onward) and integrity failure
//!   ([`TransportError::Corrupt`]).
//!
//! Traffic outside the plan's tag window (collectives, control tags)
//! passes through untouched — compositing stays reliable while the data
//! path misbehaves, mirroring how ISAAC-style couplings keep the
//! simulation healthy when the consumer is not.

use crate::comm::{Communicator, Result, TrafficCounters, TransportError};
use crate::fault::{FaultEvent, FaultKind, FaultPlan, FaultSide, SplitMix64};
use crate::socket::StreamChannel;
use bytes::Bytes;
use parking_lot::Mutex;
use std::time::{Duration, Instant};

/// Deterministically mangle a payload (send-side wire corruption). The
/// first byte always flips, so the result is guaranteed to differ.
fn mangle(payload: &Bytes, seed: u64, seq: u64) -> Bytes {
    if payload.is_empty() {
        return payload.clone();
    }
    let mut data = payload.to_vec();
    let mut rng = SplitMix64::new(seed ^ seq.wrapping_mul(0x2545_F491_4F6C_DD1D));
    data[0] ^= 0xA5;
    let flips = (data.len() / 64).clamp(1, 32);
    for _ in 0..flips {
        let i = (rng.next_u64() as usize) % data.len();
        data[i] ^= 0xFF;
    }
    Bytes::from(data)
}

/// A [`Communicator`] that injects seeded, reproducible faults.
pub struct ChaosComm<C: Communicator> {
    inner: C,
    plan: FaultPlan,
    /// Per-destination count of fault-targeted sends.
    send_seq: Mutex<Vec<u64>>,
    /// Per-source count of fault-targeted receives.
    recv_seq: Mutex<Vec<u64>>,
    log: Mutex<Vec<FaultEvent>>,
}

impl<C: Communicator> ChaosComm<C> {
    pub fn new(inner: C, plan: FaultPlan) -> ChaosComm<C> {
        let size = inner.size();
        ChaosComm {
            inner,
            plan,
            send_seq: Mutex::new(vec![0; size]),
            recv_seq: Mutex::new(vec![0; size]),
            log: Mutex::new(Vec::new()),
        }
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    pub fn inner(&self) -> &C {
        &self.inner
    }

    pub fn into_inner(self) -> C {
        self.inner
    }

    /// Every fault injected so far, in injection order.
    pub fn fault_log(&self) -> Vec<FaultEvent> {
        self.log.lock().clone()
    }

    /// The fault log serialized to JSON — the "schedule" two same-seed
    /// runs must reproduce byte-for-byte.
    pub fn schedule_bytes(&self) -> Vec<u8> {
        serde_json::to_vec(&*self.log.lock()).unwrap_or_default()
    }

    fn note(&self, kind: FaultKind, from: usize, to: usize, tag: u32, seq: u64) {
        self.log.lock().push(FaultEvent {
            kind,
            from,
            to,
            tag,
            seq,
        });
    }

    fn recv_faulted(&self, from: usize, tag: u32, deadline: Option<Instant>) -> Result<Bytes> {
        self.inner.check_peer(from)?;
        let seq = {
            let mut s = self.recv_seq.lock();
            let v = s[from];
            s[from] += 1;
            v
        };
        if self.plan.disconnects(from, seq) {
            self.note(FaultKind::Disconnect, from, self.inner.rank(), tag, seq);
            return Err(TransportError::Disconnected { peer: from });
        }
        let payload = match deadline {
            Some(d) => self.inner.recv_deadline(from, tag, d)?,
            None => self.inner.recv(from, tag)?,
        };
        let decision = self
            .plan
            .decide(FaultSide::Recv, from, self.inner.rank(), tag, seq);
        if decision.corrupt {
            self.note(FaultKind::Corrupt, from, self.inner.rank(), tag, seq);
            return Err(TransportError::Corrupt {
                peer: from,
                detail: format!("injected integrity failure (seq {seq})"),
            });
        }
        Ok(payload)
    }
}

impl<C: Communicator> Communicator for ChaosComm<C> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn send(&self, to: usize, tag: u32, payload: Bytes) -> Result<()> {
        if !self.plan.targets(tag) {
            return self.inner.send(to, tag, payload);
        }
        self.inner.check_peer(to)?;
        let seq = {
            let mut s = self.send_seq.lock();
            let v = s[to];
            s[to] += 1;
            v
        };
        if self.plan.disconnects(to, seq) {
            self.note(FaultKind::Disconnect, self.inner.rank(), to, tag, seq);
            return Err(TransportError::Disconnected { peer: to });
        }
        let decision = self
            .plan
            .decide(FaultSide::Send, self.inner.rank(), to, tag, seq);
        if decision.delay_ms > 0 {
            self.note(FaultKind::Delay, self.inner.rank(), to, tag, seq);
            std::thread::sleep(Duration::from_millis(decision.delay_ms));
        }
        if decision.drop {
            self.note(FaultKind::Drop, self.inner.rank(), to, tag, seq);
            // Record the send attempt so a stitched trace shows the lost
            // message as a dangling flow-out instead of nothing at all.
            let _span = eth_obs::span_bytes(eth_obs::Phase::Send, payload.len() as u64);
            if let Some(ctx) = eth_obs::flow_context() {
                eth_obs::flow_out(ctx, to, tag, payload.len() as u64);
            }
            return Ok(()); // silently lost
        }
        let payload = if decision.corrupt {
            self.note(FaultKind::Corrupt, self.inner.rank(), to, tag, seq);
            mangle(&payload, self.plan.seed, seq)
        } else {
            payload
        };
        self.inner.send(to, tag, payload)
    }

    fn recv(&self, from: usize, tag: u32) -> Result<Bytes> {
        if !self.plan.targets(tag) {
            return self.inner.recv(from, tag);
        }
        let deadline = self.plan.deadline().map(|d| Instant::now() + d);
        self.recv_faulted(from, tag, deadline)
    }

    fn recv_deadline(&self, from: usize, tag: u32, deadline: Instant) -> Result<Bytes> {
        if !self.plan.targets(tag) {
            return self.inner.recv_deadline(from, tag, deadline);
        }
        self.recv_faulted(from, tag, Some(deadline))
    }

    fn traffic(&self) -> TrafficCounters {
        self.inner.traffic()
    }
}

/// A [`StreamChannel`] that injects seeded, reproducible faults — the
/// internode pair-link counterpart of [`ChaosComm`].
pub struct ChaosChannel {
    inner: StreamChannel,
    plan: FaultPlan,
    send_seq: Mutex<u64>,
    recv_seq: Mutex<u64>,
    log: Mutex<Vec<FaultEvent>>,
}

impl ChaosChannel {
    pub fn new(inner: StreamChannel, plan: FaultPlan) -> ChaosChannel {
        ChaosChannel {
            inner,
            plan,
            send_seq: Mutex::new(0),
            recv_seq: Mutex::new(0),
            log: Mutex::new(Vec::new()),
        }
    }

    /// Wrap with an inert plan: behaves exactly like the bare channel.
    pub fn passthrough(inner: StreamChannel) -> ChaosChannel {
        ChaosChannel::new(inner, FaultPlan::default())
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The logical rank on the far side of this link.
    pub fn peer_rank(&self) -> usize {
        self.inner.peer_rank()
    }

    pub fn bytes_sent(&self) -> u64 {
        self.inner.bytes_sent()
    }

    pub fn bytes_received(&self) -> u64 {
        self.inner.bytes_received()
    }

    pub fn fault_log(&self) -> Vec<FaultEvent> {
        self.log.lock().clone()
    }

    pub fn schedule_bytes(&self) -> Vec<u8> {
        serde_json::to_vec(&*self.log.lock()).unwrap_or_default()
    }

    pub fn into_inner(self) -> StreamChannel {
        self.inner
    }

    fn note(&self, kind: FaultKind, from: usize, to: usize, tag: u32, seq: u64) {
        self.log.lock().push(FaultEvent {
            kind,
            from,
            to,
            tag,
            seq,
        });
    }

    /// Send a tagged payload, subject to the plan.
    pub fn send(&self, tag: u32, payload: Bytes) -> Result<()> {
        if !self.plan.targets(tag) {
            return self.inner.send(tag, payload);
        }
        let peer = self.inner.peer_rank();
        let local = self.inner.local_rank();
        let seq = {
            let mut s = self.send_seq.lock();
            let v = *s;
            *s += 1;
            v
        };
        if self.plan.disconnects(peer, seq) {
            self.note(FaultKind::Disconnect, local, peer, tag, seq);
            return Err(TransportError::Disconnected { peer });
        }
        let decision = self.plan.decide(FaultSide::Send, local, peer, tag, seq);
        if decision.delay_ms > 0 {
            self.note(FaultKind::Delay, local, peer, tag, seq);
            std::thread::sleep(Duration::from_millis(decision.delay_ms));
        }
        if decision.drop {
            self.note(FaultKind::Drop, local, peer, tag, seq);
            // Same dangling-flow bookkeeping as ChaosComm: the drop still
            // leaves a flow-out with no matching flow-in.
            let _span = eth_obs::span_bytes(eth_obs::Phase::Send, payload.len() as u64);
            if let Some(ctx) = eth_obs::flow_context() {
                eth_obs::flow_out(ctx, peer, tag, payload.len() as u64);
            }
            return Ok(());
        }
        let payload = if decision.corrupt {
            self.note(FaultKind::Corrupt, local, peer, tag, seq);
            mangle(&payload, self.plan.seed, seq)
        } else {
            payload
        };
        self.inner.send(tag, payload)
    }

    /// Receive a tagged payload, subject to the plan (including its
    /// deadline: with one configured, this never blocks indefinitely).
    pub fn recv(&self, tag: u32) -> Result<Bytes> {
        if !self.plan.targets(tag) {
            return self.inner.recv(tag);
        }
        self.recv_faulted(tag, self.plan.deadline())
    }

    /// Receive with an explicit timeout (overrides the plan deadline).
    pub fn recv_timeout(&self, tag: u32, timeout: Duration) -> Result<Bytes> {
        if !self.plan.targets(tag) {
            return self.inner.recv_timeout(tag, timeout);
        }
        self.recv_faulted(tag, Some(timeout))
    }

    fn recv_faulted(&self, tag: u32, timeout: Option<Duration>) -> Result<Bytes> {
        let peer = self.inner.peer_rank();
        let local = self.inner.local_rank();
        let seq = {
            let mut s = self.recv_seq.lock();
            let v = *s;
            *s += 1;
            v
        };
        if self.plan.disconnects(peer, seq) {
            self.note(FaultKind::Disconnect, peer, local, tag, seq);
            return Err(TransportError::Disconnected { peer });
        }
        let payload = match timeout {
            Some(t) => self.inner.recv_timeout(tag, t)?,
            None => self.inner.recv(tag)?,
        };
        let decision = self.plan.decide(FaultSide::Recv, peer, local, tag, seq);
        if decision.corrupt {
            self.note(FaultKind::Corrupt, peer, local, tag, seq);
            return Err(TransportError::Corrupt {
                peer,
                detail: format!("injected integrity failure (seq {seq})"),
            });
        }
        Ok(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::LocalFabric;

    const TAG: u32 = 0x1008;

    #[test]
    fn passthrough_plan_changes_nothing() {
        let mut comms = LocalFabric::new(2);
        let c1 = ChaosComm::new(comms.pop().unwrap(), FaultPlan::default());
        let c0 = ChaosComm::new(comms.pop().unwrap(), FaultPlan::default());
        c0.send(1, TAG, Bytes::from_static(b"hello")).unwrap();
        assert_eq!(&c1.recv(0, TAG).unwrap()[..], b"hello");
        assert!(c0.fault_log().is_empty());
        assert!(c1.fault_log().is_empty());
    }

    #[test]
    fn dropped_messages_surface_as_timeouts() {
        let mut comms = LocalFabric::new(2);
        let plan = FaultPlan::seeded(21)
            .with_drop(1.0)
            .with_recv_deadline_ms(50);
        let c1 = ChaosComm::new(comms.pop().unwrap(), plan.clone());
        let c0 = ChaosComm::new(comms.pop().unwrap(), plan);
        c0.send(1, TAG, Bytes::from_static(b"lost")).unwrap();
        let err = c1.recv(0, TAG).unwrap_err();
        assert!(matches!(err, TransportError::Timeout { peer: 0, .. }), "{err}");
        assert_eq!(c0.fault_log().len(), 1);
        assert_eq!(c0.fault_log()[0].kind, FaultKind::Drop);
    }

    #[test]
    fn injected_disconnect_cuts_sends_after_threshold() {
        let mut comms = LocalFabric::new(2);
        let plan = FaultPlan::seeded(3).with_disconnect(1, 1);
        let c0 = ChaosComm::new(comms.remove(0), plan);
        // first message to peer 1 passes, second hits the injected cut
        c0.send(1, TAG, Bytes::new()).unwrap();
        let err = c0.send(1, TAG, Bytes::new()).unwrap_err();
        assert!(matches!(err, TransportError::Disconnected { peer: 1 }), "{err}");
    }

    #[test]
    fn same_seed_same_schedule_bytes() {
        let run = || {
            let mut comms = LocalFabric::new(2);
            let plan = FaultPlan::seeded(99)
                .with_drop(0.4)
                .with_corrupt(0.3)
                .with_recv_deadline_ms(20);
            let c1 = ChaosComm::new(comms.pop().unwrap(), plan.clone());
            let c0 = ChaosComm::new(comms.pop().unwrap(), plan);
            for i in 0..50u32 {
                c0.send(1, TAG + (i % 3), Bytes::from(vec![i as u8; 8])).unwrap();
            }
            for i in 0..50u32 {
                let _ = c1.recv_timeout(0, TAG + (i % 3), Duration::from_millis(1));
            }
            (c0.schedule_bytes(), c1.schedule_bytes())
        };
        let (s0a, s1a) = run();
        let (s0b, s1b) = run();
        assert!(!s0a.is_empty() && s0a != b"[]", "no faults fired");
        assert_eq!(s0a, s0b, "sender schedules diverged across runs");
        assert_eq!(s1a, s1b, "receiver schedules diverged across runs");
    }

    #[test]
    fn mangle_always_changes_and_is_deterministic() {
        let p = Bytes::from(vec![7u8; 256]);
        let a = mangle(&p, 5, 0);
        let b = mangle(&p, 5, 0);
        assert_eq!(a, b);
        assert_ne!(a, p);
        assert_eq!(a.len(), p.len());
        assert_ne!(mangle(&p, 5, 1), a, "seq must vary the mangling");
        assert!(mangle(&Bytes::new(), 5, 0).is_empty());
    }

    #[test]
    fn collective_tags_pass_untouched() {
        let mut comms = LocalFabric::new(2);
        let plan = FaultPlan::seeded(1).with_drop(1.0);
        let c1 = ChaosComm::new(comms.pop().unwrap(), plan.clone());
        let c0 = ChaosComm::new(comms.pop().unwrap(), plan);
        let tag = crate::collectives::COLLECTIVE_TAG_BASE + 1;
        c0.send(1, tag, Bytes::from_static(b"safe")).unwrap();
        assert_eq!(&c1.recv(0, tag).unwrap()[..], b"safe");
        assert!(c0.fault_log().is_empty());
    }

    #[test]
    fn collectives_survive_total_data_drop() {
        // barrier + gather run over chaos comms that drop ALL data traffic
        use crate::collectives::{barrier, gather};
        use crate::runner::run_ranks;
        let totals = run_ranks(3, |c| {
            let plan = FaultPlan::seeded(8).with_drop(1.0).with_recv_deadline_ms(100);
            let c = ChaosComm::new(c, plan);
            barrier(&c).unwrap();
            let g = gather(&c, 0, Bytes::from(vec![c.rank() as u8])).unwrap();
            barrier(&c).unwrap();
            g.map(|parts| parts.len()).unwrap_or(0)
        });
        assert_eq!(totals, vec![3, 0, 0]);
    }
}
