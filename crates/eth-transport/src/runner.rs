//! The `mpirun` equivalent: launch N ranks and join them.
//!
//! "In the first case, experiments are easily run using the standard batch
//! scheduler" (Section III-C) — in this harness the "batch scheduler" is a
//! thread per rank over a [`LocalFabric`], which is how the native
//! execution mode runs tight and intercore coupling. The socket fabric has
//! its own bootstrap (see [`crate::socket`]); [`run_ranks_socket`] wires it
//! for tests and single-machine experiments.

use crate::comm::{Communicator, Result};
use crate::layout::LayoutFile;
use crate::local::{LocalComm, LocalFabric};
use crate::socket::SocketFabric;
use crossbeam::channel::unbounded;
use std::path::Path;
use std::thread;
use std::time::{Duration, Instant};

/// Spawn `size` ranks over an in-process fabric, run `body` on each, and
/// join. Returns per-rank results (indexed by rank).
///
/// Panics in a rank are propagated as a panic here (after all ranks are
/// joined), matching the fail-fast behaviour of `mpirun`.
pub fn run_ranks<T, F>(size: usize, body: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(LocalComm) -> T + Send + Sync + Clone + 'static,
{
    let comms = LocalFabric::new(size);
    // Rank threads inherit the launcher's flight-recorder sinks so a
    // per-run or campaign recorder sees rank-side spans tagged by rank.
    let obs = eth_obs::current_context();
    let handles: Vec<_> = comms
        .into_iter()
        .map(|comm| {
            let body = body.clone();
            let obs = obs.clone();
            thread::Builder::new()
                .name(format!("eth-rank-{}", comm.rank()))
                .spawn(move || {
                    let _obs = obs.attach();
                    eth_obs::set_rank(comm.rank());
                    body(comm)
                })
                .expect("spawn rank thread")
        })
        .collect();
    let mut results = Vec::with_capacity(size);
    let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
    for h in handles {
        match h.join() {
            Ok(v) => results.push(v),
            Err(p) => panic = Some(p),
        }
    }
    if let Some(p) = panic {
        std::panic::resume_unwind(p);
    }
    results
}

/// Like [`run_ranks`] but with fallible rank bodies: the first error is
/// returned after all ranks complete.
pub fn try_run_ranks<T, F>(size: usize, body: F) -> Result<Vec<T>>
where
    T: Send + 'static,
    F: Fn(LocalComm) -> Result<T> + Send + Sync + Clone + 'static,
{
    let mut out = Vec::with_capacity(size);
    for r in run_ranks(size, body) {
        out.push(r?);
    }
    Ok(out)
}

/// Spawn `size` ranks over a loopback socket fabric bootstrapped through a
/// layout directory at `layout_dir`.
pub fn run_ranks_socket<T, F>(size: usize, layout_dir: &Path, body: F) -> Result<Vec<T>>
where
    T: Send + 'static,
    F: Fn(SocketFabric) -> T + Send + Sync + Clone + 'static,
{
    let layout = LayoutFile::create(layout_dir)?;
    layout.clear()?;
    let obs = eth_obs::current_context();
    let handles: Vec<_> = (0..size)
        .map(|rank| {
            let body = body.clone();
            let layout = layout.clone();
            let obs = obs.clone();
            thread::Builder::new()
                .name(format!("eth-sock-rank-{rank}"))
                .spawn(move || {
                    let _obs = obs.attach();
                    eth_obs::set_rank(rank);
                    let comm =
                        SocketFabric::bootstrap(rank, size, &layout, Duration::from_secs(30))?;
                    Ok::<T, crate::comm::TransportError>(body(comm))
                })
                .expect("spawn rank thread")
        })
        .collect();
    let mut results = Vec::with_capacity(size);
    for h in handles {
        match h.join() {
            Ok(Ok(v)) => results.push(v),
            Ok(Err(e)) => return Err(e),
            Err(p) => std::panic::resume_unwind(p),
        }
    }
    Ok(results)
}

/// How a supervised run failed: a rank panicked, or a rank failed to
/// finish within its wall-clock budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RankFailure {
    /// A rank's body panicked; `message` is the panic payload when it was
    /// a string.
    Panic { rank: usize, message: String },
    /// A rank did not finish within the budget. The rank reported is one
    /// that had not completed when the budget expired.
    Hang { rank: usize, waited: Duration },
}

impl std::fmt::Display for RankFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RankFailure::Panic { rank, message } => {
                write!(f, "rank {rank} panicked: {message}")
            }
            RankFailure::Hang { rank, waited } => write!(
                f,
                "rank {rank} did not finish within {:.3}s",
                waited.as_secs_f64()
            ),
        }
    }
}

impl std::error::Error for RankFailure {}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Like [`run_ranks`], but supervised: each rank gets `rank_timeout` of
/// wall clock to finish, and a panic in any rank is converted into a
/// structured [`RankFailure`] instead of being re-thrown.
///
/// On failure, ranks still running are *detached*, not killed (Rust
/// threads cannot be cancelled): they keep running until they finish on
/// their own or the process exits, and their results are discarded. The
/// supervisor itself never blocks past the budget — the point is that a
/// deadlocked or wedged experiment surfaces as an error the sweep driver
/// can record and move past, instead of wedging the whole campaign.
pub fn run_ranks_supervised<T, F>(
    size: usize,
    rank_timeout: Duration,
    body: F,
) -> std::result::Result<Vec<T>, RankFailure>
where
    T: Send + 'static,
    F: Fn(LocalComm) -> T + Send + Sync + Clone + 'static,
{
    let comms = LocalFabric::new(size);
    let (tx, rx) = unbounded::<(usize, thread::Result<T>)>();
    let obs = eth_obs::current_context();
    for comm in comms {
        let body = body.clone();
        let tx = tx.clone();
        let obs = obs.clone();
        thread::Builder::new()
            .name(format!("eth-rank-{}", comm.rank()))
            .spawn(move || {
                let _obs = obs.attach();
                eth_obs::set_rank(comm.rank());
                let rank = comm.rank();
                let result =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(comm)));
                let _ = tx.send((rank, result));
            })
            .expect("spawn rank thread");
    }
    drop(tx);
    let deadline = Instant::now() + rank_timeout;
    let mut slots: Vec<Option<T>> = (0..size).map(|_| None).collect();
    let mut finished = 0;
    while finished < size {
        match rx.recv_deadline(deadline) {
            Ok((rank, Ok(value))) => {
                slots[rank] = Some(value);
                finished += 1;
            }
            Ok((rank, Err(payload))) => {
                return Err(RankFailure::Panic {
                    rank,
                    message: panic_message(payload.as_ref()),
                });
            }
            Err(_) => {
                let rank = slots
                    .iter()
                    .position(|s| s.is_none())
                    .expect("timeout with all ranks finished");
                return Err(RankFailure::Hang {
                    rank,
                    waited: rank_timeout,
                });
            }
        }
    }
    Ok(slots.into_iter().map(|s| s.expect("all slots filled")).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::{allreduce_f64, barrier};
    use crate::comm::Communicator;
    use bytes::Bytes;

    #[test]
    fn ranks_see_their_ids() {
        let ids = run_ranks(4, |c| (c.rank(), c.size()));
        assert_eq!(ids, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn results_indexed_by_rank() {
        let sq = run_ranks(5, |c| c.rank() * c.rank());
        assert_eq!(sq, vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn ring_pass_over_runner() {
        let sums = run_ranks(4, |c| {
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            c.send(next, 0, Bytes::from(vec![c.rank() as u8])).unwrap();
            let from_prev = c.recv(prev, 0).unwrap()[0] as usize;
            barrier(&c).unwrap();
            from_prev
        });
        assert_eq!(sums, vec![3, 0, 1, 2]);
    }

    #[test]
    fn collectives_work_over_runner() {
        let totals = run_ranks(6, |c| {
            allreduce_f64(&c, vec![1.0], |a, b| a + b).unwrap()[0]
        });
        assert!(totals.iter().all(|&t| t == 6.0));
    }

    #[test]
    fn try_run_ranks_propagates_errors() {
        let r = try_run_ranks(3, |c| {
            if c.rank() == 1 {
                Err(crate::comm::TransportError::InvalidArgument("boom".into()))
            } else {
                Ok(c.rank())
            }
        });
        assert!(r.is_err());
    }

    #[test]
    #[should_panic(expected = "rank 2 exploded")]
    fn rank_panic_propagates() {
        run_ranks(3, |c| {
            if c.rank() == 2 {
                panic!("rank 2 exploded");
            }
        });
    }

    #[test]
    fn supervised_clean_run_matches_unsupervised() {
        let sq = run_ranks_supervised(5, Duration::from_secs(30), |c| c.rank() * c.rank())
            .unwrap();
        assert_eq!(sq, vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn supervised_panic_becomes_structured_failure() {
        let err = run_ranks_supervised(3, Duration::from_secs(30), |c| {
            if c.rank() == 1 {
                panic!("rank 1 exploded");
            }
            c.rank()
        })
        .unwrap_err();
        match err {
            RankFailure::Panic { rank, message } => {
                assert_eq!(rank, 1);
                assert!(message.contains("exploded"), "{message}");
            }
            other => panic!("expected Panic, got {other:?}"),
        }
    }

    #[test]
    fn supervised_hang_becomes_structured_failure() {
        let start = Instant::now();
        let err = run_ranks_supervised(2, Duration::from_millis(100), |c| {
            if c.rank() == 1 {
                // a wedged rank: sleeps far past the budget
                thread::sleep(Duration::from_secs(5));
            }
            c.rank()
        })
        .unwrap_err();
        assert!(
            matches!(err, RankFailure::Hang { rank: 1, .. }),
            "{err:?}"
        );
        // the supervisor must give up at the budget, not wait out the hang
        assert!(start.elapsed() < Duration::from_secs(4));
    }

    #[test]
    fn socket_runner_end_to_end() {
        let dir = std::env::temp_dir().join("eth-runner-socket-test");
        let _ = std::fs::remove_dir_all(&dir);
        let sums = run_ranks_socket(3, &dir, |c| {
            allreduce_f64(&c, vec![c.rank() as f64], |a, b| a + b).unwrap()[0]
        })
        .unwrap();
        assert_eq!(sums, vec![3.0, 3.0, 3.0]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
