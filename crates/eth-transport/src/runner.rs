//! The `mpirun` equivalent: launch N ranks and join them.
//!
//! "In the first case, experiments are easily run using the standard batch
//! scheduler" (Section III-C) — in this harness the "batch scheduler" is a
//! thread per rank over a [`LocalFabric`], which is how the native
//! execution mode runs tight and intercore coupling. The socket fabric has
//! its own bootstrap (see [`crate::socket`]); [`run_ranks_socket`] wires it
//! for tests and single-machine experiments.

use crate::comm::{Communicator, Result};
use crate::layout::LayoutFile;
use crate::local::{LocalComm, LocalFabric};
use crate::socket::SocketFabric;
use crossbeam::channel::{unbounded, RecvTimeoutError};
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Spawn `size` ranks over an in-process fabric, run `body` on each, and
/// join. Returns per-rank results (indexed by rank).
///
/// Panics in a rank are propagated as a panic here (after all ranks are
/// joined), matching the fail-fast behaviour of `mpirun`.
pub fn run_ranks<T, F>(size: usize, body: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(LocalComm) -> T + Send + Sync + Clone + 'static,
{
    let comms = LocalFabric::new(size);
    // Rank threads inherit the launcher's flight-recorder sinks so a
    // per-run or campaign recorder sees rank-side spans tagged by rank.
    let obs = eth_obs::current_context();
    let handles: Vec<_> = comms
        .into_iter()
        .map(|comm| {
            let body = body.clone();
            let obs = obs.clone();
            thread::Builder::new()
                .name(format!("eth-rank-{}", comm.rank()))
                .spawn(move || {
                    let _obs = obs.attach();
                    eth_obs::set_rank(comm.rank());
                    body(comm)
                })
                .expect("spawn rank thread")
        })
        .collect();
    let mut results = Vec::with_capacity(size);
    let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
    for h in handles {
        match h.join() {
            Ok(v) => results.push(v),
            Err(p) => panic = Some(p),
        }
    }
    if let Some(p) = panic {
        std::panic::resume_unwind(p);
    }
    results
}

/// Like [`run_ranks`] but with fallible rank bodies: the first error is
/// returned after all ranks complete.
pub fn try_run_ranks<T, F>(size: usize, body: F) -> Result<Vec<T>>
where
    T: Send + 'static,
    F: Fn(LocalComm) -> Result<T> + Send + Sync + Clone + 'static,
{
    let mut out = Vec::with_capacity(size);
    for r in run_ranks(size, body) {
        out.push(r?);
    }
    Ok(out)
}

/// Spawn `size` ranks over a loopback socket fabric bootstrapped through a
/// layout directory at `layout_dir`.
pub fn run_ranks_socket<T, F>(size: usize, layout_dir: &Path, body: F) -> Result<Vec<T>>
where
    T: Send + 'static,
    F: Fn(SocketFabric) -> T + Send + Sync + Clone + 'static,
{
    let layout = LayoutFile::create(layout_dir)?;
    layout.clear()?;
    let obs = eth_obs::current_context();
    let handles: Vec<_> = (0..size)
        .map(|rank| {
            let body = body.clone();
            let layout = layout.clone();
            let obs = obs.clone();
            thread::Builder::new()
                .name(format!("eth-sock-rank-{rank}"))
                .spawn(move || {
                    let _obs = obs.attach();
                    eth_obs::set_rank(rank);
                    let comm =
                        SocketFabric::bootstrap(rank, size, &layout, Duration::from_secs(30))?;
                    Ok::<T, crate::comm::TransportError>(body(comm))
                })
                .expect("spawn rank thread")
        })
        .collect();
    let mut results = Vec::with_capacity(size);
    for h in handles {
        match h.join() {
            Ok(Ok(v)) => results.push(v),
            Ok(Err(e)) => return Err(e),
            Err(p) => std::panic::resume_unwind(p),
        }
    }
    Ok(results)
}

/// How a supervised run failed: a rank panicked, or a rank failed to
/// finish within its wall-clock budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RankFailure {
    /// A rank's body panicked; `message` is the panic payload when it was
    /// a string.
    Panic { rank: usize, message: String },
    /// A rank did not finish within the budget. Under the global-deadline
    /// fallback the rank reported is one that had not completed when the
    /// budget expired and `last_step` is `None`; under heartbeat
    /// supervision it is the rank that *stopped beating*, with the last
    /// step it completed before going silent.
    Hang {
        rank: usize,
        waited: Duration,
        last_step: Option<usize>,
    },
}

impl std::fmt::Display for RankFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RankFailure::Panic { rank, message } => {
                write!(f, "rank {rank} panicked: {message}")
            }
            RankFailure::Hang {
                rank,
                waited,
                last_step: Some(step),
            } => write!(
                f,
                "rank {rank} stopped beating after completing step {step} \
                 (silent for {:.3}s)",
                waited.as_secs_f64()
            ),
            RankFailure::Hang {
                rank,
                waited,
                last_step: None,
            } => write!(
                f,
                "rank {rank} did not finish within {:.3}s",
                waited.as_secs_f64()
            ),
        }
    }
}

impl std::error::Error for RankFailure {}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Like [`run_ranks`], but supervised: each rank gets `rank_timeout` of
/// wall clock to finish, and a panic in any rank is converted into a
/// structured [`RankFailure`] instead of being re-thrown.
///
/// On failure, ranks still running are *detached*, not killed (Rust
/// threads cannot be cancelled): they keep running until they finish on
/// their own or the process exits, and their results are discarded. The
/// supervisor itself never blocks past the budget — the point is that a
/// deadlocked or wedged experiment surfaces as an error the sweep driver
/// can record and move past, instead of wedging the whole campaign.
pub fn run_ranks_supervised<T, F>(
    size: usize,
    rank_timeout: Duration,
    body: F,
) -> std::result::Result<Vec<T>, RankFailure>
where
    T: Send + 'static,
    F: Fn(LocalComm) -> T + Send + Sync + Clone + 'static,
{
    let comms = LocalFabric::new(size);
    let (tx, rx) = unbounded::<(usize, thread::Result<T>)>();
    let obs = eth_obs::current_context();
    for comm in comms {
        let body = body.clone();
        let tx = tx.clone();
        let obs = obs.clone();
        thread::Builder::new()
            .name(format!("eth-rank-{}", comm.rank()))
            .spawn(move || {
                let _obs = obs.attach();
                eth_obs::set_rank(comm.rank());
                let rank = comm.rank();
                let result =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(comm)));
                let _ = tx.send((rank, result));
            })
            .expect("spawn rank thread");
    }
    drop(tx);
    let deadline = Instant::now() + rank_timeout;
    let mut slots: Vec<Option<T>> = (0..size).map(|_| None).collect();
    let mut finished = 0;
    while finished < size {
        match rx.recv_deadline(deadline) {
            Ok((rank, Ok(value))) => {
                slots[rank] = Some(value);
                finished += 1;
            }
            Ok((rank, Err(payload))) => {
                return Err(RankFailure::Panic {
                    rank,
                    message: panic_message(payload.as_ref()),
                });
            }
            Err(_) => {
                let rank = slots
                    .iter()
                    .position(|s| s.is_none())
                    .expect("timeout with all ranks finished");
                return Err(RankFailure::Hang {
                    rank,
                    waited: rank_timeout,
                    last_step: None,
                });
            }
        }
    }
    Ok(slots.into_iter().map(|s| s.expect("all slots filled")).collect())
}

/// Per-rank liveness beacons: how often a healthy rank must beat, and how
/// many missed intervals mark it dead. Replaces the single global hang
/// deadline for detection (the global budget stays as a backstop): a dead
/// rank is noticed in `interval_ms × miss_budget` milliseconds instead of
/// at the end of the whole run's wall-clock budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeartbeatPolicy {
    /// Expected beacon interval, milliseconds.
    #[serde(default = "default_heartbeat_interval_ms")]
    pub interval_ms: u64,
    /// Consecutive missed intervals before a rank is declared dead.
    #[serde(default = "default_heartbeat_miss_budget")]
    pub miss_budget: u32,
}

fn default_heartbeat_interval_ms() -> u64 {
    25
}

fn default_heartbeat_miss_budget() -> u32 {
    4
}

impl Default for HeartbeatPolicy {
    fn default() -> HeartbeatPolicy {
        HeartbeatPolicy {
            interval_ms: default_heartbeat_interval_ms(),
            miss_budget: default_heartbeat_miss_budget(),
        }
    }
}

impl HeartbeatPolicy {
    /// Silence longer than this marks a rank dead.
    pub fn detection_deadline(&self) -> Duration {
        Duration::from_millis(self.interval_ms.max(1) * self.miss_budget.max(1) as u64)
    }

    /// How often the supervisor scans the board (half the beat interval,
    /// floored at 1 ms, so detection latency stays O(interval)).
    pub fn poll_interval(&self) -> Duration {
        Duration::from_millis((self.interval_ms / 2).max(1))
    }

    /// Sanity-check the policy, naming the offending field.
    pub fn validate(&self) -> std::result::Result<(), String> {
        if self.interval_ms == 0 {
            return Err("heartbeat interval_ms must be > 0".into());
        }
        if self.miss_budget == 0 {
            return Err("heartbeat miss_budget must be > 0".into());
        }
        Ok(())
    }
}

const RANK_ALIVE: u8 = 0;
const RANK_DONE: u8 = 1;
const RANK_DEAD: u8 = 2;

struct RankSlot {
    /// Nanoseconds since board origin of the last beacon.
    last_beat_ns: AtomicU64,
    /// Last *completed* step + 1 (0 = none completed yet).
    last_step: AtomicU64,
    state: AtomicU8,
}

/// One confirmed rank death, as recorded by the supervisor scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeathNotice {
    /// The rank that stopped beating.
    pub rank: usize,
    /// The last step it completed before going silent, if any.
    pub last_step: Option<usize>,
    /// Board-origin nanoseconds of its last beacon.
    pub last_beat_ns: u64,
    /// Board-origin nanoseconds when the supervisor declared it dead.
    pub detected_ns: u64,
}

impl DeathNotice {
    /// Silence between the last beacon and the declaration — the
    /// detection half of recovery latency.
    pub fn detection_latency(&self) -> Duration {
        Duration::from_nanos(self.detected_ns.saturating_sub(self.last_beat_ns))
    }
}

/// Shared liveness board: every rank posts beacons, a supervisor scans for
/// silence, and survivors consult it to learn who died (and at which step)
/// without ever messaging the dead peer. Lock-free on the beat path — one
/// atomic store per beacon.
pub struct HeartbeatBoard {
    origin: Instant,
    slots: Vec<RankSlot>,
    notices: Mutex<Vec<DeathNotice>>,
}

impl HeartbeatBoard {
    /// A board for `size` ranks; every rank starts alive with a beacon at
    /// the origin, so a rank that dies before its first beat is still
    /// detected one detection-deadline after the board is created.
    pub fn new(size: usize) -> Arc<HeartbeatBoard> {
        Arc::new(HeartbeatBoard {
            origin: Instant::now(),
            slots: (0..size)
                .map(|_| RankSlot {
                    last_beat_ns: AtomicU64::new(0),
                    last_step: AtomicU64::new(0),
                    state: AtomicU8::new(RANK_ALIVE),
                })
                .collect(),
            notices: Mutex::new(Vec::new()),
        })
    }

    pub fn size(&self) -> usize {
        self.slots.len()
    }

    /// Nanoseconds since the board's origin (the liveness clock).
    pub fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    /// Post a liveness beacon for `rank`.
    pub fn beat(&self, rank: usize) {
        self.slots[rank].last_beat_ns.store(self.now_ns(), Ordering::Release);
    }

    /// Record that `rank` completed `step`, which doubles as a beacon.
    /// Monotonic: a late or reordered report of an earlier step never
    /// rewinds the attribution (fetch_max, not store), so concurrent
    /// reporters can race without corrupting `last_step`.
    pub fn step_done(&self, rank: usize, step: usize) {
        self.slots[rank]
            .last_step
            .fetch_max(step as u64 + 1, Ordering::AcqRel);
        self.beat(rank);
    }

    /// Mark `rank` cleanly finished: it stops beating and must not be
    /// declared dead. Keeps an existing DEAD state (a dead rank's
    /// tombstone return does not resurrect it).
    pub fn mark_done(&self, rank: usize) {
        let _ = self.slots[rank].state.compare_exchange(
            RANK_ALIVE,
            RANK_DONE,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
    }

    pub fn is_dead(&self, rank: usize) -> bool {
        self.slots[rank].state.load(Ordering::Acquire) == RANK_DEAD
    }

    pub fn is_done(&self, rank: usize) -> bool {
        self.slots[rank].state.load(Ordering::Acquire) == RANK_DONE
    }

    /// The last step `rank` completed, if any.
    pub fn last_step(&self, rank: usize) -> Option<usize> {
        match self.slots[rank].last_step.load(Ordering::Acquire) {
            0 => None,
            s => Some(s as usize - 1),
        }
    }

    /// Board-origin nanoseconds of `rank`'s last beacon.
    pub fn last_beat_ns(&self, rank: usize) -> u64 {
        self.slots[rank].last_beat_ns.load(Ordering::Acquire)
    }

    /// Declare `rank` dead (idempotent). Returns the notice when this call
    /// made the transition.
    pub fn declare_dead(&self, rank: usize) -> Option<DeathNotice> {
        let flipped = self.slots[rank]
            .state
            .compare_exchange(RANK_ALIVE, RANK_DEAD, Ordering::AcqRel, Ordering::Acquire)
            .is_ok();
        if !flipped {
            return None;
        }
        let notice = DeathNotice {
            rank,
            last_step: self.last_step(rank),
            last_beat_ns: self.last_beat_ns(rank),
            detected_ns: self.now_ns(),
        };
        self.notices.lock().unwrap().push(notice);
        Some(notice)
    }

    /// One supervisor scan: declare dead every alive rank silent for
    /// longer than `detection`. Returns the *new* notices.
    pub fn scan(&self, detection: Duration) -> Vec<DeathNotice> {
        let now = self.now_ns();
        let limit = detection.as_nanos() as u64;
        let mut fresh = Vec::new();
        for rank in 0..self.slots.len() {
            if self.slots[rank].state.load(Ordering::Acquire) != RANK_ALIVE {
                continue;
            }
            if now.saturating_sub(self.last_beat_ns(rank)) > limit {
                if let Some(n) = self.declare_dead(rank) {
                    fresh.push(n);
                }
            }
        }
        fresh
    }

    /// All deaths declared so far, in declaration order.
    pub fn deaths(&self) -> Vec<DeathNotice> {
        self.notices.lock().unwrap().clone()
    }

    /// The first death declared for `rank`, if any.
    pub fn death_of(&self, rank: usize) -> Option<DeathNotice> {
        self.notices.lock().unwrap().iter().find(|n| n.rank == rank).copied()
    }

    /// The stalest still-alive rank — the best hang suspect when the
    /// global budget expires before any detection fires.
    pub fn stalest_alive(&self) -> Option<usize> {
        (0..self.slots.len())
            .filter(|&r| self.slots[r].state.load(Ordering::Acquire) == RANK_ALIVE)
            .min_by_key(|&r| self.last_beat_ns(r))
    }

    /// Block until `rank` is declared dead (the parked tombstone path a
    /// kill-injected rank takes: a dead node does not "finish early", it
    /// goes silent until the supervisor notices). Bounded by `budget`.
    pub fn await_death(&self, rank: usize, budget: Duration) -> Option<DeathNotice> {
        let deadline = Instant::now() + budget;
        while Instant::now() < deadline {
            if self.is_dead(rank) {
                return self.death_of(rank);
            }
            thread::sleep(Duration::from_millis(1));
        }
        self.death_of(rank)
    }
}

/// A background heartbeat supervisor scanning a shared board. Used by run
/// modes that spawn their rank threads directly (internode coupling);
/// [`run_ranks_heartbeat`] folds the same scan into its collector loop.
pub struct Supervisor {
    stop: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

/// Spawn a supervisor over `board` scanning at the policy's poll interval.
/// It stops (and its thread joins) when the returned handle is dropped or
/// [`Supervisor::stop`] is called, or on its own once every rank is done
/// or dead.
pub fn spawn_supervisor(board: &Arc<HeartbeatBoard>, policy: HeartbeatPolicy) -> Supervisor {
    let stop = Arc::new(AtomicBool::new(false));
    let flag = stop.clone();
    let board = board.clone();
    let detection = policy.detection_deadline();
    let poll = policy.poll_interval();
    let handle = thread::Builder::new()
        .name("eth-heartbeat-supervisor".into())
        .spawn(move || {
            while !flag.load(Ordering::Acquire) {
                board.scan(detection);
                if (0..board.size()).all(|r| board.is_done(r) || board.is_dead(r)) {
                    break;
                }
                thread::sleep(poll);
            }
        })
        .expect("spawn supervisor thread");
    Supervisor {
        stop,
        handle: Some(handle),
    }
}

impl Supervisor {
    /// Stop scanning and join the supervisor thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Handoff states on a [`MigrationBook`]. A handoff starts `PENDING` and
/// makes exactly one transition: `COMMITTED` (the target accepted and the
/// ack landed) or `ABORTED` (timeout, refusal, or the source's sim rank
/// died mid-handoff).
pub const HANDOFF_PENDING: u8 = 0;
pub const HANDOFF_COMMITTED: u8 = 1;
pub const HANDOFF_ABORTED: u8 = 2;

/// Shared arbitration board for live migration: one atomic cell per
/// planned handoff. The single compare-and-swap out of `PENDING` is the
/// linearization point that makes a migration racing a rank death resolve
/// deterministically — whichever transition lands first wins, both sides
/// observe the same winner, and the loser's path degrades cleanly (a lost
/// commit means "no migration happened"; a lost abort means the new owner
/// already has everything it needs).
pub struct MigrationBook {
    slots: Vec<AtomicU8>,
}

impl MigrationBook {
    /// A book for `handoffs` planned handoffs, all `PENDING`.
    pub fn new(handoffs: usize) -> Arc<MigrationBook> {
        Arc::new(MigrationBook {
            slots: (0..handoffs).map(|_| AtomicU8::new(HANDOFF_PENDING)).collect(),
        })
    }

    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Commit handoff `h`: `PENDING → COMMITTED`. `true` iff this call won
    /// the transition (an already-aborted handoff stays aborted).
    pub fn try_commit(&self, h: usize) -> bool {
        self.slots[h]
            .compare_exchange(
                HANDOFF_PENDING,
                HANDOFF_COMMITTED,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
    }

    /// Abort handoff `h`: `PENDING → ABORTED`. `true` iff this call won
    /// the transition (an already-committed handoff stays committed).
    pub fn abort(&self, h: usize) -> bool {
        self.slots[h]
            .compare_exchange(
                HANDOFF_PENDING,
                HANDOFF_ABORTED,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
    }

    pub fn status(&self, h: usize) -> u8 {
        self.slots[h].load(Ordering::Acquire)
    }

    pub fn is_committed(&self, h: usize) -> bool {
        self.status(h) == HANDOFF_COMMITTED
    }

    pub fn is_aborted(&self, h: usize) -> bool {
        self.status(h) == HANDOFF_ABORTED
    }

    pub fn is_pending(&self, h: usize) -> bool {
        self.status(h) == HANDOFF_PENDING
    }

    /// Handoffs that reached `COMMITTED`.
    pub fn committed(&self) -> usize {
        (0..self.len()).filter(|&h| self.is_committed(h)).count()
    }

    /// Handoffs that reached `ABORTED`.
    pub fn aborted(&self) -> usize {
        (0..self.len()).filter(|&h| self.is_aborted(h)).count()
    }
}

/// Spawn the migration supervisor beside the heartbeat supervisor: it
/// watches the heartbeat board and aborts every still-pending handoff
/// whose partition's sim rank has died — death wins, and the PR 5
/// adoption path takes over for that partition. `watch` maps handoff
/// index → the sim rank whose death invalidates it. The supervisor stops
/// on its own once every watched handoff is resolved or every rank is
/// done-or-dead.
pub fn spawn_migration_supervisor(
    board: &Arc<HeartbeatBoard>,
    book: &Arc<MigrationBook>,
    watch: Vec<(usize, usize)>,
    policy: HeartbeatPolicy,
) -> Supervisor {
    let stop = Arc::new(AtomicBool::new(false));
    let flag = stop.clone();
    let board = board.clone();
    let book = book.clone();
    let poll = policy.poll_interval();
    let handle = thread::Builder::new()
        .name("eth-migration-supervisor".into())
        .spawn(move || {
            while !flag.load(Ordering::Acquire) {
                for &(handoff, sim_rank) in &watch {
                    if book.is_pending(handoff) && board.is_dead(sim_rank) {
                        book.abort(handoff);
                    }
                }
                let all_resolved = watch.iter().all(|&(h, _)| !book.is_pending(h));
                let all_settled =
                    (0..board.size()).all(|r| board.is_done(r) || board.is_dead(r));
                if all_resolved || all_settled {
                    break;
                }
                thread::sleep(poll);
            }
        })
        .expect("spawn migration supervisor thread");
    Supervisor {
        stop,
        handle: Some(handle),
    }
}

/// Result of a heartbeat-supervised run: per-rank outputs (`None` for a
/// rank that died and never reported) plus the deaths that occurred.
#[derive(Debug)]
pub struct HeartbeatRun<T> {
    pub outputs: Vec<Option<T>>,
    pub deaths: Vec<DeathNotice>,
}

/// Like [`run_ranks_supervised`], but liveness comes from per-rank
/// heartbeats instead of one global deadline. Each rank body receives the
/// shared [`HeartbeatBoard`] and must beat at least once per policy
/// interval; the collector doubles as the supervisor, scanning the board
/// between joins. A silent rank is declared dead after
/// `interval × miss_budget` — O(interval), not O(run) — and the run keeps
/// going as long as at most `max_losses` ranks die (survivors consult the
/// board to adopt the dead rank's work). One death too many fails the run
/// with a heartbeat-attributed [`RankFailure::Hang`] naming the rank and
/// its last completed step; `rank_timeout` stays as the global backstop.
pub fn run_ranks_heartbeat<T, F>(
    size: usize,
    policy: HeartbeatPolicy,
    max_losses: usize,
    rank_timeout: Duration,
    body: F,
) -> std::result::Result<HeartbeatRun<T>, RankFailure>
where
    T: Send + 'static,
    F: Fn(LocalComm, Arc<HeartbeatBoard>) -> T + Send + Sync + Clone + 'static,
{
    let board = HeartbeatBoard::new(size);
    let comms = LocalFabric::new(size);
    let (tx, rx) = unbounded::<(usize, thread::Result<T>)>();
    let obs = eth_obs::current_context();
    for comm in comms {
        let body = body.clone();
        let tx = tx.clone();
        let obs = obs.clone();
        let board = board.clone();
        thread::Builder::new()
            .name(format!("eth-rank-{}", comm.rank()))
            .spawn(move || {
                let _obs = obs.attach();
                eth_obs::set_rank(comm.rank());
                let rank = comm.rank();
                board.beat(rank);
                let result =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(comm, board)));
                let _ = tx.send((rank, result));
            })
            .expect("spawn rank thread");
    }
    drop(tx);
    let deadline = Instant::now() + rank_timeout;
    let detection = policy.detection_deadline();
    let poll = policy.poll_interval();
    let mut slots: Vec<Option<T>> = (0..size).map(|_| None).collect();
    let mut reported = vec![false; size];
    let mut reported_count = 0usize;
    // Once every live rank has reported, dead ranks get one more detection
    // window to deliver a parked tombstone before we give up on them.
    let mut tombstone_grace: Option<Instant> = None;
    loop {
        match rx.recv_timeout(poll) {
            Ok((rank, Ok(value))) => {
                board.mark_done(rank);
                slots[rank] = Some(value);
                reported[rank] = true;
                reported_count += 1;
            }
            Ok((rank, Err(payload))) => {
                return Err(RankFailure::Panic {
                    rank,
                    message: panic_message(payload.as_ref()),
                });
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                // every rank thread exited and the queue is drained
                break;
            }
        }
        board.scan(detection);
        let deaths = board.deaths();
        if deaths.len() > max_losses {
            let d = deaths[deaths.len() - 1];
            return Err(RankFailure::Hang {
                rank: d.rank,
                waited: d.detection_latency(),
                last_step: d.last_step,
            });
        }
        if reported_count == size {
            break;
        }
        if (0..size).all(|r| reported[r] || board.is_dead(r)) {
            // only dead ranks outstanding: wait out the tombstone grace
            let since = *tombstone_grace.get_or_insert_with(Instant::now);
            if since.elapsed() > detection {
                break;
            }
        } else {
            tombstone_grace = None;
        }
        if Instant::now() > deadline {
            // global backstop, with heartbeat attribution when possible
            let rank = board
                .stalest_alive()
                .or_else(|| (0..size).find(|&r| !reported[r]))
                .unwrap_or(0);
            return Err(RankFailure::Hang {
                rank,
                waited: rank_timeout,
                last_step: board.last_step(rank),
            });
        }
    }
    Ok(HeartbeatRun {
        outputs: slots,
        deaths: board.deaths(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::{allreduce_f64, barrier};
    use crate::comm::Communicator;
    use bytes::Bytes;

    #[test]
    fn ranks_see_their_ids() {
        let ids = run_ranks(4, |c| (c.rank(), c.size()));
        assert_eq!(ids, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn results_indexed_by_rank() {
        let sq = run_ranks(5, |c| c.rank() * c.rank());
        assert_eq!(sq, vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn ring_pass_over_runner() {
        let sums = run_ranks(4, |c| {
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            c.send(next, 0, Bytes::from(vec![c.rank() as u8])).unwrap();
            let from_prev = c.recv(prev, 0).unwrap()[0] as usize;
            barrier(&c).unwrap();
            from_prev
        });
        assert_eq!(sums, vec![3, 0, 1, 2]);
    }

    #[test]
    fn collectives_work_over_runner() {
        let totals = run_ranks(6, |c| {
            allreduce_f64(&c, vec![1.0], |a, b| a + b).unwrap()[0]
        });
        assert!(totals.iter().all(|&t| t == 6.0));
    }

    #[test]
    fn try_run_ranks_propagates_errors() {
        let r = try_run_ranks(3, |c| {
            if c.rank() == 1 {
                Err(crate::comm::TransportError::InvalidArgument("boom".into()))
            } else {
                Ok(c.rank())
            }
        });
        assert!(r.is_err());
    }

    #[test]
    #[should_panic(expected = "rank 2 exploded")]
    fn rank_panic_propagates() {
        run_ranks(3, |c| {
            if c.rank() == 2 {
                panic!("rank 2 exploded");
            }
        });
    }

    #[test]
    fn supervised_clean_run_matches_unsupervised() {
        let sq = run_ranks_supervised(5, Duration::from_secs(30), |c| c.rank() * c.rank())
            .unwrap();
        assert_eq!(sq, vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn supervised_panic_becomes_structured_failure() {
        let err = run_ranks_supervised(3, Duration::from_secs(30), |c| {
            if c.rank() == 1 {
                panic!("rank 1 exploded");
            }
            c.rank()
        })
        .unwrap_err();
        match err {
            RankFailure::Panic { rank, message } => {
                assert_eq!(rank, 1);
                assert!(message.contains("exploded"), "{message}");
            }
            other => panic!("expected Panic, got {other:?}"),
        }
    }

    #[test]
    fn supervised_hang_becomes_structured_failure() {
        let start = Instant::now();
        let err = run_ranks_supervised(2, Duration::from_millis(100), |c| {
            if c.rank() == 1 {
                // a wedged rank: sleeps far past the budget
                thread::sleep(Duration::from_secs(5));
            }
            c.rank()
        })
        .unwrap_err();
        assert!(
            matches!(err, RankFailure::Hang { rank: 1, .. }),
            "{err:?}"
        );
        // the supervisor must give up at the budget, not wait out the hang
        assert!(start.elapsed() < Duration::from_secs(4));
    }

    fn fast_policy() -> HeartbeatPolicy {
        HeartbeatPolicy {
            interval_ms: 10,
            miss_budget: 3,
        }
    }

    #[test]
    fn heartbeat_policy_defaults_and_serde() {
        let p = HeartbeatPolicy::default();
        assert!(p.validate().is_ok());
        assert_eq!(
            p.detection_deadline(),
            Duration::from_millis(p.interval_ms * p.miss_budget as u64)
        );
        let empty: HeartbeatPolicy = serde_json::from_str("{}").unwrap();
        assert_eq!(empty, HeartbeatPolicy::default());
        let back: HeartbeatPolicy =
            serde_json::from_str(&serde_json::to_string(&fast_policy()).unwrap()).unwrap();
        assert_eq!(back, fast_policy());
        assert!(HeartbeatPolicy { interval_ms: 0, miss_budget: 3 }.validate().is_err());
        assert!(HeartbeatPolicy { interval_ms: 5, miss_budget: 0 }.validate().is_err());
    }

    #[test]
    fn heartbeat_clean_run_matches_unsupervised() {
        let run = run_ranks_heartbeat(
            4,
            fast_policy(),
            0,
            Duration::from_secs(30),
            |c, board| {
                for step in 0..3 {
                    board.step_done(c.rank(), step);
                }
                c.rank() * c.rank()
            },
        )
        .unwrap();
        let values: Vec<usize> = run.outputs.into_iter().map(|o| o.unwrap()).collect();
        assert_eq!(values, vec![0, 1, 4, 9]);
        assert!(run.deaths.is_empty());
    }

    #[test]
    fn heartbeat_detects_the_silent_rank_and_its_last_step() {
        // rank 1 completes step 4, then goes silent forever. With a zero
        // loss budget the run must fail in O(detection deadline) — far
        // under the 30 s global budget — naming rank 1 and step 4.
        let start = Instant::now();
        let err = run_ranks_heartbeat(
            3,
            fast_policy(),
            0,
            Duration::from_secs(30),
            |c, board| {
                board.step_done(c.rank(), 4);
                if c.rank() == 1 {
                    thread::sleep(Duration::from_secs(10));
                }
                c.rank()
            },
        )
        .unwrap_err();
        match err {
            RankFailure::Hang {
                rank,
                last_step,
                waited,
            } => {
                assert_eq!(rank, 1);
                assert_eq!(last_step, Some(4));
                assert!(waited >= fast_policy().detection_deadline());
            }
            other => panic!("expected heartbeat Hang, got {other:?}"),
        }
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "detection took {:?}, not O(interval)",
            start.elapsed()
        );
        let msg = err.to_string();
        assert!(msg.contains("rank 1") && msg.contains("step 4"), "{msg}");
    }

    #[test]
    fn heartbeat_run_survives_a_death_within_the_loss_budget() {
        // rank 2 "dies" at step 1: stops beating and parks until the
        // supervisor declares it dead (the kill-injection protocol), then
        // returns a tombstone. Survivors keep beating until the death is
        // on the board, then finish. max_losses = 1 ⇒ the run completes.
        let run = run_ranks_heartbeat(
            3,
            fast_policy(),
            1,
            Duration::from_secs(30),
            |c, board| {
                let rank = c.rank();
                if rank == 2 {
                    board.step_done(rank, 0);
                    board.await_death(rank, Duration::from_secs(10));
                    return usize::MAX; // tombstone
                }
                for step in 0..5 {
                    board.step_done(rank, step);
                    thread::sleep(Duration::from_millis(5));
                }
                // survivors must be able to observe the death
                while !board.is_dead(2) {
                    board.beat(rank);
                    thread::sleep(Duration::from_millis(2));
                }
                rank
            },
        )
        .unwrap();
        assert_eq!(run.deaths.len(), 1);
        let death = run.deaths[0];
        assert_eq!(death.rank, 2);
        assert_eq!(death.last_step, Some(0));
        assert!(death.detection_latency() >= fast_policy().detection_deadline());
        assert_eq!(run.outputs[0], Some(0));
        assert_eq!(run.outputs[1], Some(1));
        assert_eq!(run.outputs[2], Some(usize::MAX), "tombstone must be kept");
    }

    #[test]
    fn global_deadline_backstop_still_fires_under_heartbeats() {
        // every rank keeps beating but rank 0 never finishes: detection
        // cannot fire (it is not silent), so the global budget must.
        let err = run_ranks_heartbeat(
            2,
            fast_policy(),
            1,
            Duration::from_millis(200),
            |c, board| {
                let rank = c.rank();
                board.step_done(rank, 7);
                if rank == 0 {
                    let t = Instant::now();
                    while t.elapsed() < Duration::from_secs(5) {
                        board.beat(rank);
                        thread::sleep(Duration::from_millis(2));
                    }
                }
                rank
            },
        )
        .unwrap_err();
        match err {
            RankFailure::Hang {
                rank, last_step, ..
            } => {
                assert_eq!(rank, 0);
                assert_eq!(last_step, Some(7), "backstop keeps step attribution");
            }
            other => panic!("expected Hang, got {other:?}"),
        }
    }

    #[test]
    fn board_state_machine_is_idempotent_and_monotonic() {
        let board = HeartbeatBoard::new(2);
        assert_eq!(board.last_step(0), None);
        board.step_done(0, 3);
        assert_eq!(board.last_step(0), Some(3));
        // first declaration yields a notice, the second does not
        assert!(board.declare_dead(0).is_some());
        assert!(board.declare_dead(0).is_none());
        assert!(board.is_dead(0));
        // a dead rank's tombstone return must not resurrect it
        board.mark_done(0);
        assert!(board.is_dead(0) && !board.is_done(0));
        // a done rank can never be declared dead
        board.mark_done(1);
        assert!(board.declare_dead(1).is_none());
        assert!(board.scan(Duration::from_nanos(0)).is_empty());
        assert_eq!(board.deaths().len(), 1);
        assert_eq!(board.death_of(0).unwrap().last_step, Some(3));
        assert!(board.death_of(1).is_none());
    }

    #[test]
    fn standalone_supervisor_declares_silent_ranks() {
        let board = HeartbeatBoard::new(2);
        let sup = spawn_supervisor(&board, fast_policy());
        board.beat(0);
        board.beat(1);
        // rank 1 goes silent; rank 0 keeps beating then finishes
        let t = Instant::now();
        while board.death_of(1).is_none() && t.elapsed() < Duration::from_secs(5) {
            board.beat(0);
            thread::sleep(Duration::from_millis(2));
        }
        let death = board.death_of(1).expect("supervisor never declared rank 1");
        assert_eq!(death.rank, 1);
        assert!(!board.is_dead(0), "a beating rank must stay alive");
        board.mark_done(0);
        sup.stop();
    }

    #[test]
    fn migration_book_transitions_are_exclusive_and_sticky() {
        let book = MigrationBook::new(3);
        assert_eq!(book.len(), 3);
        assert!(book.is_pending(0));
        // first transition wins, the loser observes it
        assert!(book.try_commit(0));
        assert!(!book.abort(0), "commit already won handoff 0");
        assert!(book.is_committed(0));
        assert!(book.abort(1));
        assert!(!book.try_commit(1), "abort already won handoff 1");
        assert!(book.is_aborted(1));
        // transitions are one-shot
        assert!(!book.try_commit(0));
        assert!(!book.abort(1));
        assert_eq!(book.committed(), 1);
        assert_eq!(book.aborted(), 1);
        assert!(book.is_pending(2));
    }

    #[test]
    fn migration_supervisor_aborts_handoffs_of_dead_ranks() {
        let board = HeartbeatBoard::new(3);
        let book = MigrationBook::new(2);
        // handoff 0 rides sim rank 1, handoff 1 rides sim rank 2
        let sup = spawn_migration_supervisor(
            &board,
            &book,
            vec![(0, 1), (1, 2)],
            fast_policy(),
        );
        // rank 2's handoff commits before the death lands: commit sticks
        assert!(book.try_commit(1));
        board.declare_dead(1);
        board.declare_dead(2);
        let t = Instant::now();
        while book.is_pending(0) && t.elapsed() < Duration::from_secs(5) {
            thread::sleep(Duration::from_millis(1));
        }
        sup.stop();
        assert!(book.is_aborted(0), "death must abort the pending handoff");
        assert!(book.is_committed(1), "a committed handoff survives the death");
    }

    #[test]
    fn step_done_never_rewinds_attribution() {
        let board = HeartbeatBoard::new(1);
        board.step_done(0, 5);
        // a late report of an earlier step is absorbed, not a rewind
        board.step_done(0, 2);
        assert_eq!(board.last_step(0), Some(5));
        board.step_done(0, 7);
        assert_eq!(board.last_step(0), Some(7));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// Step attribution is monotonic per rank no matter how
            /// reporters interleave: two writer threads race randomly
            /// ordered `step_done` calls while a reader samples, and the
            /// observed sequence never decreases; the final attribution is
            /// the maximum reported step.
            #[test]
            fn step_attribution_is_monotonic_under_interleavings(
                ops in prop::collection::vec((0usize..2, 0usize..40), 4..40),
            ) {
                let board = HeartbeatBoard::new(2);
                let split = ops.len() / 2;
                let halves = [ops[..split].to_vec(), ops[split..].to_vec()];
                let stop = Arc::new(AtomicBool::new(false));
                let reader = {
                    let board = board.clone();
                    let stop = stop.clone();
                    thread::spawn(move || {
                        let mut seen: [Vec<Option<usize>>; 2] = [Vec::new(), Vec::new()];
                        while !stop.load(Ordering::Acquire) {
                            for (rank, log) in seen.iter_mut().enumerate() {
                                log.push(board.last_step(rank));
                            }
                        }
                        seen
                    })
                };
                let writers: Vec<_> = halves
                    .into_iter()
                    .map(|half| {
                        let board = board.clone();
                        thread::spawn(move || {
                            for (rank, step) in half {
                                board.step_done(rank, step);
                            }
                        })
                    })
                    .collect();
                for w in writers {
                    w.join().unwrap();
                }
                stop.store(true, Ordering::Release);
                let seen = reader.join().unwrap();
                for (rank, seen_rank) in seen.iter().enumerate() {
                    for pair in seen_rank.windows(2) {
                        prop_assert!(
                            pair[1] >= pair[0],
                            "rank {} attribution rewound: {:?} -> {:?}",
                            rank, pair[0], pair[1]
                        );
                    }
                    let expect = ops
                        .iter()
                        .filter(|(r, _)| *r == rank)
                        .map(|&(_, s)| s)
                        .max();
                    prop_assert_eq!(board.last_step(rank), expect);
                }
            }

            /// Death notices never report negative silence: whatever the
            /// interleaving of beats, step reports, and declarations, every
            /// notice's detection timestamp is at or after the last beacon
            /// it blames, and each rank dies at most once.
            #[test]
            fn death_latency_is_non_negative_under_interleavings(
                ops in prop::collection::vec((0usize..3, 0u8..4, 0usize..16), 4..48),
            ) {
                let board = HeartbeatBoard::new(3);
                let split = ops.len() / 2;
                let halves = [ops[..split].to_vec(), ops[split..].to_vec()];
                let workers: Vec<_> = halves
                    .into_iter()
                    .map(|half| {
                        let board = board.clone();
                        thread::spawn(move || {
                            for (rank, op, step) in half {
                                match op {
                                    0 => board.beat(rank),
                                    1 => board.step_done(rank, step),
                                    2 => {
                                        board.declare_dead(rank);
                                    }
                                    _ => {
                                        board.scan(Duration::from_nanos(step as u64));
                                    }
                                }
                            }
                        })
                    })
                    .collect();
                for w in workers {
                    w.join().unwrap();
                }
                let deaths = board.deaths();
                for d in &deaths {
                    prop_assert!(
                        d.detected_ns >= d.last_beat_ns,
                        "rank {} declared dead {}ns before its last beacon",
                        d.rank,
                        d.last_beat_ns - d.detected_ns
                    );
                    prop_assert!(d.detection_latency() >= Duration::ZERO);
                }
                for rank in 0..3 {
                    prop_assert!(
                        deaths.iter().filter(|d| d.rank == rank).count() <= 1,
                        "rank {} died more than once", rank
                    );
                }
            }
        }
    }

    #[test]
    fn socket_runner_end_to_end() {
        let dir = std::env::temp_dir().join("eth-runner-socket-test");
        let _ = std::fs::remove_dir_all(&dir);
        let sums = run_ranks_socket(3, &dir, |c| {
            allreduce_f64(&c, vec![c.rank() as f64], |a, b| a + b).unwrap()[0]
        })
        .unwrap();
        assert_eq!(sums, vec![3.0, 3.0, 3.0]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
