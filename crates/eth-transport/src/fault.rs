//! Deterministic fault plans: the experiment axis for chaos testing.
//!
//! A [`FaultPlan`] describes *which* faults to inject (drop, corruption,
//! latency, peer disconnect) as a pure function of the message key
//! `(from, to, tag, sequence)` and a seed — never of wall-clock time or a
//! shared mutable RNG — so the same plan produces the *same* fault
//! schedule on every run. That makes fault scenarios sweepable experiment
//! parameters exactly like sampling ratio or coupling: serialize the plan
//! into the experiment spec, vary the seed or the probabilities, and the
//! observed degradation is reproducible.
//!
//! The plan only *describes* faults; [`crate::chaos::ChaosComm`] and
//! [`crate::chaos::ChaosChannel`] enact them around a real communicator.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Default data-tag window: faults apply to harness data traffic
/// (tags `>= 0x1000`) but never to collective tags
/// (`>= `[`crate::collectives::COLLECTIVE_TAG_BASE`]), so compositing
/// barriers and gathers stay reliable while the data path misbehaves.
pub const DATA_TAG_MIN: u32 = 0x1000;

/// splitmix64: tiny, statistically solid, dependency-free PRNG. Used for
/// fault decisions and backoff jitter; NOT for cryptography.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Which side of a channel a decision is made on. Send-side decisions
/// (drop, delay, wire corruption) and receive-side decisions (integrity
/// failure) draw from independent streams so wrapping both endpoints of a
/// link with the same plan never double-applies a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultSide {
    Send,
    Recv,
}

/// The faults that apply to one message, decided deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultDecision {
    /// Injected latency before the operation proceeds.
    pub delay_ms: u64,
    /// Message is silently lost.
    pub drop: bool,
    /// Payload is mangled (send side) or fails integrity (recv side).
    pub corrupt: bool,
}

impl FaultDecision {
    pub fn is_clean(&self) -> bool {
        self.delay_ms == 0 && !self.drop && !self.corrupt
    }
}

/// Kill the link to `peer` once `after_messages` messages have crossed it
/// (in the direction of the endpoint evaluating the plan).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DisconnectSpec {
    pub peer: usize,
    pub after_messages: u64,
}

/// Kill rank `rank` outright when it reaches step `step`: the rank stops
/// beating and stops sending, as if its node dropped off the fabric. Unlike
/// [`DisconnectSpec`] (which severs one link), a kill takes the whole rank
/// out — every peer loses it at once, and only a recovery policy (heartbeat
/// detection + partition adoption) lets the run complete. Deterministic by
/// construction: the same `(rank, step)` kills at the same point every run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KillSpec {
    /// Rank to kill (a simulation-side rank under intercore/internode).
    pub rank: usize,
    /// Step index (0-based) at which the rank dies, before producing that
    /// step's data.
    pub step: usize,
}

/// A complete, serializable fault scenario.
///
/// The default plan is inert: zero probabilities, no disconnect, no
/// deadline — wrapping a communicator with it changes nothing. Use
/// [`FaultPlan::seeded`] for a chaos-ready baseline (2 s receive deadline,
/// 30 s rank supervision) and the `with_*` builders to add faults.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for every fault decision in this plan.
    #[serde(default)]
    pub seed: u64,
    /// Probability a message is silently dropped (send side).
    #[serde(default)]
    pub drop_prob: f64,
    /// Probability a payload is corrupted.
    #[serde(default)]
    pub corrupt_prob: f64,
    /// Probability a message is delayed by `delay_ms`.
    #[serde(default)]
    pub delay_prob: f64,
    /// Injected latency when a delay fault fires, milliseconds.
    #[serde(default)]
    pub delay_ms: u64,
    /// Kill one peer's link mid-run.
    #[serde(default)]
    pub disconnect: Option<DisconnectSpec>,
    /// Kill one whole rank at a given step (requires a recovery policy on
    /// the experiment for the run to survive).
    #[serde(default)]
    pub kill_rank_at_step: Option<KillSpec>,
    /// Faults (and receive deadlines) apply only to tags in
    /// `[min_tag, max_tag)`.
    #[serde(default = "default_min_tag")]
    pub min_tag: u32,
    #[serde(default = "default_max_tag")]
    pub max_tag: u32,
    /// Receive deadline on fault-targeted tags, milliseconds; 0 = none.
    /// When set, no receive on the data path can block indefinitely.
    #[serde(default)]
    pub recv_deadline_ms: u64,
    /// Per-rank wall-clock budget for supervised runs, milliseconds;
    /// 0 = unsupervised.
    #[serde(default)]
    pub rank_timeout_ms: u64,
    /// Fail the Nth (0-based) journal append with a disk-full error —
    /// resource exhaustion as a seeded, deterministic fault. Counted per
    /// journal, so the same plan tears the same append on every run.
    #[serde(default)]
    pub disk_full_at_append: Option<u64>,
    /// Fail the Nth (0-based) staged-block allocation with an
    /// out-of-memory error, exercising the retry/quarantine path the
    /// same way a real allocation failure would.
    #[serde(default)]
    pub alloc_fail_at_stage: Option<u64>,
}

fn default_min_tag() -> u32 {
    DATA_TAG_MIN
}

fn default_max_tag() -> u32 {
    crate::collectives::COLLECTIVE_TAG_BASE
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan {
            seed: 0,
            drop_prob: 0.0,
            corrupt_prob: 0.0,
            delay_prob: 0.0,
            delay_ms: 0,
            disconnect: None,
            kill_rank_at_step: None,
            min_tag: default_min_tag(),
            max_tag: default_max_tag(),
            recv_deadline_ms: 0,
            rank_timeout_ms: 0,
            disk_full_at_append: None,
            alloc_fail_at_stage: None,
        }
    }
}

impl FaultPlan {
    /// A chaos-ready baseline: no faults yet, but a 2 s receive deadline
    /// and a 30 s per-rank supervision budget so injected faults degrade
    /// runs instead of hanging them.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            recv_deadline_ms: 2_000,
            rank_timeout_ms: 30_000,
            ..FaultPlan::default()
        }
    }

    pub fn with_drop(mut self, prob: f64) -> Self {
        self.drop_prob = prob;
        self
    }

    pub fn with_corrupt(mut self, prob: f64) -> Self {
        self.corrupt_prob = prob;
        self
    }

    pub fn with_delay(mut self, prob: f64, delay_ms: u64) -> Self {
        self.delay_prob = prob;
        self.delay_ms = delay_ms;
        self
    }

    pub fn with_disconnect(mut self, peer: usize, after_messages: u64) -> Self {
        self.disconnect = Some(DisconnectSpec {
            peer,
            after_messages,
        });
        self
    }

    pub fn with_kill_rank_at_step(mut self, rank: usize, step: usize) -> Self {
        self.kill_rank_at_step = Some(KillSpec { rank, step });
        self
    }

    pub fn with_disk_full_at_append(mut self, append: u64) -> Self {
        self.disk_full_at_append = Some(append);
        self
    }

    pub fn with_alloc_fail_at_stage(mut self, stage: u64) -> Self {
        self.alloc_fail_at_stage = Some(stage);
        self
    }

    pub fn with_recv_deadline_ms(mut self, ms: u64) -> Self {
        self.recv_deadline_ms = ms;
        self
    }

    pub fn with_rank_timeout_ms(mut self, ms: u64) -> Self {
        self.rank_timeout_ms = ms;
        self
    }

    /// Does the plan apply to this tag?
    pub fn targets(&self, tag: u32) -> bool {
        tag >= self.min_tag && tag < self.max_tag
    }

    /// Any fault configured at all? (An inert plan wraps transparently.)
    pub fn is_active(&self) -> bool {
        self.drop_prob > 0.0
            || self.corrupt_prob > 0.0
            || self.delay_prob > 0.0
            || self.disconnect.is_some()
    }

    /// The receive deadline, if one is configured.
    pub fn deadline(&self) -> Option<Duration> {
        (self.recv_deadline_ms > 0).then(|| Duration::from_millis(self.recv_deadline_ms))
    }

    /// The per-rank supervision budget, if one is configured.
    pub fn rank_timeout(&self) -> Option<Duration> {
        (self.rank_timeout_ms > 0).then(|| Duration::from_millis(self.rank_timeout_ms))
    }

    /// Has the link to `peer` been severed by the time message
    /// `seq` (0-based) crosses it?
    pub fn disconnects(&self, peer: usize, seq: u64) -> bool {
        matches!(self.disconnect, Some(d) if d.peer == peer && seq >= d.after_messages)
    }

    /// Does the plan kill `rank` at (or before) `step`? The harness checks
    /// this at each step boundary; a killed rank stops beating and stops
    /// producing data from that step on.
    pub fn kills(&self, rank: usize, step: usize) -> bool {
        matches!(self.kill_rank_at_step, Some(k) if k.rank == rank && step >= k.step)
    }

    /// Check every numeric field is inside its legal domain, naming the
    /// offending field in the error. Inert (default) plans always pass.
    /// `ExperimentSpec::validate` delegates here so an out-of-range plan is
    /// rejected before a campaign schedules it.
    pub fn validate(&self) -> std::result::Result<(), String> {
        for (name, p) in [
            ("drop_prob", self.drop_prob),
            ("corrupt_prob", self.corrupt_prob),
            ("delay_prob", self.delay_prob),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("fault plan {name} {p} outside [0, 1]"));
            }
        }
        if self.delay_prob > 0.0 && self.delay_ms == 0 {
            return Err(
                "fault plan delay_prob > 0 but delay_ms is 0; a delay fault must inject latency"
                    .into(),
            );
        }
        if self.min_tag >= self.max_tag {
            return Err(format!(
                "fault plan tag window [{:#x}, {:#x}) is empty",
                self.min_tag, self.max_tag
            ));
        }
        // a plan that can lose messages must bound the waits it causes,
        // or the run would hang instead of degrading
        let lossy = self.drop_prob > 0.0 || self.disconnect.is_some();
        if lossy && self.recv_deadline_ms == 0 {
            return Err(
                "fault plan drops or disconnects but sets no recv_deadline_ms; \
                 receivers would block forever on lost messages"
                    .into(),
            );
        }
        Ok(())
    }

    /// Contextual validation for [`FaultPlan::kill_rank_at_step`]: the plan
    /// alone cannot know the run shape, so callers that do (the experiment
    /// spec) pass it in. Rejects a victim rank or kill step that the run
    /// never reaches — a kill that silently never fires is a
    /// misconfiguration, not a clean run.
    pub fn validate_kill(&self, ranks: usize, steps: usize) -> std::result::Result<(), String> {
        let Some(kill) = self.kill_rank_at_step else {
            return Ok(());
        };
        if kill.rank >= ranks {
            return Err(format!(
                "kill_rank_at_step.rank {} outside {} sim ranks",
                kill.rank, ranks
            ));
        }
        if kill.step >= steps {
            return Err(format!(
                "kill_rank_at_step.step {} outside {} steps",
                kill.step, steps
            ));
        }
        Ok(())
    }

    /// Decide the faults for one message: a pure function of the plan and
    /// the message key, so the schedule is identical on every run.
    pub fn decide(&self, side: FaultSide, from: usize, to: usize, tag: u32, seq: u64) -> FaultDecision {
        if !self.targets(tag) || !self.is_active() {
            return FaultDecision::default();
        }
        // distinct stream per side so wrapping both endpoints of one link
        // never double-applies a fault
        let salt: u64 = match side {
            FaultSide::Send => 0x5EBD,
            FaultSide::Recv => 0x2ECF,
        };
        let key = (self.seed ^ salt.wrapping_mul(0xD6E8_FEB8_6659_FD93))
            .wrapping_add((from as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((to as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
            .wrapping_add((tag as u64).wrapping_mul(0x1656_67B1_9E37_79F9))
            .wrapping_add(seq.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        let mut rng = SplitMix64::new(key);
        FaultDecision {
            drop: rng.next_f64() < self.drop_prob,
            corrupt: rng.next_f64() < self.corrupt_prob,
            delay_ms: if rng.next_f64() < self.delay_prob {
                self.delay_ms
            } else {
                0
            },
        }
    }
}

/// One injected fault, for the reproducibility log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    pub kind: FaultKind,
    pub from: usize,
    pub to: usize,
    pub tag: u32,
    pub seq: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    Delay,
    Drop,
    Corrupt,
    Disconnect,
}

/// The serializable *shape* of an exponential backoff — base and cap in
/// milliseconds — so retry timing can ride inside an experiment spec or a
/// campaign retry policy like any other swept parameter. Build a runnable
/// [`Backoff`] with [`BackoffShape::instantiate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BackoffShape {
    /// First retry interval, milliseconds.
    #[serde(default = "default_backoff_base_ms")]
    pub base_ms: u64,
    /// Interval growth stops here, milliseconds.
    #[serde(default = "default_backoff_cap_ms")]
    pub cap_ms: u64,
}

fn default_backoff_base_ms() -> u64 {
    1
}

fn default_backoff_cap_ms() -> u64 {
    100
}

impl Default for BackoffShape {
    fn default() -> BackoffShape {
        BackoffShape {
            base_ms: default_backoff_base_ms(),
            cap_ms: default_backoff_cap_ms(),
        }
    }
}

impl BackoffShape {
    /// Build a runnable [`Backoff`] with this shape, a jitter seed, and an
    /// attempt budget.
    pub fn instantiate(&self, seed: u64, budget: u32) -> Backoff {
        Backoff::with_shape(
            seed,
            Duration::from_millis(self.base_ms.max(1)),
            Duration::from_millis(self.cap_ms.max(1)),
            budget,
        )
    }
}

/// Exponential backoff with deterministic jitter and an attempt budget,
/// replacing fixed-interval spin loops during bootstrap. Jitter draws from
/// a seeded [`SplitMix64`], so retry timing is reproducible per rank while
/// still decorrelated across ranks (no thundering herd on the listener).
#[derive(Debug)]
pub struct Backoff {
    attempt: u32,
    budget: u32,
    base: Duration,
    cap: Duration,
    rng: SplitMix64,
}

impl Backoff {
    /// Default shape: 1 ms doubling to a 100 ms cap, 1000-attempt budget.
    pub fn new(seed: u64) -> Backoff {
        Backoff::with_shape(seed, Duration::from_millis(1), Duration::from_millis(100), 1000)
    }

    pub fn with_shape(seed: u64, base: Duration, cap: Duration, budget: u32) -> Backoff {
        Backoff {
            attempt: 0,
            budget,
            base,
            cap,
            rng: SplitMix64::new(seed),
        }
    }

    /// Attempts consumed so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// The next sleep interval, or `None` when the retry budget is spent.
    /// The interval is `base * 2^attempt` (capped) jittered uniformly into
    /// `[0.5x, 1.5x)`.
    pub fn next_delay(&mut self) -> Option<Duration> {
        if self.attempt >= self.budget {
            return None;
        }
        let exp = self.attempt.min(20);
        let raw = self
            .base
            .saturating_mul(1u32 << exp)
            .min(self.cap)
            .max(Duration::from_micros(100));
        let nanos = raw.as_nanos() as u64;
        let jittered = nanos / 2 + self.rng.next_u64() % nanos.max(1);
        self.attempt += 1;
        Some(Duration::from_nanos(jittered))
    }

    /// Sleep for the next interval; `false` when the budget is spent.
    pub fn snooze(&mut self) -> bool {
        match self.next_delay() {
            Some(d) => {
                let _span = eth_obs::span(eth_obs::Phase::Backoff);
                std::thread::sleep(d);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_uniform_ish() {
        let mut a = SplitMix64::new(9);
        let mut b = SplitMix64::new(9);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mean: f64 = (0..1000).map(|_| a.next_f64()).sum::<f64>() / 1000.0;
        assert!((0.4..0.6).contains(&mean), "mean {mean}");
    }

    #[test]
    fn decisions_are_pure_functions_of_the_key() {
        let plan = FaultPlan::seeded(7).with_drop(0.3).with_corrupt(0.2);
        for seq in 0..100 {
            let a = plan.decide(FaultSide::Send, 0, 1, 0x1001, seq);
            let b = plan.decide(FaultSide::Send, 0, 1, 0x1001, seq);
            assert_eq!(a, b);
        }
        // different seeds give different schedules
        let other = FaultPlan::seeded(8).with_drop(0.3).with_corrupt(0.2);
        let differs = (0..100).any(|seq| {
            plan.decide(FaultSide::Send, 0, 1, 0x1001, seq)
                != other.decide(FaultSide::Send, 0, 1, 0x1001, seq)
        });
        assert!(differs, "seed change did not change the schedule");
    }

    #[test]
    fn probabilities_are_roughly_honored() {
        let plan = FaultPlan::seeded(42).with_drop(0.5);
        let drops = (0..1000)
            .filter(|&seq| plan.decide(FaultSide::Send, 0, 1, 0x1001, seq).drop)
            .count();
        assert!((350..650).contains(&drops), "drops {drops}");
    }

    #[test]
    fn collective_tags_are_never_faulted() {
        let plan = FaultPlan::seeded(1).with_drop(1.0).with_corrupt(1.0);
        let d = plan.decide(
            FaultSide::Send,
            0,
            1,
            crate::collectives::COLLECTIVE_TAG_BASE + 5,
            0,
        );
        assert!(d.is_clean());
        // tags below the data window are also exempt
        assert!(plan.decide(FaultSide::Send, 0, 1, 5, 0).is_clean());
    }

    #[test]
    fn disconnect_threshold() {
        let plan = FaultPlan::seeded(3).with_disconnect(2, 5);
        assert!(!plan.disconnects(2, 4));
        assert!(plan.disconnects(2, 5));
        assert!(plan.disconnects(2, 99));
        assert!(!plan.disconnects(1, 99));
    }

    #[test]
    fn plan_roundtrips_through_serde() {
        let plan = FaultPlan::seeded(11)
            .with_drop(0.25)
            .with_delay(0.1, 15)
            .with_disconnect(1, 3)
            .with_kill_rank_at_step(1, 2);
        let text = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&text).unwrap();
        assert_eq!(plan, back);
        // defaults fill in for an empty plan
        let empty: FaultPlan = serde_json::from_str("{}").unwrap();
        assert_eq!(empty, FaultPlan::default());
        assert!(!empty.is_active());
    }

    #[test]
    fn resource_faults_roundtrip_and_stay_off_the_message_path() {
        let plan = FaultPlan::seeded(5)
            .with_disk_full_at_append(3)
            .with_alloc_fail_at_stage(1);
        let text = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&text).unwrap();
        assert_eq!(plan, back);
        assert_eq!(back.disk_full_at_append, Some(3));
        assert_eq!(back.alloc_fail_at_stage, Some(1));
        // resource exhaustion is not a message fault: the chaos wrapper
        // on the data path stays inert
        assert!(!plan.is_active());
        assert!(plan.validate().is_ok());
        // legacy plans (no resource fields) still parse, defaulting off
        let legacy: FaultPlan = serde_json::from_str(r#"{"seed":9,"drop_prob":0.0}"#).unwrap();
        assert_eq!(legacy.disk_full_at_append, None);
        assert_eq!(legacy.alloc_fail_at_stage, None);
    }

    #[test]
    fn kill_spec_is_deterministic_and_scoped_to_its_rank() {
        let plan = FaultPlan::seeded(3).with_kill_rank_at_step(1, 2);
        // the kill is not a message fault: the data path stays inert
        assert!(!plan.is_active());
        assert!(!plan.kills(1, 0));
        assert!(!plan.kills(1, 1));
        assert!(plan.kills(1, 2), "rank dies at its kill step");
        assert!(plan.kills(1, 5), "…and stays dead afterwards");
        assert!(!plan.kills(0, 2), "other ranks are untouched");
        assert!(!FaultPlan::default().kills(1, 2));
    }

    #[test]
    fn validate_names_the_offending_field() {
        assert!(FaultPlan::default().validate().is_ok());
        assert!(FaultPlan::seeded(1).with_drop(0.3).validate().is_ok());

        let bad = FaultPlan::seeded(1).with_drop(1.5);
        assert!(bad.validate().unwrap_err().contains("drop_prob"));
        let bad = FaultPlan::seeded(1).with_corrupt(-0.1);
        assert!(bad.validate().unwrap_err().contains("corrupt_prob"));
        let bad = FaultPlan::seeded(1).with_delay(f64::NAN, 5);
        assert!(bad.validate().unwrap_err().contains("delay_prob"));
        let bad = FaultPlan::seeded(1).with_delay(0.2, 0);
        assert!(bad.validate().unwrap_err().contains("delay_ms"));

        let mut bad = FaultPlan::seeded(1);
        bad.max_tag = bad.min_tag;
        assert!(bad.validate().unwrap_err().contains("tag window"));

        // lossy without a deadline would hang instead of degrading
        let bad = FaultPlan::default().with_drop(0.1);
        assert!(bad.validate().unwrap_err().contains("recv_deadline_ms"));
    }

    #[test]
    fn kill_spec_bounds_are_checked_against_the_run_shape() {
        // no kill configured: any shape passes
        assert!(FaultPlan::default().validate_kill(1, 1).is_ok());
        let plan = FaultPlan::seeded(1).with_kill_rank_at_step(1, 2);
        assert!(plan.validate_kill(2, 3).is_ok());
        // a victim rank the run never spawns
        let err = plan.validate_kill(1, 3).unwrap_err();
        assert!(err.contains("rank 1"), "{err}");
        // a kill step the run never reaches would silently never fire
        let err = plan.validate_kill(2, 2).unwrap_err();
        assert!(err.contains("step 2"), "{err}");
    }

    #[test]
    fn backoff_shape_roundtrips_and_instantiates() {
        let shape = BackoffShape { base_ms: 2, cap_ms: 32 };
        let text = serde_json::to_string(&shape).unwrap();
        let back: BackoffShape = serde_json::from_str(&text).unwrap();
        assert_eq!(shape, back);
        let empty: BackoffShape = serde_json::from_str("{}").unwrap();
        assert_eq!(empty, BackoffShape::default());

        let mut b = shape.instantiate(9, 3);
        let delays: Vec<Duration> = std::iter::from_fn(|| b.next_delay()).collect();
        assert_eq!(delays.len(), 3, "budget not honored");
        assert!(delays[0] >= Duration::from_millis(1)); // jitter floor of 2 ms base
        // same seed, same shape => identical timing
        let mut c = shape.instantiate(9, 3);
        assert_eq!(c.next_delay().unwrap(), delays[0]);
    }

    #[test]
    fn backoff_grows_caps_and_budgets() {
        let mut b = Backoff::with_shape(
            5,
            Duration::from_millis(1),
            Duration::from_millis(16),
            6,
        );
        let delays: Vec<Duration> = std::iter::from_fn(|| b.next_delay()).collect();
        assert_eq!(delays.len(), 6, "budget not enforced");
        // jitter keeps every delay within [0.5x, 1.5x) of the capped ideal
        for (i, d) in delays.iter().enumerate() {
            let ideal = Duration::from_millis((1u64 << i).min(16));
            assert!(*d >= ideal / 2, "attempt {i}: {d:?} under jitter floor");
            assert!(*d < ideal * 3 / 2 + Duration::from_millis(1), "attempt {i}: {d:?} over");
        }
        // deterministic per seed
        let mut b1 = Backoff::new(77);
        let mut b2 = Backoff::new(77);
        assert_eq!(b1.next_delay(), b2.next_delay());
    }
}
