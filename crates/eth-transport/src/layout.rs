//! The global layout file.
//!
//! "Each process of the [simulation proxy] application then adds its
//! assigned IP address and port number to a globally accessible layout
//! file, then opens its port and waits for connection. The visualization
//! proxy application is then started. Each process … references the global
//! layout file, determines the location of the simulation proxy(s) it will
//! receive data from, waits for the corresponding port to open, and then
//! establishes the connection." (Section III-C)
//!
//! To make concurrent publication race-free without file locking, the
//! "layout file" is a directory: each rank writes `rank_<n>.addr`
//! atomically (write to temp + rename). Readers poll until the expected
//! number of entries exists.

use crate::comm::{Result, TransportError};
use std::collections::BTreeMap;
use std::fs;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Handle to a layout directory.
#[derive(Debug, Clone)]
pub struct LayoutFile {
    dir: PathBuf,
}

impl LayoutFile {
    /// Create (or reuse) the layout directory.
    pub fn create(dir: &Path) -> Result<LayoutFile> {
        fs::create_dir_all(dir)?;
        Ok(LayoutFile {
            dir: dir.to_path_buf(),
        })
    }

    fn entry_path(&self, rank: usize) -> PathBuf {
        self.dir.join(format!("rank_{rank:04}.addr"))
    }

    /// Publish this rank's address (atomic write).
    pub fn publish(&self, rank: usize, addr: SocketAddr) -> Result<()> {
        let tmp = self.dir.join(format!(".rank_{rank:04}.tmp"));
        fs::write(&tmp, addr.to_string())?;
        fs::rename(&tmp, self.entry_path(rank))?;
        Ok(())
    }

    /// Read one rank's published address, if present.
    pub fn lookup(&self, rank: usize) -> Result<Option<SocketAddr>> {
        let path = self.entry_path(rank);
        match fs::read_to_string(&path) {
            Ok(text) => {
                let addr = text.trim().parse::<SocketAddr>().map_err(|e| {
                    TransportError::Bootstrap(format!("bad address '{}': {e}", text.trim()))
                })?;
                Ok(Some(addr))
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    /// Block until `ranks` addresses are published (polling), or time out.
    pub fn wait_for(
        &self,
        ranks: usize,
        timeout: Duration,
    ) -> Result<BTreeMap<usize, SocketAddr>> {
        let deadline = Instant::now() + timeout;
        loop {
            let mut found = BTreeMap::new();
            for rank in 0..ranks {
                if let Some(addr) = self.lookup(rank)? {
                    found.insert(rank, addr);
                }
            }
            if found.len() == ranks {
                return Ok(found);
            }
            if Instant::now() > deadline {
                return Err(TransportError::Bootstrap(format!(
                    "timed out waiting for layout: {}/{} ranks published",
                    found.len(),
                    ranks
                )));
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Remove all published entries (start of a fresh experiment).
    pub fn clear(&self) -> Result<()> {
        if self.dir.exists() {
            for entry in fs::read_dir(&self.dir)? {
                let entry = entry?;
                if entry
                    .file_name()
                    .to_string_lossy()
                    .ends_with(".addr")
                {
                    fs::remove_file(entry.path())?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("eth-layout-tests").join(name);
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn publish_and_lookup() {
        let layout = LayoutFile::create(&tmp("pub")).unwrap();
        let addr: SocketAddr = "127.0.0.1:4567".parse().unwrap();
        layout.publish(2, addr).unwrap();
        assert_eq!(layout.lookup(2).unwrap(), Some(addr));
        assert_eq!(layout.lookup(0).unwrap(), None);
    }

    #[test]
    fn wait_for_sees_concurrent_publishers() {
        let layout = LayoutFile::create(&tmp("wait")).unwrap();
        let l2 = layout.clone();
        let t = thread::spawn(move || {
            for rank in 0..3 {
                thread::sleep(Duration::from_millis(10));
                l2.publish(rank, format!("127.0.0.1:{}", 5000 + rank).parse().unwrap())
                    .unwrap();
            }
        });
        let map = layout.wait_for(3, Duration::from_secs(5)).unwrap();
        assert_eq!(map.len(), 3);
        assert_eq!(map[&1], "127.0.0.1:5001".parse().unwrap());
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let layout = LayoutFile::create(&tmp("timeout")).unwrap();
        layout
            .publish(0, "127.0.0.1:9000".parse().unwrap())
            .unwrap();
        let err = layout.wait_for(2, Duration::from_millis(50)).unwrap_err();
        assert!(err.to_string().contains("1/2"));
    }

    #[test]
    fn clear_removes_entries() {
        let layout = LayoutFile::create(&tmp("clear")).unwrap();
        layout
            .publish(0, "127.0.0.1:9000".parse().unwrap())
            .unwrap();
        layout.clear().unwrap();
        assert_eq!(layout.lookup(0).unwrap(), None);
    }

    #[test]
    fn corrupt_entry_reports_bootstrap_error() {
        let dir = tmp("corrupt");
        let layout = LayoutFile::create(&dir).unwrap();
        fs::write(dir.join("rank_0000.addr"), "not an address").unwrap();
        assert!(matches!(
            layout.lookup(0),
            Err(TransportError::Bootstrap(_))
        ));
    }
}
