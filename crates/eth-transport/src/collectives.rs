//! Collective operations built on point-to-point messaging.
//!
//! The harness needs barriers (phase separation under intercore coupling),
//! gather (image compositing to root), broadcast (experiment parameters),
//! and reduce/allreduce (metric aggregation). All are implemented as
//! binomial trees / dissemination rounds over [`Communicator`], so they run
//! unchanged over the in-process and socket backends.
//!
//! Tags: collectives use the top tag bits (`0xC0xx_xxxx`) with the round
//! number encoded, so user traffic (low tags) never collides as long as it
//! stays below [`COLLECTIVE_TAG_BASE`]. Above the collectives sits the
//! **control plane** (`0xE0xx_xxxx`): liveness and recovery notices such as
//! partition-adoption announcements. Both classes are outside the default
//! fault-plan tag window — chaos may lose *data*, never the messages that
//! coordinate reacting to the loss — but unlike collectives the control
//! plane is liveness-aware: control receives always carry a deadline, so a
//! dead peer degrades the run instead of deadlocking it.

use crate::comm::{Communicator, Result, TransportError};
use bytes::Bytes;
use std::time::{Duration, Instant};

/// Tags at or above this value are reserved for collectives.
pub const COLLECTIVE_TAG_BASE: u32 = 0xC000_0000;

const TAG_BARRIER: u32 = COLLECTIVE_TAG_BASE;
const TAG_BCAST: u32 = COLLECTIVE_TAG_BASE + 0x0100_0000;
const TAG_GATHER: u32 = COLLECTIVE_TAG_BASE + 0x0200_0000;
const TAG_REDUCE: u32 = COLLECTIVE_TAG_BASE + 0x0300_0000;

/// Tags at or above this value are reserved for the control plane
/// (rank-liveness and recovery coordination). Sits above
/// [`COLLECTIVE_TAG_BASE`], so control traffic is exempt from the default
/// chaos window exactly like collectives are.
pub const CONTROL_TAG_BASE: u32 = 0xE000_0000;

/// Adoption notice: `TAG_ADOPT_NOTICE + dead_rank`, sent by the rank that
/// adopted a dead rank's partition to the root, carrying an
/// [`AdoptNotice`].
pub const TAG_ADOPT_NOTICE: u32 = CONTROL_TAG_BASE + 0x0100_0000;

/// The control-plane message announcing a partition adoption: who died,
/// where their work stopped, who took over, and how long detection +
/// takeover took from the dead rank's last sign of life.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdoptNotice {
    /// The rank that stopped beating.
    pub dead_rank: usize,
    /// The step at which the adopter resumed the partition.
    pub adopted_at_step: usize,
    /// The adopting rank.
    pub adopter: usize,
    /// Nanoseconds from the dead rank's last heartbeat to the adoption.
    pub latency_ns: u64,
}

impl AdoptNotice {
    pub fn encode(&self) -> Bytes {
        let mut out = Vec::with_capacity(32);
        out.extend_from_slice(&(self.dead_rank as u64).to_le_bytes());
        out.extend_from_slice(&(self.adopted_at_step as u64).to_le_bytes());
        out.extend_from_slice(&(self.adopter as u64).to_le_bytes());
        out.extend_from_slice(&self.latency_ns.to_le_bytes());
        Bytes::from(out)
    }

    pub fn decode(bytes: &Bytes) -> Result<AdoptNotice> {
        if bytes.len() != 32 {
            return Err(TransportError::Decode(format!(
                "adopt notice of {} bytes (want 32)",
                bytes.len()
            )));
        }
        let word = |i: usize| {
            u64::from_le_bytes(bytes[i * 8..(i + 1) * 8].try_into().expect("8-byte word"))
        };
        Ok(AdoptNotice {
            dead_rank: word(0) as usize,
            adopted_at_step: word(1) as usize,
            adopter: word(2) as usize,
            latency_ns: word(3),
        })
    }
}

/// Migration handoff protocol (DESIGN.md §13): three chaos-exempt phases
/// per handoff, each on its own tag family salted by the handoff index so
/// concurrent handoffs never cross. `offer → state → ack`; the source
/// keeps rendering the partition until a positive ack lands, so a lost or
/// refused handoff degrades to "no migration happened".
pub const TAG_MIGRATE_OFFER: u32 = CONTROL_TAG_BASE + 0x0200_0000;
/// Checkpoint transfer of the migrating partition (opaque payload).
pub const TAG_MIGRATE_STATE: u32 = CONTROL_TAG_BASE + 0x0300_0000;
/// The target's verdict: committed, or refused (death won the race).
pub const TAG_MIGRATE_ACK: u32 = CONTROL_TAG_BASE + 0x0400_0000;

/// Phase one of a handoff: the source names the partition it is draining,
/// itself, and the step the target takes over at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrateOffer {
    /// Index of the handoff in the spec's resolved schedule.
    pub handoff: usize,
    /// The partition changing owners.
    pub partition: usize,
    /// The source viz rank.
    pub source: usize,
    /// First step the target renders the partition.
    pub step: usize,
}

impl MigrateOffer {
    pub fn encode(&self) -> Bytes {
        let mut out = Vec::with_capacity(32);
        out.extend_from_slice(&(self.handoff as u64).to_le_bytes());
        out.extend_from_slice(&(self.partition as u64).to_le_bytes());
        out.extend_from_slice(&(self.source as u64).to_le_bytes());
        out.extend_from_slice(&(self.step as u64).to_le_bytes());
        Bytes::from(out)
    }

    pub fn decode(bytes: &Bytes) -> Result<MigrateOffer> {
        if bytes.len() != 32 {
            return Err(TransportError::Decode(format!(
                "migrate offer of {} bytes (want 32)",
                bytes.len()
            )));
        }
        let word = |i: usize| {
            u64::from_le_bytes(bytes[i * 8..(i + 1) * 8].try_into().expect("8-byte word"))
        };
        Ok(MigrateOffer {
            handoff: word(0) as usize,
            partition: word(1) as usize,
            source: word(2) as usize,
            step: word(3) as usize,
        })
    }
}

/// Phase three of a handoff: did the target commit?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrateAck {
    pub handoff: usize,
    /// `true`: the target owns the partition from the offered step on.
    /// `false`: the target refused (its sim rank is dying, or the death
    /// arbitration already aborted the handoff) — the source keeps it.
    pub committed: bool,
}

impl MigrateAck {
    pub fn encode(&self) -> Bytes {
        let mut out = Vec::with_capacity(16);
        out.extend_from_slice(&(self.handoff as u64).to_le_bytes());
        out.extend_from_slice(&(self.committed as u64).to_le_bytes());
        Bytes::from(out)
    }

    pub fn decode(bytes: &Bytes) -> Result<MigrateAck> {
        if bytes.len() != 16 {
            return Err(TransportError::Decode(format!(
                "migrate ack of {} bytes (want 16)",
                bytes.len()
            )));
        }
        let word = |i: usize| {
            u64::from_le_bytes(bytes[i * 8..(i + 1) * 8].try_into().expect("8-byte word"))
        };
        Ok(MigrateAck {
            handoff: word(0) as usize,
            committed: word(1) != 0,
        })
    }
}

/// Send offer + checkpoint state to the target (phases one and two). The
/// state payload is opaque to the transport — the harness ships the
/// partition's serialized [`StepCheckpoint`].
pub fn send_migrate_offer(
    comm: &dyn Communicator,
    target: usize,
    offer: &MigrateOffer,
    state: Bytes,
) -> Result<()> {
    let salt = offer.handoff as u32;
    comm.send(target, TAG_MIGRATE_OFFER + salt, offer.encode())?;
    comm.send(target, TAG_MIGRATE_STATE + salt, state)
}

/// Receive the offer and checkpoint state for handoff `handoff`, bounded
/// by `timeout` (a control receive must never block past the handoff
/// budget).
pub fn recv_migrate_offer(
    comm: &dyn Communicator,
    from: usize,
    handoff: usize,
    timeout: Duration,
) -> Result<(MigrateOffer, Bytes)> {
    let salt = handoff as u32;
    let deadline = Instant::now() + timeout;
    let offer = MigrateOffer::decode(&comm.recv_timeout(from, TAG_MIGRATE_OFFER + salt, timeout)?)?;
    let left = deadline.saturating_duration_since(Instant::now()).max(Duration::from_millis(1));
    let state = comm.recv_timeout(from, TAG_MIGRATE_STATE + salt, left)?;
    Ok((offer, state))
}

/// Send the target's verdict back to the source (phase three).
pub fn send_migrate_ack(comm: &dyn Communicator, source: usize, ack: &MigrateAck) -> Result<()> {
    comm.send(source, TAG_MIGRATE_ACK + ack.handoff as u32, ack.encode())
}

/// Receive the verdict for handoff `handoff`, bounded by `timeout`; a
/// timeout means the handoff failed and the source keeps the partition.
pub fn recv_migrate_ack(
    comm: &dyn Communicator,
    from: usize,
    handoff: usize,
    timeout: Duration,
) -> Result<MigrateAck> {
    let bytes = comm.recv_timeout(from, TAG_MIGRATE_ACK + handoff as u32, timeout)?;
    MigrateAck::decode(&bytes)
}

/// Send an adoption notice to `root` on the control plane.
pub fn send_adopt_notice(comm: &dyn Communicator, root: usize, notice: &AdoptNotice) -> Result<()> {
    comm.send(root, TAG_ADOPT_NOTICE + notice.dead_rank as u32, notice.encode())
}

/// Receive the adoption notice for `dead_rank`, bounded by `timeout` (a
/// control receive must never block on a fabric that just lost a rank).
pub fn recv_adopt_notice(
    comm: &dyn Communicator,
    from: usize,
    dead_rank: usize,
    timeout: Duration,
) -> Result<AdoptNotice> {
    let bytes = comm.recv_timeout(from, TAG_ADOPT_NOTICE + dead_rank as u32, timeout)?;
    AdoptNotice::decode(&bytes)
}

/// Dissemination barrier: log2(P) rounds; returns when all ranks entered.
pub fn barrier(comm: &dyn Communicator) -> Result<()> {
    let size = comm.size();
    let rank = comm.rank();
    if size == 1 {
        return Ok(());
    }
    let mut round = 0u32;
    let mut distance = 1usize;
    while distance < size {
        let to = (rank + distance) % size;
        let from = (rank + size - distance) % size;
        comm.send(to, TAG_BARRIER + round, Bytes::new())?;
        comm.recv(from, TAG_BARRIER + round)?;
        distance *= 2;
        round += 1;
    }
    Ok(())
}

/// Binomial-tree broadcast from `root`; returns the payload on every rank.
pub fn broadcast(comm: &dyn Communicator, root: usize, payload: Option<Bytes>) -> Result<Bytes> {
    let size = comm.size();
    let rank = comm.rank();
    comm.check_peer(root)?;
    // Work in a rotated space where the root is rank 0.
    let vrank = (rank + size - root) % size;
    let data = if rank == root {
        payload.ok_or_else(|| {
            crate::comm::TransportError::InvalidArgument(
                "root must supply the broadcast payload".into(),
            )
        })?
    } else {
        // Receive from parent: highest set bit of vrank.
        let mut mask = 1usize;
        while mask * 2 <= vrank {
            mask *= 2;
        }
        let vparent = vrank - mask;
        let parent = (vparent + root) % size;
        comm.recv(parent, TAG_BCAST)?
    };
    // Forward to children.
    let mut mask = 1usize;
    while mask <= vrank {
        mask *= 2;
    }
    while mask < size {
        let vchild = vrank + mask;
        if vchild < size {
            let child = (vchild + root) % size;
            comm.send(child, TAG_BCAST, data.clone())?;
        }
        mask *= 2;
    }
    Ok(data)
}

/// Gather every rank's payload at `root`. Returns `Some(vec)` (indexed by
/// rank) on the root, `None` elsewhere. Flat gather: each non-root sends
/// directly (the direct-send compositing schedule).
pub fn gather(
    comm: &dyn Communicator,
    root: usize,
    payload: Bytes,
) -> Result<Option<Vec<Bytes>>> {
    let size = comm.size();
    let rank = comm.rank();
    comm.check_peer(root)?;
    if rank == root {
        let mut out: Vec<Bytes> = Vec::with_capacity(size);
        for from in 0..size {
            out.push(if from == root {
                payload.clone()
            } else {
                comm.recv(from, TAG_GATHER)?
            });
        }
        Ok(Some(out))
    } else {
        comm.send(root, TAG_GATHER, payload)?;
        Ok(None)
    }
}

/// Tag base for [`gather_surviving`]: salted per call (the harness salts
/// by step × image), so a contribution that arrives *after* its step timed
/// out can never be mistaken for the next step's payload.
const TAG_GATHER_LIVE: u32 = COLLECTIVE_TAG_BASE + 0x0400_0000;

/// Gather that tolerates dead contributors. Like [`gather`], but the root
/// skips ranks the caller believes dead (`is_dead`) and bounds every other
/// receive by `timeout`, so a rank that died between liveness checks costs
/// one timeout, never a deadlock. Returns `Some(per-rank slots)` on the
/// root — `None` in a slot is a missing contribution (dead, disconnected,
/// or past deadline) — and `None` elsewhere. `salt` must be unique per
/// logical gather (e.g. step index) so late payloads cannot cross steps.
pub fn gather_surviving(
    comm: &dyn Communicator,
    root: usize,
    salt: u32,
    payload: Bytes,
    is_dead: &dyn Fn(usize) -> bool,
    timeout: Duration,
) -> Result<Option<Vec<Option<Bytes>>>> {
    let size = comm.size();
    let rank = comm.rank();
    comm.check_peer(root)?;
    let tag = TAG_GATHER_LIVE + salt;
    if rank == root {
        let mut out: Vec<Option<Bytes>> = Vec::with_capacity(size);
        // Receive in short slices, re-checking liveness between them: a
        // rank that is declared dead mid-gather resolves to a hole in
        // O(detection latency), while a live straggler keeps the whole
        // `timeout` budget.
        let slice = Duration::from_millis(5).min(timeout.max(Duration::from_millis(1)));
        for from in 0..size {
            if from == root {
                out.push(Some(payload.clone()));
                continue;
            }
            let deadline = Instant::now() + timeout;
            let slot = loop {
                if is_dead(from) {
                    break None;
                }
                let now = Instant::now();
                if now >= deadline {
                    break None;
                }
                match comm.recv_timeout(from, tag, slice.min(deadline - now)) {
                    Ok(bytes) => break Some(bytes),
                    Err(TransportError::Timeout { .. }) => continue,
                    Err(TransportError::Disconnected { .. }) => break None,
                    Err(e) => return Err(e),
                }
            };
            out.push(slot);
        }
        Ok(Some(out))
    } else {
        comm.send(root, tag, payload)?;
        Ok(None)
    }
}

/// Binomial-tree reduction of f64 vectors (element-wise `combine`), result
/// at `root`. Returns `Some(result)` on the root, `None` elsewhere.
pub fn reduce_f64(
    comm: &dyn Communicator,
    root: usize,
    mut values: Vec<f64>,
    combine: fn(f64, f64) -> f64,
) -> Result<Option<Vec<f64>>> {
    let size = comm.size();
    let rank = comm.rank();
    comm.check_peer(root)?;
    let vrank = (rank + size - root) % size;
    let mut mask = 1usize;
    let mut round = 0u32;
    while mask < size {
        if vrank & mask != 0 {
            // send to partner and leave
            let vpartner = vrank - mask;
            let partner = (vpartner + root) % size;
            comm.send(partner, TAG_REDUCE + round, encode_f64s(&values))?;
            return Ok(None);
        }
        let vpartner = vrank + mask;
        if vpartner < size {
            let partner = (vpartner + root) % size;
            let theirs = decode_f64s(&comm.recv(partner, TAG_REDUCE + round)?)?;
            if theirs.len() != values.len() {
                return Err(crate::comm::TransportError::InvalidArgument(format!(
                    "reduce length mismatch: {} vs {}",
                    theirs.len(),
                    values.len()
                )));
            }
            for (v, t) in values.iter_mut().zip(theirs) {
                *v = combine(*v, t);
            }
        }
        mask *= 2;
        round += 1;
    }
    Ok(Some(values))
}

/// Reduce-then-broadcast: every rank gets the combined vector.
pub fn allreduce_f64(
    comm: &dyn Communicator,
    values: Vec<f64>,
    combine: fn(f64, f64) -> f64,
) -> Result<Vec<f64>> {
    let reduced = reduce_f64(comm, 0, values, combine)?;
    let payload = reduced.map(|v| encode_f64s(&v));
    let bytes = broadcast(comm, 0, payload)?;
    decode_f64s(&bytes)
}

fn encode_f64s(values: &[f64]) -> Bytes {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    Bytes::from(out)
}

fn decode_f64s(bytes: &Bytes) -> Result<Vec<f64>> {
    if !bytes.len().is_multiple_of(8) {
        return Err(crate::comm::TransportError::Decode(format!(
            "f64 vector payload of {} bytes",
            bytes.len()
        )));
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("chunk is 8 bytes")))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::LocalFabric;
    use std::thread;

    /// Run `f` on every rank of a local fabric, collecting results by rank.
    fn on_ranks<T: Send + 'static>(
        size: usize,
        f: impl Fn(&dyn Communicator) -> T + Send + Sync + Clone + 'static,
    ) -> Vec<T> {
        let comms = LocalFabric::new(size);
        let handles: Vec<_> = comms
            .into_iter()
            .map(|c| {
                let f = f.clone();
                thread::spawn(move || f(&c))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    #[test]
    fn barrier_completes_at_various_sizes() {
        for size in [1usize, 2, 3, 4, 5, 8] {
            let done = on_ranks(size, |c| {
                barrier(c).unwrap();
                true
            });
            assert_eq!(done.len(), size);
        }
    }

    #[test]
    fn barrier_orders_phases() {
        // All ranks increment a counter before the barrier; after it, every
        // rank must observe the full count.
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let counter = Arc::new(AtomicUsize::new(0));
        let c2 = counter.clone();
        let size = 4;
        let seen = on_ranks(size, move |c| {
            c2.fetch_add(1, Ordering::SeqCst);
            barrier(c).unwrap();
            c2.load(Ordering::SeqCst)
        });
        for s in seen {
            assert_eq!(s, size);
        }
    }

    #[test]
    fn broadcast_from_every_root() {
        for root in 0..4usize {
            let got = on_ranks(4, move |c| {
                let payload = if c.rank() == root {
                    Some(Bytes::from(vec![root as u8; 3]))
                } else {
                    None
                };
                broadcast(c, root, payload).unwrap()
            });
            for g in got {
                assert_eq!(&g[..], &[root as u8; 3]);
            }
        }
    }

    #[test]
    fn gather_collects_by_rank() {
        let results = on_ranks(5, |c| {
            gather(c, 2, Bytes::from(vec![c.rank() as u8])).unwrap()
        });
        for (rank, r) in results.iter().enumerate() {
            if rank == 2 {
                let v = r.as_ref().unwrap();
                for (i, b) in v.iter().enumerate() {
                    assert_eq!(b[0] as usize, i);
                }
            } else {
                assert!(r.is_none());
            }
        }
    }

    #[test]
    fn reduce_sums_vectors() {
        for size in [1usize, 2, 3, 4, 7] {
            let results = on_ranks(size, |c| {
                let mine = vec![c.rank() as f64, 1.0];
                reduce_f64(c, 0, mine, |a, b| a + b).unwrap()
            });
            let root = results[0].as_ref().unwrap();
            let expect: f64 = (0..size).map(|r| r as f64).sum();
            assert_eq!(root[0], expect, "size {size}");
            assert_eq!(root[1], size as f64);
            for r in &results[1..] {
                assert!(r.is_none());
            }
        }
    }

    #[test]
    fn allreduce_max_everywhere() {
        let results = on_ranks(6, |c| {
            allreduce_f64(c, vec![c.rank() as f64], f64::max).unwrap()
        });
        for r in results {
            assert_eq!(r, vec![5.0]);
        }
    }

    #[test]
    fn f64_codec_roundtrip_and_rejects_misaligned() {
        let v = vec![1.5, -2.25, 1e300];
        assert_eq!(decode_f64s(&encode_f64s(&v)).unwrap(), v);
        assert!(decode_f64s(&Bytes::from_static(b"12345")).is_err());
    }

    #[test]
    fn control_tags_sit_above_collectives_and_outside_the_chaos_window() {
        const { assert!(CONTROL_TAG_BASE > COLLECTIVE_TAG_BASE) };
        const { assert!(TAG_ADOPT_NOTICE >= CONTROL_TAG_BASE) };
        const { assert!(TAG_MIGRATE_OFFER >= CONTROL_TAG_BASE) };
        const { assert!(TAG_MIGRATE_STATE >= CONTROL_TAG_BASE) };
        const { assert!(TAG_MIGRATE_ACK >= CONTROL_TAG_BASE) };
        // the default fault-plan window ends at the collective base, so
        // control traffic is chaos-exempt by construction
        let plan = crate::fault::FaultPlan::seeded(1).with_drop(1.0);
        assert!(!plan.targets(TAG_ADOPT_NOTICE));
        assert!(!plan.targets(TAG_MIGRATE_OFFER));
        assert!(!plan.targets(TAG_MIGRATE_STATE + 7));
        assert!(!plan.targets(TAG_MIGRATE_ACK + 7));
    }

    #[test]
    fn migrate_codecs_roundtrip_and_reject_short_payloads() {
        let offer = MigrateOffer {
            handoff: 2,
            partition: 5,
            source: 1,
            step: 9,
        };
        assert_eq!(MigrateOffer::decode(&offer.encode()).unwrap(), offer);
        assert!(MigrateOffer::decode(&Bytes::from_static(b"short")).is_err());
        for committed in [true, false] {
            let ack = MigrateAck { handoff: 3, committed };
            assert_eq!(MigrateAck::decode(&ack.encode()).unwrap(), ack);
        }
        assert!(MigrateAck::decode(&Bytes::from_static(b"short")).is_err());
    }

    #[test]
    fn migrate_handshake_travels_the_control_plane() {
        // source rank 0 offers partition 2 to target rank 1; the target
        // commits and acks. The checkpoint payload arrives byte-identical.
        let results = on_ranks(2, |c| {
            if c.rank() == 0 {
                let offer = MigrateOffer {
                    handoff: 4,
                    partition: 2,
                    source: 0,
                    step: 3,
                };
                send_migrate_offer(c, 1, &offer, Bytes::from_static(b"cursor-state")).unwrap();
                let ack = recv_migrate_ack(c, 1, 4, Duration::from_secs(5)).unwrap();
                assert!(ack.committed);
                None
            } else {
                let (offer, state) =
                    recv_migrate_offer(c, 0, 4, Duration::from_secs(5)).unwrap();
                assert_eq!(offer.partition, 2);
                assert_eq!(offer.step, 3);
                assert_eq!(&state[..], b"cursor-state");
                send_migrate_ack(c, 0, &MigrateAck { handoff: 4, committed: true }).unwrap();
                Some(offer)
            }
        });
        assert_eq!(results[1].unwrap().source, 0);
    }

    #[test]
    fn adopt_notice_roundtrips_and_rejects_short_payloads() {
        let notice = AdoptNotice {
            dead_rank: 3,
            adopted_at_step: 7,
            adopter: 1,
            latency_ns: 12_345_678,
        };
        assert_eq!(AdoptNotice::decode(&notice.encode()).unwrap(), notice);
        assert!(AdoptNotice::decode(&Bytes::from_static(b"short")).is_err());
    }

    #[test]
    fn adopt_notice_travels_the_control_plane() {
        let results = on_ranks(3, |c| {
            if c.rank() == 1 {
                let notice = AdoptNotice {
                    dead_rank: 2,
                    adopted_at_step: 4,
                    adopter: 1,
                    latency_ns: 99,
                };
                send_adopt_notice(c, 0, &notice).unwrap();
                None
            } else if c.rank() == 0 {
                Some(recv_adopt_notice(c, 1, 2, Duration::from_secs(5)).unwrap())
            } else {
                None
            }
        });
        let got = results[0].unwrap();
        assert_eq!(got.dead_rank, 2);
        assert_eq!(got.adopter, 1);
        assert_eq!(got.adopted_at_step, 4);
    }

    #[test]
    fn gather_surviving_skips_the_dead_and_never_blocks_on_them() {
        use std::time::Instant;
        // rank 2 is "dead": it never calls the gather at all. The root
        // must still return, with rank 2's slot empty, well inside the
        // per-receive timeout budget.
        let t0 = Instant::now();
        let results = on_ranks(4, |c| {
            if c.rank() == 2 {
                return None; // dead rank: no participation
            }
            gather_surviving(
                c,
                0,
                5,
                Bytes::from(vec![c.rank() as u8]),
                &|r| r == 2,
                Duration::from_secs(5),
            )
            .unwrap()
        });
        let slots = results[0].as_ref().unwrap();
        assert_eq!(slots.len(), 4);
        assert_eq!(slots[0].as_ref().unwrap()[0], 0);
        assert_eq!(slots[1].as_ref().unwrap()[0], 1);
        assert!(slots[2].is_none(), "dead rank contributes nothing");
        assert_eq!(slots[3].as_ref().unwrap()[0], 3);
        // the dead slot was skipped, not waited out
        assert!(t0.elapsed() < Duration::from_secs(4), "root waited on a dead rank");
    }

    #[test]
    fn gather_surviving_counts_a_silent_live_rank_as_missing() {
        // rank 1 is believed alive but never sends: the root times out on
        // it (bounded) and records a missing contribution.
        let results = on_ranks(3, |c| {
            if c.rank() == 1 {
                return None;
            }
            gather_surviving(
                c,
                0,
                9,
                Bytes::from(vec![c.rank() as u8]),
                &|_| false,
                Duration::from_millis(50),
            )
            .unwrap()
        });
        let slots = results[0].as_ref().unwrap();
        assert!(slots[1].is_none(), "silent rank must surface as missing");
        assert!(slots[2].is_some());
    }
}
