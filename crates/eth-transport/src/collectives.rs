//! Collective operations built on point-to-point messaging.
//!
//! The harness needs barriers (phase separation under intercore coupling),
//! gather (image compositing to root), broadcast (experiment parameters),
//! and reduce/allreduce (metric aggregation). All are implemented as
//! binomial trees / dissemination rounds over [`Communicator`], so they run
//! unchanged over the in-process and socket backends.
//!
//! Tags: collectives use the top tag bits (`0xC0xx_xxxx`) with the round
//! number encoded, so user traffic (low tags) never collides as long as it
//! stays below [`COLLECTIVE_TAG_BASE`].

use crate::comm::{Communicator, Result};
use bytes::Bytes;

/// Tags at or above this value are reserved for collectives.
pub const COLLECTIVE_TAG_BASE: u32 = 0xC000_0000;

const TAG_BARRIER: u32 = COLLECTIVE_TAG_BASE;
const TAG_BCAST: u32 = COLLECTIVE_TAG_BASE + 0x0100_0000;
const TAG_GATHER: u32 = COLLECTIVE_TAG_BASE + 0x0200_0000;
const TAG_REDUCE: u32 = COLLECTIVE_TAG_BASE + 0x0300_0000;

/// Dissemination barrier: log2(P) rounds; returns when all ranks entered.
pub fn barrier(comm: &dyn Communicator) -> Result<()> {
    let size = comm.size();
    let rank = comm.rank();
    if size == 1 {
        return Ok(());
    }
    let mut round = 0u32;
    let mut distance = 1usize;
    while distance < size {
        let to = (rank + distance) % size;
        let from = (rank + size - distance) % size;
        comm.send(to, TAG_BARRIER + round, Bytes::new())?;
        comm.recv(from, TAG_BARRIER + round)?;
        distance *= 2;
        round += 1;
    }
    Ok(())
}

/// Binomial-tree broadcast from `root`; returns the payload on every rank.
pub fn broadcast(comm: &dyn Communicator, root: usize, payload: Option<Bytes>) -> Result<Bytes> {
    let size = comm.size();
    let rank = comm.rank();
    comm.check_peer(root)?;
    // Work in a rotated space where the root is rank 0.
    let vrank = (rank + size - root) % size;
    let data = if rank == root {
        payload.ok_or_else(|| {
            crate::comm::TransportError::InvalidArgument(
                "root must supply the broadcast payload".into(),
            )
        })?
    } else {
        // Receive from parent: highest set bit of vrank.
        let mut mask = 1usize;
        while mask * 2 <= vrank {
            mask *= 2;
        }
        let vparent = vrank - mask;
        let parent = (vparent + root) % size;
        comm.recv(parent, TAG_BCAST)?
    };
    // Forward to children.
    let mut mask = 1usize;
    while mask <= vrank {
        mask *= 2;
    }
    while mask < size {
        let vchild = vrank + mask;
        if vchild < size {
            let child = (vchild + root) % size;
            comm.send(child, TAG_BCAST, data.clone())?;
        }
        mask *= 2;
    }
    Ok(data)
}

/// Gather every rank's payload at `root`. Returns `Some(vec)` (indexed by
/// rank) on the root, `None` elsewhere. Flat gather: each non-root sends
/// directly (the direct-send compositing schedule).
pub fn gather(
    comm: &dyn Communicator,
    root: usize,
    payload: Bytes,
) -> Result<Option<Vec<Bytes>>> {
    let size = comm.size();
    let rank = comm.rank();
    comm.check_peer(root)?;
    if rank == root {
        let mut out: Vec<Bytes> = Vec::with_capacity(size);
        for from in 0..size {
            out.push(if from == root {
                payload.clone()
            } else {
                comm.recv(from, TAG_GATHER)?
            });
        }
        Ok(Some(out))
    } else {
        comm.send(root, TAG_GATHER, payload)?;
        Ok(None)
    }
}

/// Binomial-tree reduction of f64 vectors (element-wise `combine`), result
/// at `root`. Returns `Some(result)` on the root, `None` elsewhere.
pub fn reduce_f64(
    comm: &dyn Communicator,
    root: usize,
    mut values: Vec<f64>,
    combine: fn(f64, f64) -> f64,
) -> Result<Option<Vec<f64>>> {
    let size = comm.size();
    let rank = comm.rank();
    comm.check_peer(root)?;
    let vrank = (rank + size - root) % size;
    let mut mask = 1usize;
    let mut round = 0u32;
    while mask < size {
        if vrank & mask != 0 {
            // send to partner and leave
            let vpartner = vrank - mask;
            let partner = (vpartner + root) % size;
            comm.send(partner, TAG_REDUCE + round, encode_f64s(&values))?;
            return Ok(None);
        }
        let vpartner = vrank + mask;
        if vpartner < size {
            let partner = (vpartner + root) % size;
            let theirs = decode_f64s(&comm.recv(partner, TAG_REDUCE + round)?)?;
            if theirs.len() != values.len() {
                return Err(crate::comm::TransportError::InvalidArgument(format!(
                    "reduce length mismatch: {} vs {}",
                    theirs.len(),
                    values.len()
                )));
            }
            for (v, t) in values.iter_mut().zip(theirs) {
                *v = combine(*v, t);
            }
        }
        mask *= 2;
        round += 1;
    }
    Ok(Some(values))
}

/// Reduce-then-broadcast: every rank gets the combined vector.
pub fn allreduce_f64(
    comm: &dyn Communicator,
    values: Vec<f64>,
    combine: fn(f64, f64) -> f64,
) -> Result<Vec<f64>> {
    let reduced = reduce_f64(comm, 0, values, combine)?;
    let payload = reduced.map(|v| encode_f64s(&v));
    let bytes = broadcast(comm, 0, payload)?;
    decode_f64s(&bytes)
}

fn encode_f64s(values: &[f64]) -> Bytes {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    Bytes::from(out)
}

fn decode_f64s(bytes: &Bytes) -> Result<Vec<f64>> {
    if !bytes.len().is_multiple_of(8) {
        return Err(crate::comm::TransportError::Decode(format!(
            "f64 vector payload of {} bytes",
            bytes.len()
        )));
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("chunk is 8 bytes")))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::LocalFabric;
    use std::thread;

    /// Run `f` on every rank of a local fabric, collecting results by rank.
    fn on_ranks<T: Send + 'static>(
        size: usize,
        f: impl Fn(&dyn Communicator) -> T + Send + Sync + Clone + 'static,
    ) -> Vec<T> {
        let comms = LocalFabric::new(size);
        let handles: Vec<_> = comms
            .into_iter()
            .map(|c| {
                let f = f.clone();
                thread::spawn(move || f(&c))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    #[test]
    fn barrier_completes_at_various_sizes() {
        for size in [1usize, 2, 3, 4, 5, 8] {
            let done = on_ranks(size, |c| {
                barrier(c).unwrap();
                true
            });
            assert_eq!(done.len(), size);
        }
    }

    #[test]
    fn barrier_orders_phases() {
        // All ranks increment a counter before the barrier; after it, every
        // rank must observe the full count.
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let counter = Arc::new(AtomicUsize::new(0));
        let c2 = counter.clone();
        let size = 4;
        let seen = on_ranks(size, move |c| {
            c2.fetch_add(1, Ordering::SeqCst);
            barrier(c).unwrap();
            c2.load(Ordering::SeqCst)
        });
        for s in seen {
            assert_eq!(s, size);
        }
    }

    #[test]
    fn broadcast_from_every_root() {
        for root in 0..4usize {
            let got = on_ranks(4, move |c| {
                let payload = if c.rank() == root {
                    Some(Bytes::from(vec![root as u8; 3]))
                } else {
                    None
                };
                broadcast(c, root, payload).unwrap()
            });
            for g in got {
                assert_eq!(&g[..], &[root as u8; 3]);
            }
        }
    }

    #[test]
    fn gather_collects_by_rank() {
        let results = on_ranks(5, |c| {
            gather(c, 2, Bytes::from(vec![c.rank() as u8])).unwrap()
        });
        for (rank, r) in results.iter().enumerate() {
            if rank == 2 {
                let v = r.as_ref().unwrap();
                for (i, b) in v.iter().enumerate() {
                    assert_eq!(b[0] as usize, i);
                }
            } else {
                assert!(r.is_none());
            }
        }
    }

    #[test]
    fn reduce_sums_vectors() {
        for size in [1usize, 2, 3, 4, 7] {
            let results = on_ranks(size, |c| {
                let mine = vec![c.rank() as f64, 1.0];
                reduce_f64(c, 0, mine, |a, b| a + b).unwrap()
            });
            let root = results[0].as_ref().unwrap();
            let expect: f64 = (0..size).map(|r| r as f64).sum();
            assert_eq!(root[0], expect, "size {size}");
            assert_eq!(root[1], size as f64);
            for r in &results[1..] {
                assert!(r.is_none());
            }
        }
    }

    #[test]
    fn allreduce_max_everywhere() {
        let results = on_ranks(6, |c| {
            allreduce_f64(c, vec![c.rank() as f64], f64::max).unwrap()
        });
        for r in results {
            assert_eq!(r, vec![5.0]);
        }
    }

    #[test]
    fn f64_codec_roundtrip_and_rejects_misaligned() {
        let v = vec![1.5, -2.25, 1e300];
        assert_eq!(decode_f64s(&encode_f64s(&v)).unwrap(), v);
        assert!(decode_f64s(&Bytes::from_static(b"12345")).is_err());
    }
}
