//! Wire framing and dataset payload helpers.
//!
//! Frame layout (little-endian):
//!
//! ```text
//! magic: u32     protocol magic + version ("ETH" + 0x01 or 0x02)
//! from : u32     sender rank
//! tag  : u32     matching tag
//! len  : u64     payload length
//! ctx  : 16 B    span context (version 0x02 frames only)
//! data : len bytes
//! ```
//!
//! Version 0x02 frames carry a 16-byte [`eth_obs::SpanContext`] between
//! the header and the payload, stitching the send span to the matching
//! receive span in merged traces. Writers only emit v2 when the flight
//! recorder is live (`eth_obs::flow_context()` returned a context), so
//! the wire carries **zero** extra bytes when recording is off; readers
//! accept both versions, so legacy v1 frames still decode.
//!
//! The magic word makes a desynchronized or corrupted stream fail fast
//! with [`TransportError::Decode`] instead of interpreting garbage as a
//! length prefix and attempting a multi-gigabyte allocation; the length
//! guard bounds how large a claimed payload may be even when the magic
//! happens to match.
//!
//! The same framing is used on sockets; the local backend passes the
//! decoded tuple directly. Dataset payloads reuse `eth_data::io::binary`
//! (the `.ebd` encoding), so shipping a block across ranks costs one
//! serialization, not two.

use crate::comm::{Result, TransportError};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use eth_data::io::binary;
use eth_data::DataObject;
use eth_obs::SpanContext;
use std::io::{Read, Write};

/// Header size on the wire (not counting the v2 context word).
pub const FRAME_HEADER_BYTES: usize = 20;

/// Span-context trailer size for v2 frames.
pub const FRAME_CONTEXT_BYTES: usize = 16;

/// Protocol magic + version word: `b"ETH"` followed by the format version.
/// Bump the low byte when the frame layout changes.
pub const FRAME_MAGIC: u32 = u32::from_le_bytes([b'E', b'T', b'H', 0x01]);

/// v2 magic: same layout plus a 16-byte span context after the header.
pub const FRAME_MAGIC_V2: u32 = u32::from_le_bytes([b'E', b'T', b'H', 0x02]);

/// Default maximum accepted payload (guards against corrupt length
/// fields). Use [`read_frame_limited`] to tighten it per channel.
pub const MAX_PAYLOAD: u64 = 1 << 34; // 16 GiB

/// A decoded frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    pub from: u32,
    pub tag: u32,
    /// Sender's span context (v2 frames recorded under a live flight
    /// recorder); `None` on legacy v1 frames.
    pub ctx: Option<SpanContext>,
    pub payload: Bytes,
}

/// Write one frame to a stream. A `Some` context emits a v2 frame; `None`
/// emits the legacy v1 layout byte-for-byte (recording off ⇒ zero cost).
pub fn write_frame(
    w: &mut impl Write,
    from: u32,
    tag: u32,
    ctx: Option<SpanContext>,
    payload: &Bytes,
) -> Result<()> {
    let cap = FRAME_HEADER_BYTES + if ctx.is_some() { FRAME_CONTEXT_BYTES } else { 0 };
    let mut header = BytesMut::with_capacity(cap);
    header.put_u32_le(if ctx.is_some() {
        FRAME_MAGIC_V2
    } else {
        FRAME_MAGIC
    });
    header.put_u32_le(from);
    header.put_u32_le(tag);
    header.put_u64_le(payload.len() as u64);
    if let Some(c) = ctx {
        header.put_slice(&c.to_bytes());
    }
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Read one frame from a stream (blocking), accepting payloads up to
/// `max_payload` bytes and either frame version. A wrong magic word or an
/// oversized length prefix fails with [`TransportError::Decode`] before
/// any payload allocation.
pub fn read_frame_limited(r: &mut impl Read, max_payload: u64) -> Result<Frame> {
    let mut header = [0u8; FRAME_HEADER_BYTES];
    r.read_exact(&mut header)?;
    let mut h = &header[..];
    let magic = h.get_u32_le();
    if magic != FRAME_MAGIC && magic != FRAME_MAGIC_V2 {
        return Err(TransportError::Decode(format!(
            "bad frame magic {magic:#010x} (expected {FRAME_MAGIC:#010x} or \
             {FRAME_MAGIC_V2:#010x}): stream is corrupt or speaks a different \
             protocol version"
        )));
    }
    let from = h.get_u32_le();
    let tag = h.get_u32_le();
    let len = h.get_u64_le();
    if len > max_payload {
        return Err(TransportError::Decode(format!(
            "frame length {len} exceeds maximum {max_payload}"
        )));
    }
    let ctx = if magic == FRAME_MAGIC_V2 {
        let mut ctx_bytes = [0u8; FRAME_CONTEXT_BYTES];
        r.read_exact(&mut ctx_bytes)?;
        Some(SpanContext::from_bytes(ctx_bytes))
    } else {
        None
    };
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Frame {
        from,
        tag,
        ctx,
        payload: Bytes::from(payload),
    })
}

/// Read one frame with the default [`MAX_PAYLOAD`] guard.
pub fn read_frame(r: &mut impl Read) -> Result<Frame> {
    read_frame_limited(r, MAX_PAYLOAD)
}

/// Encode a dataset for shipping. The encoder preallocates the exact
/// encoded size ([`encoded_dataset_len`]), so building the payload is a
/// single allocation with no growth copies.
pub fn encode_dataset(obj: &DataObject) -> Bytes {
    let mut span = eth_obs::span(eth_obs::Phase::Encode);
    let bytes = binary::encode(obj);
    span.set_bytes(bytes.len() as u64);
    bytes
}

/// Exact byte length [`encode_dataset`] produces for `obj`, without
/// encoding — lets senders size frames or budgets up front.
pub fn encoded_dataset_len(obj: &DataObject) -> usize {
    binary::encoded_len(obj)
}

/// Decode a dataset payload.
pub fn decode_dataset(payload: Bytes) -> Result<DataObject> {
    let _span = eth_obs::span_bytes(eth_obs::Phase::Decode, payload.len() as u64);
    binary::decode(payload).map_err(|e| TransportError::Decode(e.to_string()))
}

/// Decode a dataset payload received from rank `from`, classifying
/// failures: a checksum mismatch (the payload was altered in flight or at
/// rest) surfaces as [`TransportError::Corrupt`] attributed to the sender,
/// while framing/parse failures stay [`TransportError::Decode`]. This is
/// what lets the harness count chaos-injected payload corruption as a
/// *detected* degradation at the codec layer rather than trusting the
/// injector's own bookkeeping.
pub fn decode_dataset_from(from: usize, payload: Bytes) -> Result<DataObject> {
    let _span = eth_obs::span_bytes(eth_obs::Phase::Decode, payload.len() as u64);
    binary::decode(payload).map_err(|e| match e {
        eth_data::DataError::Corrupt(detail) => TransportError::Corrupt { peer: from, detail },
        other => TransportError::Decode(other.to_string()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eth_data::{PointCloud, Vec3};

    #[test]
    fn frame_roundtrip_over_a_buffer() {
        let payload = Bytes::from_static(b"hello ranks");
        let mut wire = Vec::new();
        write_frame(&mut wire, 3, 77, None, &payload).unwrap();
        // legacy layout byte-for-byte: no context word when ctx is None
        assert_eq!(wire.len(), FRAME_HEADER_BYTES + payload.len());
        let frame = read_frame(&mut wire.as_slice()).unwrap();
        assert_eq!(frame.from, 3);
        assert_eq!(frame.tag, 77);
        assert_eq!(frame.ctx, None);
        assert_eq!(frame.payload, payload);
    }

    #[test]
    fn v2_frame_carries_span_context() {
        let ctx = SpanContext {
            trace_id: 0xABCD_EF01_2345_6789,
            span_id: 42,
        };
        let payload = Bytes::from_static(b"stitched");
        let mut wire = Vec::new();
        write_frame(&mut wire, 1, 9, Some(ctx), &payload).unwrap();
        assert_eq!(
            wire.len(),
            FRAME_HEADER_BYTES + FRAME_CONTEXT_BYTES + payload.len()
        );
        let frame = read_frame(&mut wire.as_slice()).unwrap();
        assert_eq!(frame.ctx, Some(ctx));
        assert_eq!(frame.payload, payload);
    }

    #[test]
    fn legacy_v1_frames_still_decode() {
        // A pre-context frame written by hand with the old layout: must
        // decode identically under the version-bumped reader.
        let payload = b"old wire format";
        let mut wire = Vec::new();
        let mut header = BytesMut::new();
        header.put_u32_le(FRAME_MAGIC);
        header.put_u32_le(5);
        header.put_u32_le(0x1000);
        header.put_u64_le(payload.len() as u64);
        wire.extend_from_slice(&header);
        wire.extend_from_slice(payload);
        let f = read_frame(&mut wire.as_slice()).unwrap();
        assert_eq!(f.from, 5);
        assert_eq!(f.tag, 0x1000);
        assert_eq!(f.ctx, None);
        assert_eq!(&f.payload[..], payload);
    }

    #[test]
    fn several_frames_stream_in_order() {
        let mut wire = Vec::new();
        for i in 0..5u32 {
            write_frame(
                &mut wire,
                i,
                i * 10,
                None,
                &Bytes::from(vec![i as u8; i as usize]),
            )
            .unwrap();
        }
        let mut r = wire.as_slice();
        for i in 0..5u32 {
            let f = read_frame(&mut r).unwrap();
            assert_eq!(f.from, i);
            assert_eq!(f.tag, i * 10);
            assert_eq!(f.payload.len(), i as usize);
        }
    }

    #[test]
    fn truncated_frame_errors() {
        let mut wire = Vec::new();
        write_frame(&mut wire, 0, 0, None, &Bytes::from_static(b"abcdef")).unwrap();
        wire.truncate(wire.len() - 2);
        assert!(read_frame(&mut wire.as_slice()).is_err());
    }

    #[test]
    fn oversized_length_rejected() {
        let mut wire = Vec::new();
        let mut header = BytesMut::new();
        header.put_u32_le(FRAME_MAGIC);
        header.put_u32_le(0);
        header.put_u32_le(0);
        header.put_u64_le(MAX_PAYLOAD + 1);
        wire.extend_from_slice(&header);
        assert!(matches!(
            read_frame(&mut wire.as_slice()),
            Err(TransportError::Decode(_))
        ));
    }

    #[test]
    fn bad_magic_rejected() {
        // A plausible-looking header with the wrong magic: must fail with
        // Decode before trusting the (huge) length field.
        let mut wire = Vec::new();
        let mut header = BytesMut::new();
        header.put_u32_le(0xDEAD_BEEF);
        header.put_u32_le(1);
        header.put_u32_le(2);
        header.put_u64_le(1 << 40);
        wire.extend_from_slice(&header);
        match read_frame(&mut wire.as_slice()) {
            Err(TransportError::Decode(m)) => assert!(m.contains("magic"), "{m}"),
            other => panic!("expected Decode error, got {other:?}"),
        }
    }

    #[test]
    fn configurable_limit_enforced() {
        let mut wire = Vec::new();
        write_frame(&mut wire, 0, 0, None, &Bytes::from(vec![0u8; 64])).unwrap();
        // the same frame passes with a loose limit and fails with a tight one
        assert!(read_frame_limited(&mut wire.as_slice(), 64).is_ok());
        assert!(matches!(
            read_frame_limited(&mut wire.as_slice(), 63),
            Err(TransportError::Decode(_))
        ));
    }

    #[test]
    fn dataset_payload_roundtrip() {
        let obj = DataObject::Points(PointCloud::from_positions(vec![
            Vec3::ONE,
            Vec3::new(2.0, 3.0, 4.0),
        ]));
        let payload = encode_dataset(&obj);
        let back = decode_dataset(payload).unwrap();
        assert_eq!(obj, back);
    }

    #[test]
    fn encoded_dataset_len_matches_encode() {
        let mut cloud = PointCloud::from_positions(vec![Vec3::ONE, Vec3::ZERO, Vec3::ONE]);
        cloud
            .set_attribute("rho", eth_data::Attribute::Scalar(vec![1.0, 2.0, 3.0]))
            .unwrap();
        let obj = DataObject::Points(cloud);
        assert_eq!(encode_dataset(&obj).len(), encoded_dataset_len(&obj));
    }

    #[test]
    fn garbage_dataset_payload_errors() {
        assert!(decode_dataset(Bytes::from_static(b"not a dataset")).is_err());
    }

    #[test]
    fn corrupted_dataset_payload_is_attributed_to_the_sender() {
        let obj = DataObject::Points(PointCloud::from_positions(vec![
            Vec3::ONE,
            Vec3::new(2.0, 3.0, 4.0),
        ]));
        let mut bytes = encode_dataset(&obj).to_vec();
        // flip a body byte (past the magic), exactly what ChaosComm does
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        match decode_dataset_from(7, Bytes::from(bytes)) {
            Err(TransportError::Corrupt { peer, detail }) => {
                assert_eq!(peer, 7);
                assert!(detail.contains("checksum"), "{detail}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        // a clean payload still decodes through the attributed path
        let back = decode_dataset_from(7, encode_dataset(&obj)).unwrap();
        assert_eq!(obj, back);
    }

    #[test]
    fn empty_payload_frame() {
        let mut wire = Vec::new();
        write_frame(&mut wire, 9, 1, None, &Bytes::new()).unwrap();
        let f = read_frame(&mut wire.as_slice()).unwrap();
        assert!(f.payload.is_empty());
    }
}
