//! # eth-transport — rank-based message passing for the harness
//!
//! The original ETH runs on MPI within a job and "communicating via the
//! socket layer" between the simulation- and visualization-proxy jobs
//! (Section III-C). This crate is that substrate:
//!
//! * [`comm`] — the [`comm::Communicator`] trait: rank-addressed, tagged,
//!   ordered point-to-point messaging with traffic counters,
//! * [`local`] — in-process backend (threads + crossbeam channels): the
//!   intra-job MPI role, used by tight/intercore coupling and by tests,
//! * [`socket`] — TCP loopback backend with the paper's layout-file
//!   bootstrap: every simulation-proxy rank publishes `ip:port` to a
//!   globally visible layout file, opens its port and waits; visualization
//!   ranks poll the file and connect (Section III-C),
//! * [`layout`] — the layout file itself,
//! * [`collectives`] — barrier / broadcast / gather / reduce built on
//!   point-to-point (binomial trees), used by compositing and the harness,
//! * [`runner`] — the `mpirun` equivalent: spawn N ranks as threads over a
//!   fabric and join them (optionally supervised with per-rank timeouts),
//! * [`fault`] — deterministic, serializable fault plans (drop / corrupt /
//!   delay / disconnect as pure functions of a seed and the message key),
//! * [`chaos`] — wrappers that enact a fault plan around a real
//!   communicator or stream channel.

pub mod chaos;
pub mod collectives;
pub mod comm;
pub mod fault;
pub mod layout;
pub mod local;
pub mod message;
pub mod runner;
pub mod socket;

pub use chaos::{ChaosChannel, ChaosComm};
pub use comm::{Communicator, TransportError};
pub use fault::{Backoff, BackoffShape, FaultPlan, KillSpec};
pub use local::LocalFabric;
pub use runner::{
    run_ranks, run_ranks_heartbeat, run_ranks_supervised, spawn_migration_supervisor,
    spawn_supervisor, DeathNotice, HeartbeatBoard, HeartbeatPolicy, HeartbeatRun, MigrationBook,
    RankFailure, Supervisor,
};
