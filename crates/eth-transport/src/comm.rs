//! The communicator abstraction.

use bytes::Bytes;
use std::fmt;
use std::time::{Duration, Instant};

/// Errors from the transport layer.
#[derive(Debug)]
pub enum TransportError {
    /// Underlying IO failure (socket backend).
    Io(std::io::Error),
    /// A peer disconnected or its channel closed.
    Disconnected { peer: usize },
    /// A deadline expired while waiting for a message from `peer`.
    Timeout { peer: usize, elapsed: Duration },
    /// A payload from `peer` failed an integrity check (chaos injection or
    /// a mangled wire frame).
    Corrupt { peer: usize, detail: String },
    /// Rank/tag arguments out of range.
    InvalidArgument(String),
    /// Bootstrap (layout file) failure.
    Bootstrap(String),
    /// Payload failed to decode.
    Decode(String),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Io(e) => write!(f, "transport io error: {e}"),
            TransportError::Disconnected { peer } => write!(f, "peer rank {peer} disconnected"),
            TransportError::Timeout { peer, elapsed } => write!(
                f,
                "timed out after {:.3}s waiting for peer rank {peer}",
                elapsed.as_secs_f64()
            ),
            TransportError::Corrupt { peer, detail } => {
                write!(f, "corrupt payload from peer rank {peer}: {detail}")
            }
            TransportError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            TransportError::Bootstrap(m) => write!(f, "bootstrap failure: {m}"),
            TransportError::Decode(m) => write!(f, "decode failure: {m}"),
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransportError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e)
    }
}

pub type Result<T> = std::result::Result<T, TransportError>;

/// Traffic counters every communicator maintains; these feed the coupling
/// experiments' data-movement accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TrafficCounters {
    pub messages_sent: u64,
    pub bytes_sent: u64,
    pub messages_received: u64,
    pub bytes_received: u64,
}

/// Rank-addressed, tagged, point-to-point messaging.
///
/// Semantics (MPI-flavored):
/// * messages between a fixed (sender, receiver) pair with the same tag
///   arrive in send order,
/// * `recv` blocks until a matching message arrives,
/// * distinct tags are independent matching queues.
pub trait Communicator: Send {
    /// This process's rank in `0..size()`.
    fn rank(&self) -> usize;

    /// Number of ranks in the communicator.
    fn size(&self) -> usize;

    /// Send `payload` to rank `to` with matching `tag`.
    fn send(&self, to: usize, tag: u32, payload: Bytes) -> Result<()>;

    /// Block until a message from `from` with `tag` arrives.
    fn recv(&self, from: usize, tag: u32) -> Result<Bytes>;

    /// Like [`Communicator::recv`] but give up at `deadline` with
    /// [`TransportError::Timeout`]. This is the primitive every backend
    /// must provide so no public receive path has to block forever.
    fn recv_deadline(&self, from: usize, tag: u32, deadline: Instant) -> Result<Bytes>;

    /// Like [`Communicator::recv`] but give up after `timeout` with
    /// [`TransportError::Timeout`].
    fn recv_timeout(&self, from: usize, tag: u32, timeout: Duration) -> Result<Bytes> {
        self.recv_deadline(from, tag, Instant::now() + timeout)
    }

    /// Snapshot of this rank's traffic counters.
    fn traffic(&self) -> TrafficCounters;

    /// Validate a peer rank.
    fn check_peer(&self, peer: usize) -> Result<()> {
        if peer >= self.size() {
            return Err(TransportError::InvalidArgument(format!(
                "rank {peer} outside communicator of size {}",
                self.size()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        assert!(TransportError::Disconnected { peer: 3 }
            .to_string()
            .contains('3'));
        assert!(TransportError::Bootstrap("x".into()).to_string().contains('x'));
        let io: TransportError = std::io::Error::other("y").into();
        assert!(io.to_string().contains('y'));
        let t = TransportError::Timeout {
            peer: 7,
            elapsed: Duration::from_millis(1500),
        };
        assert!(t.to_string().contains('7') && t.to_string().contains("1.500"));
        let c = TransportError::Corrupt {
            peer: 2,
            detail: "bit flip".into(),
        };
        assert!(c.to_string().contains("bit flip"));
    }
}
