//! In-process communicator: ranks are threads, links are crossbeam
//! channels. This is the intra-job MPI role: tight and intercore coupling
//! run entirely over this fabric.

use crate::comm::{Communicator, Result, TrafficCounters, TransportError};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

// (from, tag, sender's span context when recording, payload)
type Envelope = (usize, u32, Option<eth_obs::SpanContext>, Bytes);

/// Shared counters (atomics so `&self` sends can update them).
#[derive(Default)]
struct Counters {
    messages_sent: AtomicU64,
    bytes_sent: AtomicU64,
    messages_received: AtomicU64,
    bytes_received: AtomicU64,
}

/// One rank's endpoint on the local fabric.
pub struct LocalComm {
    rank: usize,
    size: usize,
    /// Sender to every rank's inbox (including self).
    outboxes: Vec<Sender<Envelope>>,
    inbox: Receiver<Envelope>,
    /// Messages received but not yet matched by (from, tag).
    pending: Mutex<Vec<Envelope>>,
    counters: Arc<Counters>,
}

/// Factory for a set of connected [`LocalComm`] endpoints.
pub struct LocalFabric;

impl LocalFabric {
    /// Create `size` endpoints wired all-to-all.
    #[allow(clippy::new_ret_no_self)] // a fabric *is* its endpoints
    pub fn new(size: usize) -> Vec<LocalComm> {
        assert!(size > 0, "fabric needs at least one rank");
        let mut inboxes = Vec::with_capacity(size);
        let mut senders = Vec::with_capacity(size);
        for _ in 0..size {
            let (tx, rx) = unbounded::<Envelope>();
            senders.push(tx);
            inboxes.push(rx);
        }
        inboxes
            .into_iter()
            .enumerate()
            .map(|(rank, inbox)| LocalComm {
                rank,
                size,
                outboxes: senders.clone(),
                inbox,
                pending: Mutex::new(Vec::new()),
                counters: Arc::new(Counters::default()),
            })
            .collect()
    }
}

impl LocalComm {
    /// Shared receive path: match from `pending`, then pull from the
    /// channel (bounded by `deadline` when given) buffering non-matches.
    fn recv_inner(&self, from: usize, tag: u32, deadline: Option<Instant>) -> Result<Bytes> {
        let mut span = eth_obs::span(eth_obs::Phase::Recv);
        self.check_peer(from)?;
        let started = Instant::now();
        // Check messages already pulled off the channel.
        {
            let matched = {
                let mut pending = self.pending.lock();
                pending
                    .iter()
                    .position(|(f, t, _, _)| *f == from && *t == tag)
                    .map(|pos| pending.remove(pos))
            };
            if let Some((_, _, ctx, payload)) = matched {
                self.counters
                    .messages_received
                    .fetch_add(1, Ordering::Relaxed);
                self.counters
                    .bytes_received
                    .fetch_add(payload.len() as u64, Ordering::Relaxed);
                span.set_bytes(payload.len() as u64);
                if let Some(ctx) = ctx {
                    eth_obs::flow_in(ctx, from, tag, payload.len() as u64);
                }
                return Ok(payload);
            }
        }
        // Pull from the channel until a match appears; buffer the rest.
        loop {
            let envelope = match deadline {
                None => self
                    .inbox
                    .recv()
                    .map_err(|_| TransportError::Disconnected { peer: from })?,
                Some(d) => match self.inbox.recv_deadline(d) {
                    Ok(e) => e,
                    Err(RecvTimeoutError::Timeout) => {
                        return Err(TransportError::Timeout {
                            peer: from,
                            elapsed: started.elapsed(),
                        })
                    }
                    Err(RecvTimeoutError::Disconnected) => {
                        return Err(TransportError::Disconnected { peer: from })
                    }
                },
            };
            if envelope.0 == from && envelope.1 == tag {
                let (_, _, ctx, payload) = envelope;
                self.counters
                    .messages_received
                    .fetch_add(1, Ordering::Relaxed);
                self.counters
                    .bytes_received
                    .fetch_add(payload.len() as u64, Ordering::Relaxed);
                span.set_bytes(payload.len() as u64);
                if let Some(ctx) = ctx {
                    eth_obs::flow_in(ctx, from, tag, payload.len() as u64);
                }
                return Ok(payload);
            }
            self.pending.lock().push(envelope);
        }
    }
}

impl Communicator for LocalComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send(&self, to: usize, tag: u32, payload: Bytes) -> Result<()> {
        let _span = eth_obs::span_bytes(eth_obs::Phase::Send, payload.len() as u64);
        self.check_peer(to)?;
        self.counters.messages_sent.fetch_add(1, Ordering::Relaxed);
        self.counters
            .bytes_sent
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        let ctx = eth_obs::flow_context();
        if let Some(ctx) = ctx {
            eth_obs::flow_out(ctx, to, tag, payload.len() as u64);
        }
        self.outboxes[to]
            .send((self.rank, tag, ctx, payload))
            .map_err(|_| TransportError::Disconnected { peer: to })
    }

    fn recv(&self, from: usize, tag: u32) -> Result<Bytes> {
        self.recv_inner(from, tag, None)
    }

    fn recv_deadline(&self, from: usize, tag: u32, deadline: Instant) -> Result<Bytes> {
        self.recv_inner(from, tag, Some(deadline))
    }

    fn traffic(&self) -> TrafficCounters {
        TrafficCounters {
            messages_sent: self.counters.messages_sent.load(Ordering::Relaxed),
            bytes_sent: self.counters.bytes_sent.load(Ordering::Relaxed),
            messages_received: self.counters.messages_received.load(Ordering::Relaxed),
            bytes_received: self.counters.bytes_received.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn ping_pong() {
        let mut comms = LocalFabric::new(2);
        let c1 = comms.pop().unwrap();
        let c0 = comms.pop().unwrap();
        let t = thread::spawn(move || {
            let msg = c1.recv(0, 7).unwrap();
            assert_eq!(&msg[..], b"ping");
            c1.send(0, 8, Bytes::from_static(b"pong")).unwrap();
        });
        c0.send(1, 7, Bytes::from_static(b"ping")).unwrap();
        let reply = c0.recv(1, 8).unwrap();
        assert_eq!(&reply[..], b"pong");
        t.join().unwrap();
        let tr = c0.traffic();
        assert_eq!(tr.messages_sent, 1);
        assert_eq!(tr.bytes_sent, 4);
        assert_eq!(tr.messages_received, 1);
    }

    #[test]
    fn ordered_delivery_same_tag() {
        let mut comms = LocalFabric::new(2);
        let c1 = comms.pop().unwrap();
        let c0 = comms.pop().unwrap();
        for i in 0..10u8 {
            c0.send(1, 1, Bytes::from(vec![i])).unwrap();
        }
        for i in 0..10u8 {
            assert_eq!(c1.recv(0, 1).unwrap()[0], i);
        }
    }

    #[test]
    fn tag_matching_skips_other_tags() {
        let mut comms = LocalFabric::new(2);
        let c1 = comms.pop().unwrap();
        let c0 = comms.pop().unwrap();
        c0.send(1, 1, Bytes::from_static(b"first")).unwrap();
        c0.send(1, 2, Bytes::from_static(b"second")).unwrap();
        // receive tag 2 first; tag 1 is buffered, not lost
        assert_eq!(&c1.recv(0, 2).unwrap()[..], b"second");
        assert_eq!(&c1.recv(0, 1).unwrap()[..], b"first");
    }

    #[test]
    fn source_matching_skips_other_sources() {
        let mut comms = LocalFabric::new(3);
        let c2 = comms.pop().unwrap();
        let c1 = comms.pop().unwrap();
        let c0 = comms.pop().unwrap();
        c0.send(2, 5, Bytes::from_static(b"from0")).unwrap();
        c1.send(2, 5, Bytes::from_static(b"from1")).unwrap();
        // wait for both to be queued, then receive rank 1 first
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(&c2.recv(1, 5).unwrap()[..], b"from1");
        assert_eq!(&c2.recv(0, 5).unwrap()[..], b"from0");
    }

    #[test]
    fn self_send_works() {
        let mut comms = LocalFabric::new(1);
        let c0 = comms.pop().unwrap();
        c0.send(0, 3, Bytes::from_static(b"me")).unwrap();
        assert_eq!(&c0.recv(0, 3).unwrap()[..], b"me");
    }

    #[test]
    fn recv_timeout_fires_when_peer_silent() {
        let mut comms = LocalFabric::new(2);
        let _c1 = comms.pop().unwrap();
        let c0 = comms.pop().unwrap();
        let start = std::time::Instant::now();
        let err = c0
            .recv_timeout(1, 9, std::time::Duration::from_millis(40))
            .unwrap_err();
        match err {
            TransportError::Timeout { peer, elapsed } => {
                assert_eq!(peer, 1);
                assert!(elapsed >= std::time::Duration::from_millis(40));
            }
            other => panic!("expected Timeout, got {other:?}"),
        }
        assert!(start.elapsed() < std::time::Duration::from_secs(5));
    }

    #[test]
    fn recv_timeout_still_delivers_matches() {
        let mut comms = LocalFabric::new(2);
        let c1 = comms.pop().unwrap();
        let c0 = comms.pop().unwrap();
        c0.send(1, 4, Bytes::from_static(b"on time")).unwrap();
        let got = c1
            .recv_timeout(0, 4, std::time::Duration::from_secs(5))
            .unwrap();
        assert_eq!(&got[..], b"on time");
    }

    #[test]
    fn invalid_peer_rejected() {
        let mut comms = LocalFabric::new(2);
        let c0 = comms.remove(0);
        assert!(c0.send(5, 0, Bytes::new()).is_err());
        assert!(c0.recv(5, 0).is_err());
    }

    #[test]
    fn many_ranks_all_to_all() {
        let comms = LocalFabric::new(4);
        let handles: Vec<_> = comms
            .into_iter()
            .map(|c| {
                thread::spawn(move || {
                    let me = c.rank();
                    for to in 0..c.size() {
                        c.send(to, 9, Bytes::from(vec![me as u8])).unwrap();
                    }
                    let mut got = Vec::new();
                    for from in 0..c.size() {
                        got.push(c.recv(from, 9).unwrap()[0]);
                    }
                    got
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), vec![0, 1, 2, 3]);
        }
    }
}
