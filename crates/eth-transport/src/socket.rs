//! TCP socket backend.
//!
//! Two shapes, both bootstrapped through the [`crate::layout`] file exactly
//! as Section III-C describes:
//!
//! * [`StreamChannel`] — the paper's sim↔viz pairing: a simulation-proxy
//!   rank [`listen_as`]s (publishes its address, opens its port and waits);
//!   a visualization-proxy rank [`connect_to`]s it (polls the layout file,
//!   waits for the port, connects, and announces its own rank in a 4-byte
//!   handshake so both ends know who they are talking to). Used by
//!   internode coupling when the two proxies run as separate applications.
//! * [`SocketFabric`] — a full N-rank mesh over loopback TCP implementing
//!   [`Communicator`], interchangeable with the in-process backend.
//!
//! Robustness properties (the fault-tolerance subsystem relies on these):
//! * every receive has a deadline-bounded variant, and disconnects carry
//!   the *actual* peer rank,
//! * bootstrap dialing retries with seeded exponential backoff + jitter
//!   and a bounded retry budget instead of a fixed-interval spin,
//! * a dead peer surfaces as [`TransportError::Disconnected`] on the next
//!   matching receive, never as an indefinite hang.

use crate::comm::{Communicator, Result, TrafficCounters, TransportError};
use crate::fault::Backoff;
use crate::layout::LayoutFile;
use crate::message::{read_frame, write_frame, Frame};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::collections::HashSet;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;
use std::time::{Duration, Instant};

/// A framed, tag-matched channel to a single peer over TCP.
///
/// Debug shows the traffic counters only (the stream itself is opaque).
pub struct StreamChannel {
    writer: Mutex<TcpStream>,
    inbox: Receiver<Frame>,
    pending: Mutex<Vec<Frame>>,
    local_rank: u32,
    /// The peer's logical rank, learned from the bootstrap handshake.
    peer: usize,
    /// When set, plain [`StreamChannel::recv`] applies this timeout, so no
    /// receive on this channel can block indefinitely.
    default_deadline: Mutex<Option<Duration>>,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
}

fn spawn_reader(stream: TcpStream, tx: Sender<Frame>) {
    thread::spawn(move || {
        let mut stream = stream;
        // EOF or a decode error ends the watch; dropping `tx` closes the
        // channel so blocked receivers see Disconnected.
        while let Ok(frame) = read_frame(&mut stream) {
            if tx.send(frame).is_err() {
                break;
            }
        }
    });
}

impl Drop for StreamChannel {
    fn drop(&mut self) {
        // The reader thread holds a clone of the fd; without an explicit
        // shutdown the connection would stay open (and the peer would
        // never see EOF) until the reader unblocks on its own.
        let _ = self.writer.lock().shutdown(std::net::Shutdown::Both);
    }
}

impl std::fmt::Debug for StreamChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamChannel")
            .field("local_rank", &self.local_rank)
            .field("peer", &self.peer)
            .field("bytes_sent", &self.bytes_sent())
            .field("bytes_received", &self.bytes_received())
            .finish_non_exhaustive()
    }
}

impl StreamChannel {
    fn new(stream: TcpStream, local_rank: u32, peer: usize) -> Result<StreamChannel> {
        stream.set_nodelay(true)?;
        let reader = stream.try_clone()?;
        let (tx, rx) = unbounded();
        spawn_reader(reader, tx);
        Ok(StreamChannel {
            writer: Mutex::new(stream),
            inbox: rx,
            pending: Mutex::new(Vec::new()),
            local_rank,
            peer,
            default_deadline: Mutex::new(None),
            bytes_sent: AtomicU64::new(0),
            bytes_received: AtomicU64::new(0),
        })
    }

    /// This endpoint's logical rank (stamped into outgoing frames).
    pub fn local_rank(&self) -> usize {
        self.local_rank as usize
    }

    /// The logical rank on the far side of this link.
    pub fn peer_rank(&self) -> usize {
        self.peer
    }

    /// Configure a default receive deadline: once set, plain
    /// [`StreamChannel::recv`] gives up after this long with
    /// [`TransportError::Timeout`] instead of blocking forever.
    pub fn set_recv_deadline(&self, deadline: Option<Duration>) {
        *self.default_deadline.lock() = deadline;
    }

    /// Send a tagged payload to the peer.
    pub fn send(&self, tag: u32, payload: Bytes) -> Result<()> {
        let _span = eth_obs::span_bytes(eth_obs::Phase::Send, payload.len() as u64);
        self.bytes_sent
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        let ctx = eth_obs::flow_context();
        if let Some(ctx) = ctx {
            eth_obs::flow_out(ctx, self.peer, tag, payload.len() as u64);
        }
        let mut w = self.writer.lock();
        write_frame(&mut *w, self.local_rank, tag, ctx, &payload)
    }

    /// Block until a frame with `tag` arrives (bounded by the configured
    /// default deadline, if any).
    pub fn recv(&self, tag: u32) -> Result<Bytes> {
        let timeout = *self.default_deadline.lock();
        match timeout {
            Some(t) => self.recv_inner(tag, Some(Instant::now() + t)),
            None => self.recv_inner(tag, None),
        }
    }

    /// Receive with an explicit timeout.
    pub fn recv_timeout(&self, tag: u32, timeout: Duration) -> Result<Bytes> {
        self.recv_inner(tag, Some(Instant::now() + timeout))
    }

    /// Receive, giving up at `deadline`.
    pub fn recv_deadline(&self, tag: u32, deadline: Instant) -> Result<Bytes> {
        self.recv_inner(tag, Some(deadline))
    }

    fn recv_inner(&self, tag: u32, deadline: Option<Instant>) -> Result<Bytes> {
        let mut span = eth_obs::span(eth_obs::Phase::Recv);
        let started = Instant::now();
        let matched = {
            let mut pending = self.pending.lock();
            pending
                .iter()
                .position(|f| f.tag == tag)
                .map(|pos| pending.remove(pos))
        };
        if let Some(f) = matched {
            self.bytes_received
                .fetch_add(f.payload.len() as u64, Ordering::Relaxed);
            span.set_bytes(f.payload.len() as u64);
            if let Some(ctx) = f.ctx {
                eth_obs::flow_in(ctx, f.from as usize, tag, f.payload.len() as u64);
            }
            return Ok(f.payload);
        }
        loop {
            let frame = match deadline {
                None => self
                    .inbox
                    .recv()
                    .map_err(|_| TransportError::Disconnected { peer: self.peer })?,
                Some(d) => match self.inbox.recv_deadline(d) {
                    Ok(f) => f,
                    Err(RecvTimeoutError::Timeout) => {
                        return Err(TransportError::Timeout {
                            peer: self.peer,
                            elapsed: started.elapsed(),
                        })
                    }
                    Err(RecvTimeoutError::Disconnected) => {
                        return Err(TransportError::Disconnected { peer: self.peer })
                    }
                },
            };
            if frame.tag == tag {
                self.bytes_received
                    .fetch_add(frame.payload.len() as u64, Ordering::Relaxed);
                span.set_bytes(frame.payload.len() as u64);
                if let Some(ctx) = frame.ctx {
                    eth_obs::flow_in(ctx, frame.from as usize, tag, frame.payload.len() as u64);
                }
                return Ok(frame.payload);
            }
            self.pending.lock().push(frame);
        }
    }

    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }

    pub fn bytes_received(&self) -> u64 {
        self.bytes_received.load(Ordering::Relaxed)
    }
}

/// Simulation-proxy side: publish an address under `rank`, open the port
/// and wait for exactly one connection (the paired visualization rank,
/// which announces its own rank in a 4-byte handshake).
pub fn listen_as(layout: &LayoutFile, rank: usize) -> Result<StreamChannel> {
    let _span = eth_obs::span(eth_obs::Phase::Bootstrap);
    let listener = TcpListener::bind("127.0.0.1:0")?;
    layout.publish(rank, listener.local_addr()?)?;
    let (stream, _addr) = listener.accept()?;
    let peer = {
        use std::io::Read as _;
        let mut s = &stream;
        let mut buf = [0u8; 4];
        s.read_exact(&mut buf)?;
        u32::from_le_bytes(buf) as usize
    };
    StreamChannel::new(stream, rank as u32, peer)
}

/// Visualization-proxy side: poll the layout file for `rank`'s address,
/// wait for the port to open, connect, and announce `local_rank` (the
/// caller's real rank — it is stamped into every outgoing frame's `from`
/// field and reported to the listener through the handshake).
///
/// Both waits retry with seeded exponential backoff + jitter under a
/// bounded attempt budget, instead of spinning at a fixed interval.
pub fn connect_to(
    layout: &LayoutFile,
    rank: usize,
    local_rank: usize,
    timeout: Duration,
) -> Result<StreamChannel> {
    let _span = eth_obs::span(eth_obs::Phase::Bootstrap);
    let deadline = Instant::now() + timeout;
    let seed = ((local_rank as u64) << 32) ^ rank as u64;
    // Wait for the address to be published.
    let mut backoff = Backoff::new(seed);
    let addr = loop {
        if let Some(addr) = layout.lookup(rank)? {
            break addr;
        }
        if Instant::now() > deadline {
            return Err(TransportError::Bootstrap(format!(
                "rank {rank} never published its address \
                 (gave up after {} poll attempts)",
                backoff.attempts()
            )));
        }
        if !backoff.snooze() {
            return Err(TransportError::Bootstrap(format!(
                "rank {rank} never published its address \
                 (retry budget of {} attempts exhausted)",
                backoff.attempts()
            )));
        }
    };
    // Wait for the port to open.
    let mut backoff = Backoff::new(seed ^ 0xD1A1);
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                {
                    use std::io::Write as _;
                    let mut s = &stream;
                    s.write_all(&(local_rank as u32).to_le_bytes())?;
                }
                return StreamChannel::new(stream, local_rank as u32, rank);
            }
            Err(e) => {
                if Instant::now() > deadline {
                    return Err(TransportError::Bootstrap(format!(
                        "cannot connect to rank {rank} at {addr}: {e} \
                         (gave up after {} dial attempts)",
                        backoff.attempts()
                    )));
                }
                if !backoff.snooze() {
                    return Err(TransportError::Bootstrap(format!(
                        "cannot connect to rank {rank} at {addr}: {e} \
                         (retry budget of {} attempts exhausted)",
                        backoff.attempts()
                    )));
                }
            }
        }
    }
}

// (from, tag, sender's span context when recording, payload)
type Envelope = (usize, u32, Option<eth_obs::SpanContext>, Bytes);

/// What the fabric's reader threads feed into the shared inbox: a decoded
/// frame, or notice that a peer's connection ended (EOF or decode error).
enum Event {
    Frame(Envelope),
    Gone(usize),
}

fn spawn_fabric_reader(stream: TcpStream, peer: usize, tx: Sender<Event>) {
    thread::spawn(move || {
        let mut reader = stream;
        while let Ok(frame) = read_frame(&mut reader) {
            if tx
                .send(Event::Frame((
                    frame.from as usize,
                    frame.tag,
                    frame.ctx,
                    frame.payload,
                )))
                .is_err()
            {
                return; // fabric itself is gone
            }
        }
        let _ = tx.send(Event::Gone(peer));
    });
}

/// Full-mesh TCP communicator over loopback; interchangeable with
/// [`crate::local::LocalComm`].
pub struct SocketFabric {
    rank: usize,
    size: usize,
    /// Writer stream per peer (None for self).
    writers: Vec<Option<Mutex<TcpStream>>>,
    inbox: Receiver<Event>,
    /// Loopback for self-sends.
    self_tx: Sender<Event>,
    pending: Mutex<Vec<Envelope>>,
    /// Peers whose connection has ended.
    dead: Mutex<HashSet<usize>>,
    messages_sent: AtomicU64,
    bytes_sent: AtomicU64,
    messages_received: AtomicU64,
    bytes_received: AtomicU64,
}

impl Drop for SocketFabric {
    fn drop(&mut self) {
        // Reader threads hold fd clones; without an explicit shutdown the
        // connections would never send FIN and peers would never observe
        // this rank's death.
        for w in self.writers.iter().flatten() {
            let _ = w.lock().shutdown(std::net::Shutdown::Both);
        }
    }
}

impl SocketFabric {
    /// Bootstrap rank `rank` of a `size`-rank mesh through `layout`.
    ///
    /// All `size` processes must call this concurrently. Rank i accepts
    /// connections from ranks > i and dials ranks < i; each dialer sends a
    /// 4-byte rank handshake. Dialing retries with exponential backoff +
    /// jitter under `timeout`.
    pub fn bootstrap(
        rank: usize,
        size: usize,
        layout: &LayoutFile,
        timeout: Duration,
    ) -> Result<SocketFabric> {
        if rank >= size || size == 0 {
            return Err(TransportError::InvalidArgument(format!(
                "rank {rank} outside size {size}"
            )));
        }
        let deadline = Instant::now() + timeout;
        let listener = TcpListener::bind("127.0.0.1:0")?;
        layout.publish(rank, listener.local_addr()?)?;

        let (tx, rx) = unbounded::<Event>();
        let mut writers: Vec<Option<Mutex<TcpStream>>> = Vec::with_capacity(size);
        for _ in 0..size {
            writers.push(None);
        }

        // Dial lower ranks.
        let addrs = layout.wait_for(size, timeout)?;
        for peer in 0..rank {
            let mut backoff = Backoff::new(((rank as u64) << 32) | peer as u64);
            let stream = loop {
                match TcpStream::connect(addrs[&peer]) {
                    Ok(s) => break s,
                    Err(e) => {
                        if Instant::now() > deadline {
                            return Err(TransportError::Bootstrap(format!(
                                "dial rank {peer}: {e} (gave up after {} attempts)",
                                backoff.attempts()
                            )));
                        }
                        if !backoff.snooze() {
                            return Err(TransportError::Bootstrap(format!(
                                "dial rank {peer}: {e} \
                                 (retry budget of {} attempts exhausted)",
                                backoff.attempts()
                            )));
                        }
                    }
                }
            };
            stream.set_nodelay(true)?;
            // handshake: who am I
            {
                use std::io::Write as _;
                let mut s = &stream;
                s.write_all(&(rank as u32).to_le_bytes())?;
            }
            spawn_fabric_reader(stream.try_clone()?, peer, tx.clone());
            writers[peer] = Some(Mutex::new(stream));
        }

        // Accept higher ranks.
        let expected = size - rank - 1;
        for _ in 0..expected {
            let (stream, _) = listener.accept()?;
            stream.set_nodelay(true)?;
            // read handshake
            let peer = {
                use std::io::Read as _;
                let mut s = &stream;
                let mut buf = [0u8; 4];
                s.read_exact(&mut buf)?;
                u32::from_le_bytes(buf) as usize
            };
            if peer >= size {
                return Err(TransportError::Bootstrap(format!(
                    "handshake from unknown rank {peer}"
                )));
            }
            spawn_fabric_reader(stream.try_clone()?, peer, tx.clone());
            writers[peer] = Some(Mutex::new(stream));
        }

        Ok(SocketFabric {
            rank,
            size,
            writers,
            inbox: rx,
            self_tx: tx,
            pending: Mutex::new(Vec::new()),
            dead: Mutex::new(HashSet::new()),
            messages_sent: AtomicU64::new(0),
            bytes_sent: AtomicU64::new(0),
            messages_received: AtomicU64::new(0),
            bytes_received: AtomicU64::new(0),
        })
    }

    fn recv_inner(&self, from: usize, tag: u32, deadline: Option<Instant>) -> Result<Bytes> {
        let mut span = eth_obs::span(eth_obs::Phase::Recv);
        self.check_peer(from)?;
        let started = Instant::now();
        let matched = {
            let mut pending = self.pending.lock();
            pending
                .iter()
                .position(|(f, t, _, _)| *f == from && *t == tag)
                .map(|pos| pending.remove(pos))
        };
        if let Some((_, _, ctx, payload)) = matched {
            self.messages_received.fetch_add(1, Ordering::Relaxed);
            self.bytes_received
                .fetch_add(payload.len() as u64, Ordering::Relaxed);
            span.set_bytes(payload.len() as u64);
            if let Some(ctx) = ctx {
                eth_obs::flow_in(ctx, from, tag, payload.len() as u64);
            }
            return Ok(payload);
        }
        // Buffered messages from a now-dead peer (checked above) are still
        // delivered; with none left, a dead peer is an immediate error.
        if self.dead.lock().contains(&from) {
            return Err(TransportError::Disconnected { peer: from });
        }
        loop {
            let event = match deadline {
                None => self
                    .inbox
                    .recv()
                    .map_err(|_| TransportError::Disconnected { peer: from })?,
                Some(d) => match self.inbox.recv_deadline(d) {
                    Ok(e) => e,
                    Err(RecvTimeoutError::Timeout) => {
                        return Err(TransportError::Timeout {
                            peer: from,
                            elapsed: started.elapsed(),
                        })
                    }
                    Err(RecvTimeoutError::Disconnected) => {
                        return Err(TransportError::Disconnected { peer: from })
                    }
                },
            };
            match event {
                Event::Frame(envelope) => {
                    if envelope.0 == from && envelope.1 == tag {
                        let (_, _, ctx, payload) = envelope;
                        self.messages_received.fetch_add(1, Ordering::Relaxed);
                        self.bytes_received
                            .fetch_add(payload.len() as u64, Ordering::Relaxed);
                        span.set_bytes(payload.len() as u64);
                        if let Some(ctx) = ctx {
                            eth_obs::flow_in(ctx, from, tag, payload.len() as u64);
                        }
                        return Ok(payload);
                    }
                    self.pending.lock().push(envelope);
                }
                Event::Gone(peer) => {
                    self.dead.lock().insert(peer);
                    if peer == from {
                        return Err(TransportError::Disconnected { peer: from });
                    }
                }
            }
        }
    }
}

impl Communicator for SocketFabric {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send(&self, to: usize, tag: u32, payload: Bytes) -> Result<()> {
        let _span = eth_obs::span_bytes(eth_obs::Phase::Send, payload.len() as u64);
        self.check_peer(to)?;
        if to != self.rank && self.dead.lock().contains(&to) {
            return Err(TransportError::Disconnected { peer: to });
        }
        self.messages_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        let ctx = eth_obs::flow_context();
        if let Some(ctx) = ctx {
            eth_obs::flow_out(ctx, to, tag, payload.len() as u64);
        }
        if to == self.rank {
            self.self_tx
                .send(Event::Frame((self.rank, tag, ctx, payload)))
                .map_err(|_| TransportError::Disconnected { peer: to })?;
            return Ok(());
        }
        let writer = self.writers[to]
            .as_ref()
            .ok_or(TransportError::Disconnected { peer: to })?;
        let mut w = writer.lock();
        write_frame(&mut *w, self.rank as u32, tag, ctx, &payload)
    }

    fn recv(&self, from: usize, tag: u32) -> Result<Bytes> {
        self.recv_inner(from, tag, None)
    }

    fn recv_deadline(&self, from: usize, tag: u32, deadline: Instant) -> Result<Bytes> {
        self.recv_inner(from, tag, Some(deadline))
    }

    fn traffic(&self) -> TrafficCounters {
        TrafficCounters {
            messages_sent: self.messages_sent.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            messages_received: self.messages_received.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("eth-socket-tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn pair_link_follows_paper_bootstrap() {
        // sim rank publishes + listens; viz rank polls + connects.
        let layout = LayoutFile::create(&tmp("pair")).unwrap();
        let l2 = layout.clone();
        let sim = thread::spawn(move || {
            let chan = listen_as(&l2, 0).unwrap();
            // receive a request, answer with data
            let req = chan.recv(1).unwrap();
            assert_eq!(&req[..], b"need step 0");
            chan.send(2, Bytes::from_static(b"here is step 0")).unwrap();
            chan.bytes_sent()
        });
        let viz = thread::spawn(move || {
            let chan = connect_to(&layout, 0, 1, Duration::from_secs(10)).unwrap();
            chan.send(1, Bytes::from_static(b"need step 0")).unwrap();
            let data = chan.recv(2).unwrap();
            assert_eq!(&data[..], b"here is step 0");
        });
        let sent = sim.join().unwrap();
        viz.join().unwrap();
        assert_eq!(sent, 14);
    }

    #[test]
    fn pair_link_knows_true_peer_ranks() {
        let layout = LayoutFile::create(&tmp("peers")).unwrap();
        let l2 = layout.clone();
        let sim = thread::spawn(move || {
            let chan = listen_as(&l2, 4).unwrap();
            chan.recv(1).unwrap();
            (chan.local_rank(), chan.peer_rank())
        });
        let chan = connect_to(&layout, 4, 9, Duration::from_secs(10)).unwrap();
        assert_eq!(chan.local_rank(), 9);
        assert_eq!(chan.peer_rank(), 4);
        chan.send(1, Bytes::from_static(b"hi")).unwrap();
        // the handshake (not a sentinel) tells the listener who dialed
        assert_eq!(sim.join().unwrap(), (4, 9));
    }

    #[test]
    fn pair_link_tag_matching() {
        let layout = LayoutFile::create(&tmp("tags")).unwrap();
        let l2 = layout.clone();
        let a = thread::spawn(move || {
            let chan = listen_as(&l2, 0).unwrap();
            chan.send(10, Bytes::from_static(b"ten")).unwrap();
            chan.send(20, Bytes::from_static(b"twenty")).unwrap();
        });
        let chan = connect_to(&layout, 0, 1, Duration::from_secs(10)).unwrap();
        // ask for tag 20 first
        assert_eq!(&chan.recv(20).unwrap()[..], b"twenty");
        assert_eq!(&chan.recv(10).unwrap()[..], b"ten");
        a.join().unwrap();
    }

    #[test]
    fn stream_recv_timeout_fires() {
        let layout = LayoutFile::create(&tmp("srt")).unwrap();
        let l2 = layout.clone();
        let sim = thread::spawn(move || {
            let chan = listen_as(&l2, 0).unwrap();
            // hold the connection open but never send tag 9
            chan.recv(1).unwrap();
        });
        let chan = connect_to(&layout, 0, 1, Duration::from_secs(10)).unwrap();
        let err = chan.recv_timeout(9, Duration::from_millis(60)).unwrap_err();
        match err {
            TransportError::Timeout { peer, elapsed } => {
                assert_eq!(peer, 0);
                assert!(elapsed >= Duration::from_millis(60));
            }
            other => panic!("expected Timeout, got {other:?}"),
        }
        // default deadline makes plain recv bounded too
        chan.set_recv_deadline(Some(Duration::from_millis(40)));
        assert!(matches!(
            chan.recv(9),
            Err(TransportError::Timeout { peer: 0, .. })
        ));
        chan.send(1, Bytes::from_static(b"done")).unwrap();
        sim.join().unwrap();
    }

    #[test]
    fn connect_times_out_without_listener() {
        let layout = LayoutFile::create(&tmp("timeout")).unwrap();
        let r = connect_to(&layout, 0, 1, Duration::from_millis(60));
        assert!(matches!(r.err(), Some(TransportError::Bootstrap(_))));
    }

    #[test]
    fn fabric_all_to_all() {
        let layout = LayoutFile::create(&tmp("fabric")).unwrap();
        let size = 3;
        let handles: Vec<_> = (0..size)
            .map(|rank| {
                let layout = layout.clone();
                thread::spawn(move || {
                    let comm =
                        SocketFabric::bootstrap(rank, size, &layout, Duration::from_secs(10))
                            .unwrap();
                    for to in 0..size {
                        comm.send(to, 5, Bytes::from(vec![rank as u8])).unwrap();
                    }
                    let mut got = Vec::new();
                    for from in 0..size {
                        got.push(comm.recv(from, 5).unwrap()[0]);
                    }
                    got
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), vec![0, 1, 2]);
        }
    }

    #[test]
    fn fabric_large_payload() {
        let layout = LayoutFile::create(&tmp("large")).unwrap();
        let l2 = layout.clone();
        let a = thread::spawn(move || {
            let comm = SocketFabric::bootstrap(0, 2, &l2, Duration::from_secs(10)).unwrap();
            let big = Bytes::from(vec![7u8; 2_000_000]);
            comm.send(1, 1, big).unwrap();
        });
        let b = thread::spawn(move || {
            let comm = SocketFabric::bootstrap(1, 2, &layout, Duration::from_secs(10)).unwrap();
            let data = comm.recv(0, 1).unwrap();
            assert_eq!(data.len(), 2_000_000);
            assert!(data.iter().all(|&b| b == 7));
        });
        a.join().unwrap();
        b.join().unwrap();
    }

    #[test]
    fn fabric_recv_timeout_names_the_silent_peer() {
        let layout = LayoutFile::create(&tmp("ftimeout")).unwrap();
        let l2 = layout.clone();
        let a = thread::spawn(move || {
            let comm = SocketFabric::bootstrap(0, 2, &l2, Duration::from_secs(10)).unwrap();
            // never send; just wait for the release message
            comm.recv(1, 2).unwrap();
        });
        let comm = SocketFabric::bootstrap(1, 2, &layout, Duration::from_secs(10)).unwrap();
        let err = comm
            .recv_timeout(0, 1, Duration::from_millis(50))
            .unwrap_err();
        assert!(matches!(err, TransportError::Timeout { peer: 0, .. }), "{err}");
        comm.send(0, 2, Bytes::new()).unwrap();
        a.join().unwrap();
    }

    #[test]
    fn fabric_disconnect_names_the_dead_peer() {
        let layout = LayoutFile::create(&tmp("fdead")).unwrap();
        let l2 = layout.clone();
        let a = thread::spawn(move || {
            let comm = SocketFabric::bootstrap(0, 2, &l2, Duration::from_secs(10)).unwrap();
            comm.send(1, 1, Bytes::from_static(b"last words")).unwrap();
            // then the rank "dies": fabric dropped, sockets shut down
            drop(comm);
        });
        let comm = SocketFabric::bootstrap(1, 2, &layout, Duration::from_secs(10)).unwrap();
        // the buffered message still arrives…
        assert_eq!(&comm.recv(0, 1).unwrap()[..], b"last words");
        a.join().unwrap();
        // …then the death surfaces with the true peer rank, not a hang
        let err = comm.recv(0, 1).unwrap_err();
        assert!(matches!(err, TransportError::Disconnected { peer: 0 }), "{err}");
    }
}
