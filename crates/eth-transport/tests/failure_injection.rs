//! Failure-injection tests: the transport layer must fail loudly and
//! cleanly, never hang or panic, when peers die or inputs are malformed.

use bytes::Bytes;
use eth_transport::comm::{Communicator, TransportError};
use eth_transport::layout::LayoutFile;
use eth_transport::local::LocalFabric;
use eth_transport::socket::{connect_to, listen_as};
use std::path::PathBuf;
use std::thread;
use std::time::Duration;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("eth-failure-tests").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn recv_after_all_peers_dropped_errors() {
    let mut comms = LocalFabric::new(2);
    let c1 = comms.pop().unwrap();
    let c0 = comms.pop().unwrap();
    drop(c1);
    // c0 still holds a sender clone to its own inbox, so the channel is
    // only "dead" once every sender is gone; a self-send must still work…
    c0.send(0, 1, Bytes::from_static(b"self")).unwrap();
    assert_eq!(&c0.recv(0, 1).unwrap()[..], b"self");
    // …and sending to the dropped peer is an error or a silent queue to a
    // closed channel; either way it must not panic.
    let _ = c0.send(1, 1, Bytes::from_static(b"ghost"));
}

#[test]
fn socket_peer_disconnect_surfaces_as_error() {
    let layout = LayoutFile::create(&tmp("disconnect")).unwrap();
    let l2 = layout.clone();
    let listener = thread::spawn(move || {
        let chan = listen_as(&l2, 0).unwrap();
        // say one thing, then hang up
        chan.send(1, Bytes::from_static(b"bye")).unwrap();
        drop(chan);
    });
    let chan = connect_to(&layout, 0, 1, Duration::from_secs(10)).unwrap();
    assert_eq!(&chan.recv(1).unwrap()[..], b"bye");
    listener.join().unwrap();
    // the peer is gone: further recv must error (not hang) and must name
    // the actual peer rank, not a placeholder
    let err = chan.recv(2).unwrap_err();
    assert!(matches!(err, TransportError::Disconnected { peer: 0 }), "{err}");
}

#[test]
fn send_to_dead_socket_peer_eventually_errors() {
    let layout = LayoutFile::create(&tmp("deadsend")).unwrap();
    let l2 = layout.clone();
    let listener = thread::spawn(move || {
        let _chan = listen_as(&l2, 0).unwrap();
        // drop immediately
    });
    let chan = connect_to(&layout, 0, 1, Duration::from_secs(10)).unwrap();
    listener.join().unwrap();
    // TCP may buffer the first sends; repeated sends must surface an error
    // within a bounded number of attempts, and must never panic.
    let mut failed = false;
    for _ in 0..200 {
        if chan.send(1, Bytes::from(vec![0u8; 64 * 1024])).is_err() {
            failed = true;
            break;
        }
    }
    assert!(failed, "writes to a dead peer never failed");
}

#[test]
fn corrupt_layout_entry_fails_bootstrap() {
    let dir = tmp("corrupt");
    let layout = LayoutFile::create(&dir).unwrap();
    std::fs::write(dir.join("rank_0000.addr"), "999.999.999.999:not-a-port").unwrap();
    let err = connect_to(&layout, 0, 1, Duration::from_millis(200)).unwrap_err();
    assert!(matches!(err, TransportError::Bootstrap(_)), "{err}");
}

#[test]
fn connect_to_never_published_rank_times_out_quickly() {
    let layout = LayoutFile::create(&tmp("absent")).unwrap();
    let start = std::time::Instant::now();
    let err = connect_to(&layout, 3, 1, Duration::from_millis(150)).unwrap_err();
    assert!(matches!(err, TransportError::Bootstrap(_)));
    assert!(start.elapsed() < Duration::from_secs(5), "timeout not honored");
}

#[test]
fn malformed_frame_kills_connection_not_process() {
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    // hand-made peer that sends garbage bytes
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let layout = LayoutFile::create(&tmp("garbage")).unwrap();
    layout.publish(0, addr).unwrap();
    let garbler = thread::spawn(move || {
        let (mut s, _) = listener.accept().unwrap();
        // full 20-byte header with a wrong magic word and a 17 GB length
        // claim: the reader must reject it, never allocate the payload
        let mut junk = Vec::new();
        junk.extend_from_slice(&0xBAAD_F00Du32.to_le_bytes());
        junk.extend_from_slice(&0u32.to_le_bytes());
        junk.extend_from_slice(&1u32.to_le_bytes());
        junk.extend_from_slice(&(1u64 << 35).to_le_bytes());
        s.write_all(&junk).unwrap();
        s.flush().unwrap();
        // keep the socket open briefly so the reader sees the header
        thread::sleep(Duration::from_millis(100));
    });
    let chan = connect_to(&layout, 0, 1, Duration::from_secs(10)).unwrap();
    let err = chan.recv(1).unwrap_err();
    assert!(matches!(err, TransportError::Disconnected { .. }), "{err}");
    garbler.join().unwrap();
    let _ = TcpStream::connect(addr); // tidy: unblock any lingering accept
}

#[test]
fn bootstrap_backoff_rides_out_a_delayed_listener() {
    // The listener comes up well after the dialer starts: the dialer's
    // backoff loop must keep polling the layout file (not give up, not
    // busy-spin) and connect once the address appears.
    let layout = LayoutFile::create(&tmp("latecomer")).unwrap();
    let l2 = layout.clone();
    let delay = Duration::from_millis(150);
    let listener = thread::spawn(move || {
        thread::sleep(delay);
        let chan = listen_as(&l2, 0).unwrap();
        let msg = chan.recv(1).unwrap();
        assert_eq!(&msg[..], b"patience pays");
        chan.peer_rank()
    });
    let start = std::time::Instant::now();
    let chan = connect_to(&layout, 0, 7, Duration::from_secs(10)).unwrap();
    assert!(
        start.elapsed() >= delay,
        "connected before the listener existed?"
    );
    chan.send(1, Bytes::from_static(b"patience pays")).unwrap();
    assert_eq!(listener.join().unwrap(), 7);
}
