//! Flow stitching under injected faults: a chaos plan that drops,
//! corrupts, and delays messages must still produce a stitched trace
//! whose accounting balances — every send attempt is either a matched
//! flow or a counted dangling flow-out, never a mismatched arrow and
//! never a panic.

use bytes::Bytes;
use eth_transport::chaos::ChaosComm;
use eth_transport::comm::Communicator;
use eth_transport::fault::{FaultKind, FaultPlan, DATA_TAG_MIN};
use eth_transport::local::LocalFabric;

const RANKS: usize = 3;
const SENDS: usize = 8;

#[test]
fn chaos_drops_dangle_and_corrupt_messages_still_pair() {
    let plan = FaultPlan {
        seed: 7,
        drop_prob: 0.25,
        corrupt_prob: 0.25,
        delay_prob: 0.2,
        delay_ms: 1,
        recv_deadline_ms: 250,
        ..FaultPlan::default()
    };

    let recorder = eth_obs::Recorder::new();
    let guard = recorder.attach();
    let ctx = eth_obs::current_context();

    let comms: Vec<ChaosComm<_>> = LocalFabric::new(RANKS)
        .into_iter()
        .map(|c| ChaosComm::new(c, plan.clone()))
        .collect();
    let mut logs = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for comm in &comms {
            let ctx = ctx.clone();
            handles.push(scope.spawn(move || {
                let _obs = ctx.attach();
                let rank = comm.rank();
                eth_obs::set_rank(rank);
                for peer in (0..RANKS).filter(|&p| p != rank) {
                    for i in 0..SENDS {
                        let tag = DATA_TAG_MIN + i as u32;
                        comm.send(peer, tag, Bytes::from(vec![rank as u8; 64]))
                            .expect("chaos send never errors without a disconnect plan");
                    }
                }
                // Drain what survived. A dropped message costs one
                // bounded deadline; a corrupted one arrives (and thus
                // pairs its flow) before failing integrity.
                for peer in (0..RANKS).filter(|&p| p != rank) {
                    for i in 0..SENDS {
                        let _ = comm.recv(peer, DATA_TAG_MIN + i as u32);
                    }
                }
            }));
        }
        for h in handles {
            h.join().expect("no rank panicked");
        }
    });
    for comm in &comms {
        logs.extend(comm.fault_log());
    }
    drop(guard);
    let trace = recorder.take();
    assert!(trace.check_well_formed().is_ok());

    let total_sends = RANKS * (RANKS - 1) * SENDS;
    let drops = logs.iter().filter(|e| e.kind == FaultKind::Drop).count();
    let corrupts = logs.iter().filter(|e| e.kind == FaultKind::Corrupt).count();
    let delays = logs.iter().filter(|e| e.kind == FaultKind::Delay).count();
    assert!(drops > 0 && corrupts > 0 && delays > 0, "seed 7 must exercise every fault kind: {drops} drops, {corrupts} corrupts, {delays} delays");

    let merged = eth_obs::MergedTrace::build(trace);
    // Balanced books: every send attempt is exactly one of matched or
    // dangling-out. Nothing arrives unsent.
    assert_eq!(merged.matched.len() + merged.dangling_out as usize, total_sends);
    assert_eq!(merged.dangling_in, 0);
    // Dropped sends can never pair; corrupt and delayed ones all did
    // (the deadline is far above the injected delay), so the dangling
    // count is exactly the drop count.
    assert_eq!(merged.dangling_out as usize, drops);

    // The export draws one complete arrow per matched pair — begins and
    // ends always balance, whatever the faults did.
    let chrome = merged.to_chrome_trace();
    assert_eq!(chrome.matches("\"ph\":\"s\"").count(), merged.matched.len());
    assert_eq!(chrome.matches("\"ph\":\"f\"").count(), merged.matched.len());
    for f in &merged.matched {
        assert!(f.dst.ts_ns >= f.src.ts_ns, "arrow points backwards");
    }
}
