//! xRAGE-like asteroid-impact volumetric data.
//!
//! The paper's grid workload is an xRAGE asteroid-impact run whose
//! visualized quantity is temperature near the strike (Section IV-A). We
//! cannot have xRAGE outputs; this generator produces a structurally
//! equivalent field (substitution documented in DESIGN.md):
//!
//! * a Sedov–Taylor-flavored expanding blast front — a hot shell whose
//!   radius grows as `t^0.4` with a hot interior and an ambient exterior,
//! * multiplicative turbulence built from incommensurate sine modes so
//!   slices and isosurfaces are not trivially smooth,
//! * generated through the AMR → structured downsampling path
//!   ([`crate::amr`]) the paper describes, so the structured grids carry
//!   realistic resampling structure.

use crate::amr::{AmrTree, RefinePolicy};
use eth_data::error::Result;
use eth_data::{Aabb, UniformGrid, Vec3};
use serde::{Deserialize, Serialize};

/// Configuration for the xRAGE-like generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct XrageConfig {
    /// Output structured-grid dimensions (the downsampled grid the paper
    /// hands to visualization; e.g. small 610x375x320 scaled down).
    pub dims: [usize; 3],
    /// Domain edge length.
    pub domain_size: f32,
    /// Impact point (defaults to slightly off-center, like an ocean strike).
    pub impact: Vec3,
    /// Ambient temperature.
    pub ambient: f32,
    /// Peak blast temperature at t=0 front.
    pub peak: f32,
    /// Blast expansion speed scale.
    pub expansion: f32,
    /// Turbulence amplitude in [0, 1].
    pub turbulence: f32,
    /// AMR refinement depth used before downsampling.
    pub amr_depth: u8,
    /// Seed folded into the turbulence phases.
    pub seed: u64,
}

impl Default for XrageConfig {
    fn default() -> Self {
        XrageConfig {
            dims: [64, 40, 32],
            domain_size: 2.0,
            impact: Vec3::new(0.9, 1.1, 0.6),
            ambient: 300.0,
            peak: 8000.0,
            expansion: 0.35,
            turbulence: 0.25,
            amr_depth: 6,
            seed: 42,
        }
    }
}

impl XrageConfig {
    /// Convenience: default config at the given grid dims.
    pub fn with_dims(dims: [usize; 3]) -> XrageConfig {
        XrageConfig {
            dims,
            ..Default::default()
        }
    }

    pub fn domain(&self) -> Aabb {
        Aabb::new(Vec3::ZERO, Vec3::splat(self.domain_size))
    }

    /// Analytic temperature field at simulation time `t` (arbitrary units;
    /// timestep i maps to `t = 0.2 + 0.1 i`).
    pub fn temperature(&self, p: Vec3, t: f32) -> f32 {
        let r = (p - self.impact).length();
        // Sedov-Taylor-ish front radius and thickness
        let front = self.expansion * t.max(1e-3).powf(0.4);
        let width = 0.12 * front + 0.02;
        // hot shell at the front + decaying hot core behind it
        let shell = (-((r - front) / width).powi(2)).exp();
        let core = if r < front {
            0.6 * (1.0 - r / front.max(1e-6))
        } else {
            0.0
        };
        // deterministic multi-mode turbulence
        let s = (self.seed % 1024) as f32 * 0.01;
        let turb = 1.0
            + self.turbulence
                * ((7.3 * p.x + s).sin()
                    * (5.1 * p.y - 2.0 * s).cos()
                    * (6.7 * p.z + 0.5 * s).sin());
        // blast decays as it expands (energy conservation proxy)
        let decay = 1.0 / (1.0 + 2.5 * t);
        self.ambient + self.peak * decay * (shell + core) * turb.max(0.0)
    }

    /// Generate the structured temperature grid for `timestep`, through the
    /// AMR → downsample path.
    pub fn generate(&self, timestep: usize) -> Result<UniformGrid> {
        let t = 0.2 + 0.1 * timestep as f32;
        let field = move |p: Vec3| self.temperature(p, t);
        let tree = AmrTree::build(
            self.domain(),
            RefinePolicy::new(self.amr_depth, 0.05 * self.peak),
            &field,
        )?;
        let mut grid = tree.resample(self.dims, "temperature")?;
        // Also attach the analytic field evaluated directly at vertices as
        // "temperature_exact" — tests use it to bound resampling error, and
        // it doubles as a second field for multi-variable pipelines.
        let mut exact = Vec::with_capacity(grid.num_vertices());
        for idx in 0..grid.num_vertices() {
            let (i, j, k) = grid.vertex_coords(idx);
            exact.push(field(grid.vertex_position(i, j, k)));
        }
        grid.set_attribute(
            "temperature_exact",
            eth_data::field::Attribute::Scalar(exact),
        )?;
        Ok(grid)
    }

    /// Generate the *unstructured* intermediate representation for
    /// `timestep` — the paper's AMR → unstructured conversion stage
    /// (Section IV-A), exposed for the Section VII extension.
    pub fn generate_unstructured(
        &self,
        timestep: usize,
    ) -> Result<eth_data::UnstructuredGrid> {
        let t = 0.2 + 0.1 * timestep as f32;
        let field = move |p: Vec3| self.temperature(p, t);
        let tree = AmrTree::build(
            self.domain(),
            RefinePolicy::new(self.amr_depth, 0.05 * self.peak),
            &field,
        )?;
        tree.to_unstructured("temperature")
    }

    /// A sensible isovalue for the blast front at `timestep` — halfway up
    /// the shell peak. The paper's runs use "a varying isovalue".
    pub fn front_isovalue(&self, timestep: usize) -> f32 {
        let t = 0.2 + 0.1 * timestep as f32;
        let decay = 1.0 / (1.0 + 2.5 * t);
        self.ambient + 0.4 * self.peak * decay
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eth_data::stats::{Histogram, Summary};

    #[test]
    fn grid_has_requested_shape() {
        let cfg = XrageConfig::with_dims([24, 20, 16]);
        let g = cfg.generate(0).unwrap();
        assert_eq!(g.dims(), [24, 20, 16]);
        assert!(g.scalar("temperature").is_ok());
        assert!(g.scalar("temperature_exact").is_ok());
    }

    #[test]
    fn field_is_hot_near_impact_and_ambient_far_away() {
        let cfg = XrageConfig::default();
        let t_impact = cfg.temperature(cfg.impact, 0.2);
        let far = Vec3::splat(0.01);
        let t_far = cfg.temperature(far, 0.2);
        assert!(t_impact > cfg.ambient * 3.0, "impact temp {t_impact}");
        assert!(
            (t_far - cfg.ambient).abs() < cfg.ambient,
            "far temp {t_far} should be near ambient"
        );
    }

    #[test]
    fn blast_front_expands_with_time() {
        let cfg = XrageConfig {
            turbulence: 0.0,
            ..Default::default()
        };
        // Find the hottest radius along a ray from the impact at two times.
        let probe = |t: f32| {
            let dir = Vec3::new(1.0, 0.0, 0.0);
            let mut best = (0.0f32, f32::MIN);
            for i in 1..200 {
                let r = i as f32 * 0.005;
                let v = cfg.temperature(cfg.impact + dir * r, t);
                if v > best.1 {
                    best = (r, v);
                }
            }
            best.0
        };
        let r_early = probe(0.2);
        let r_late = probe(1.0);
        assert!(
            r_late > r_early * 1.3,
            "front did not expand: {r_early} -> {r_late}"
        );
    }

    #[test]
    fn peak_temperature_decays() {
        let cfg = XrageConfig {
            turbulence: 0.0,
            ..Default::default()
        };
        let peak_at = |step: usize| {
            let g = cfg.generate(step).unwrap();
            Summary::of(g.scalar("temperature").unwrap()).unwrap().max
        };
        assert!(peak_at(8) < peak_at(0), "blast did not cool");
    }

    #[test]
    fn resampled_field_tracks_exact_field() {
        let cfg = XrageConfig {
            dims: [32, 32, 32],
            amr_depth: 7,
            ..Default::default()
        };
        let g = cfg.generate(2).unwrap();
        let amr = g.scalar("temperature").unwrap();
        let exact = g.scalar("temperature_exact").unwrap();
        // normalized RMS error of the AMR resampling path
        let range = Summary::of(exact).unwrap().range() as f64;
        let mut acc = 0.0f64;
        for (a, e) in amr.iter().zip(exact) {
            acc += ((a - e) as f64 / range).powi(2);
        }
        let rms = (acc / amr.len() as f64).sqrt();
        assert!(rms < 0.08, "AMR resampling error {rms}");
    }

    #[test]
    fn field_has_information_content() {
        // Guard against a trivially flat field ("simulated data does not
        // generally contain enough complexity", Section III).
        let cfg = XrageConfig::default();
        let g = cfg.generate(3).unwrap();
        let vals = g.scalar("temperature").unwrap();
        let s = Summary::of(vals).unwrap();
        let h = Histogram::build(vals, s.min, s.max + 1.0, 32);
        // A localized blast leaves most voxels ambient, so global entropy is
        // modest but must be clearly non-zero, and the hot region must cover
        // a visible fraction of the volume.
        assert!(h.entropy_bits() > 0.15, "entropy {}", h.entropy_bits());
        let hot = vals
            .iter()
            .filter(|&&v| v > cfg.ambient * 1.5)
            .count() as f64
            / vals.len() as f64;
        assert!(hot > 0.01, "hot fraction {hot}");
    }

    #[test]
    fn front_isovalue_brackets_field() {
        let cfg = XrageConfig::default();
        for step in [0, 4] {
            let g = cfg.generate(step).unwrap();
            let s = Summary::of(g.scalar("temperature").unwrap()).unwrap();
            let iso = cfg.front_isovalue(step);
            assert!(
                iso > s.min && iso < s.max,
                "iso {iso} outside [{}, {}] at step {step}",
                s.min,
                s.max
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = XrageConfig::with_dims([16, 16, 16]);
        assert_eq!(cfg.generate(1).unwrap(), cfg.generate(1).unwrap());
        let other = XrageConfig {
            seed: 99,
            ..XrageConfig::with_dims([16, 16, 16])
        };
        assert_ne!(cfg.generate(1).unwrap(), other.generate(1).unwrap());
    }
}
