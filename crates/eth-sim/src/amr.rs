//! Octree AMR substrate.
//!
//! xRAGE "normally uses \[an\] adaptive mesh refinement (AMR) method; the AMR
//! data is typically converted to an unstructured grid data which is then
//! downsampled to a structured grid data before being handed off to the
//! visualization code" (Section IV-A). This module reproduces that path:
//! an analytic field is sampled onto an octree refined where the field
//! varies quickly, and the octree is then resampled onto a uniform grid.
//! The xRAGE generator goes through this route so the structured data the
//! harness visualizes carries realistic AMR resampling artifacts.

use eth_data::error::{DataError, Result};
use eth_data::field::Attribute;
use eth_data::{Aabb, UniformGrid, Vec3};

/// One octree node. Children are indices into the arena; leaves carry the
/// field value sampled at their center.
#[derive(Debug, Clone)]
struct OctNode {
    bounds: Aabb,
    /// `None` for leaves.
    children: Option<[u32; 8]>,
    /// Field value at the cell center (valid for leaves).
    value: f32,
    depth: u8,
}

/// An octree sampling of a scalar field.
#[derive(Debug, Clone)]
pub struct AmrTree {
    nodes: Vec<OctNode>,
}

/// Refinement policy: always refine to `min_depth`, then keep refining
/// while the value spread over a 3×3×3 probe lattice exceeds `threshold`,
/// up to `max_depth`. The forced minimum depth prevents compact interior
/// features (a thin blast shell) from being invisible to the probe at the
/// coarsest levels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefinePolicy {
    pub min_depth: u8,
    pub max_depth: u8,
    pub threshold: f32,
}

impl RefinePolicy {
    /// Policy refining between depths `[3, max_depth]` at the given spread.
    pub fn new(max_depth: u8, threshold: f32) -> RefinePolicy {
        RefinePolicy {
            min_depth: 3.min(max_depth),
            max_depth,
            threshold,
        }
    }
}

impl AmrTree {
    /// Build by sampling `field` over `domain`, refining where it varies.
    pub fn build(
        domain: Aabb,
        policy: RefinePolicy,
        field: &dyn Fn(Vec3) -> f32,
    ) -> Result<AmrTree> {
        if domain.is_empty() {
            return Err(DataError::InvalidArgument("empty AMR domain".into()));
        }
        let mut tree = AmrTree { nodes: Vec::new() };
        tree.build_node(domain, 0, policy, field);
        Ok(tree)
    }

    fn build_node(
        &mut self,
        bounds: Aabb,
        depth: u8,
        policy: RefinePolicy,
        field: &dyn Fn(Vec3) -> f32,
    ) -> u32 {
        let index = self.nodes.len() as u32;
        let center_value = field(bounds.center());
        self.nodes.push(OctNode {
            bounds,
            children: None,
            value: center_value,
            depth,
        });
        if depth >= policy.max_depth {
            return index;
        }
        if depth >= policy.min_depth {
            // Value spread over a 3x3x3 probe lattice decides refinement.
            let mut lo = f32::INFINITY;
            let mut hi = f32::NEG_INFINITY;
            let e = bounds.extent();
            for ix in 0..3 {
                for iy in 0..3 {
                    for iz in 0..3 {
                        let p = bounds.min
                            + Vec3::new(
                                e.x * ix as f32 * 0.5,
                                e.y * iy as f32 * 0.5,
                                e.z * iz as f32 * 0.5,
                            );
                        let v = field(p);
                        lo = lo.min(v);
                        hi = hi.max(v);
                    }
                }
            }
            if hi - lo <= policy.threshold {
                return index;
            }
        }
        // Refine into octants.
        let c = bounds.center();
        let mut children = [0u32; 8];
        for (oct, child) in children.iter_mut().enumerate() {
            let min = Vec3::new(
                if oct & 1 == 0 { bounds.min.x } else { c.x },
                if oct & 2 == 0 { bounds.min.y } else { c.y },
                if oct & 4 == 0 { bounds.min.z } else { c.z },
            );
            let max = Vec3::new(
                if oct & 1 == 0 { c.x } else { bounds.max.x },
                if oct & 2 == 0 { c.y } else { bounds.max.y },
                if oct & 4 == 0 { c.z } else { bounds.max.z },
            );
            *child = self.build_node(Aabb::new(min, max), depth + 1, policy, field);
        }
        self.nodes[index as usize].children = Some(children);
        index
    }

    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    pub fn num_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| n.children.is_none()).count()
    }

    pub fn max_depth(&self) -> u8 {
        self.nodes.iter().map(|n| n.depth).max().unwrap_or(0)
    }

    pub fn bounds(&self) -> Aabb {
        self.nodes[0].bounds
    }

    /// Value at point `p`: the leaf containing `p` (its center sample).
    /// Points outside the domain return `None`.
    pub fn sample(&self, p: Vec3) -> Option<f32> {
        if !self.nodes[0].bounds.contains(p) {
            return None;
        }
        let mut node = 0usize;
        loop {
            let n = &self.nodes[node];
            match n.children {
                None => return Some(n.value),
                Some(children) => {
                    let c = n.bounds.center();
                    let mut oct = 0usize;
                    if p.x >= c.x {
                        oct |= 1;
                    }
                    if p.y >= c.y {
                        oct |= 2;
                    }
                    if p.z >= c.z {
                        oct |= 4;
                    }
                    node = children[oct] as usize;
                }
            }
        }
    }

    /// Convert the octree to an unstructured tetrahedral mesh — the
    /// intermediate representation of the paper's xRAGE pipeline ("the AMR
    /// data is typically converted to an unstructured grid data",
    /// Section IV-A).
    ///
    /// Every leaf cube becomes 6 Freudenthal tetrahedra; vertices are
    /// deduplicated by quantized position, and each vertex's field value
    /// averages the values of the leaves sharing it (a simple conforming
    /// smoother; depth transitions keep T-junction vertices, which is fine
    /// for the downsampling consumer and documented for iso extraction).
    pub fn to_unstructured(&self, field_name: &str) -> Result<eth_data::UnstructuredGrid> {
        use std::collections::HashMap;
        const TETS: [[usize; 4]; 6] = [
            [0, 1, 3, 7],
            [0, 1, 5, 7],
            [0, 2, 3, 7],
            [0, 2, 6, 7],
            [0, 4, 5, 7],
            [0, 4, 6, 7],
        ];
        let root = self.bounds();
        let ext = root.extent();
        let quant = |p: Vec3| -> (u32, u32, u32) {
            let f = |v: f32, lo: f32, e: f32| (((v - lo) / e.max(1e-20)) * 1_000_000.0).round() as u32;
            (
                f(p.x, root.min.x, ext.x),
                f(p.y, root.min.y, ext.y),
                f(p.z, root.min.z, ext.z),
            )
        };
        let mut vertex_of: HashMap<(u32, u32, u32), u32> = HashMap::new();
        let mut points: Vec<Vec3> = Vec::new();
        let mut value_sum: Vec<f32> = Vec::new();
        let mut value_count: Vec<u32> = Vec::new();
        let mut tets: Vec<[u32; 4]> = Vec::new();

        for node in self.nodes.iter().filter(|n| n.children.is_none()) {
            let b = node.bounds;
            let corner = |oct: usize| {
                Vec3::new(
                    if oct & 1 == 0 { b.min.x } else { b.max.x },
                    if oct & 2 == 0 { b.min.y } else { b.max.y },
                    if oct & 4 == 0 { b.min.z } else { b.max.z },
                )
            };
            let mut ids = [0u32; 8];
            for (oct, id) in ids.iter_mut().enumerate() {
                let p = corner(oct);
                let key = quant(p);
                *id = *vertex_of.entry(key).or_insert_with(|| {
                    points.push(p);
                    value_sum.push(0.0);
                    value_count.push(0);
                    (points.len() - 1) as u32
                });
                value_sum[*id as usize] += node.value;
                value_count[*id as usize] += 1;
            }
            for tet in TETS {
                tets.push([ids[tet[0]], ids[tet[1]], ids[tet[2]], ids[tet[3]]]);
            }
        }
        let mut mesh = eth_data::UnstructuredGrid::new(points, tets)?;
        let values: Vec<f32> = value_sum
            .iter()
            .zip(&value_count)
            .map(|(&s, &c)| s / c.max(1) as f32)
            .collect();
        mesh.set_attribute(field_name, Attribute::Scalar(values))?;
        Ok(mesh)
    }

    /// Resample onto a uniform grid (the paper's downsampling stage).
    /// Vertices outside every leaf (cannot happen inside the domain) get 0.
    pub fn resample(&self, dims: [usize; 3], field_name: &str) -> Result<UniformGrid> {
        let mut grid = UniformGrid::over_bounds(dims, self.bounds())?;
        let mut values = Vec::with_capacity(grid.num_vertices());
        for idx in 0..grid.num_vertices() {
            let (i, j, k) = grid.vertex_coords(idx);
            let p = grid.vertex_position(i, j, k);
            // Clamp vertices on the max faces inward so they land in a leaf.
            let eps = self.bounds().extent() * 1e-6;
            let q = Vec3::new(
                p.x.min(self.bounds().max.x - eps.x),
                p.y.min(self.bounds().max.y - eps.y),
                p.z.min(self.bounds().max.z - eps.z),
            );
            values.push(self.sample(q).unwrap_or(0.0));
        }
        grid.set_attribute(field_name, Attribute::Scalar(values))?;
        Ok(grid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> Aabb {
        Aabb::unit()
    }

    #[test]
    fn flat_field_stays_coarse() {
        let tree = AmrTree::build(
            unit(),
            RefinePolicy {
                min_depth: 0,
                max_depth: 6,
                threshold: 0.01,
            },
            &|_| 5.0,
        )
        .unwrap();
        assert_eq!(tree.num_nodes(), 1);
        assert_eq!(tree.num_leaves(), 1);
        assert_eq!(tree.max_depth(), 0);
        assert_eq!(tree.sample(Vec3::splat(0.5)), Some(5.0));
    }

    #[test]
    fn sharp_feature_refines_locally() {
        // Step function at x = 0.31: refinement should concentrate there.
        let field = |p: Vec3| if p.x < 0.31 { 0.0 } else { 1.0 };
        let tree = AmrTree::build(
            unit(),
            RefinePolicy {
                min_depth: 0,
                max_depth: 5,
                threshold: 0.5,
            },
            &field,
        )
        .unwrap();
        assert!(tree.max_depth() == 5);
        // far fewer leaves than a full depth-5 refinement (32^3 = 32768)
        assert!(tree.num_leaves() < 8_000, "leaves {}", tree.num_leaves());
        assert!(tree.num_leaves() > 8);
    }

    #[test]
    fn sample_walks_to_correct_leaf() {
        let field = |p: Vec3| p.x.floor() + if p.x < 0.5 { 0.0 } else { 1.0 };
        let tree = AmrTree::build(
            unit(),
            RefinePolicy {
                min_depth: 0,
                max_depth: 3,
                threshold: 0.1,
            },
            &|p| field(p),
        )
        .unwrap();
        // left half samples ~0, right half ~1
        assert_eq!(tree.sample(Vec3::new(0.1, 0.5, 0.5)), Some(0.0));
        assert_eq!(tree.sample(Vec3::new(0.9, 0.5, 0.5)), Some(1.0));
        assert!(tree.sample(Vec3::splat(2.0)).is_none());
    }

    #[test]
    fn resample_reproduces_smooth_field() {
        let field = |p: Vec3| p.x + 2.0 * p.y;
        let tree = AmrTree::build(
            unit(),
            RefinePolicy {
                min_depth: 0,
                max_depth: 6,
                threshold: 0.05,
            },
            &field,
        )
        .unwrap();
        let grid = tree.resample([9, 9, 9], "f").unwrap();
        let vals = grid.scalar("f").unwrap();
        let mut max_err = 0.0f32;
        for (idx, &v) in vals.iter().enumerate() {
            let (i, j, k) = grid.vertex_coords(idx);
            let p = grid.vertex_position(i, j, k);
            max_err = max_err.max((v - field(p)).abs());
        }
        // leaf-center sampling error bounded by leaf size * gradient
        assert!(max_err < 0.1, "max resample error {max_err}");
    }

    #[test]
    fn resample_covers_max_faces() {
        let tree = AmrTree::build(
            unit(),
            RefinePolicy {
                min_depth: 0,
                max_depth: 2,
                threshold: 0.01,
            },
            &|p| p.z,
        )
        .unwrap();
        let grid = tree.resample([5, 5, 5], "f").unwrap();
        let vals = grid.scalar("f").unwrap();
        // corner vertex at (1,1,1) must have sampled a real leaf (~1.0 area)
        let top = vals[grid.vertex_index(4, 4, 4)];
        assert!(top > 0.5, "top corner value {top}");
    }

    #[test]
    fn unstructured_conversion_covers_the_domain() {
        let field = |p: Vec3| if (p - Vec3::splat(0.5)).length() < 0.3 { 1.0 } else { 0.0 };
        let tree = AmrTree::build(
            unit(),
            RefinePolicy {
                min_depth: 2,
                max_depth: 4,
                threshold: 0.5,
            },
            &field,
        )
        .unwrap();
        let mesh = tree.to_unstructured("f").unwrap();
        assert_eq!(mesh.num_cells(), tree.num_leaves() * 6);
        // tet volumes tile the unit cube exactly
        assert!((mesh.total_volume() - 1.0).abs() < 1e-3, "{}", mesh.total_volume());
        // shared corners deduplicated: far fewer vertices than 8 per leaf
        assert!(mesh.num_points() < tree.num_leaves() * 8);
        assert!(mesh.scalar("f").is_ok());
    }

    #[test]
    fn unstructured_resample_matches_direct_resample() {
        // AMR -> unstructured -> structured must agree with the direct
        // AMR -> structured path (the values differ only by the conforming
        // vertex averaging).
        let field = |p: Vec3| p.x * 2.0 + p.y;
        let tree = AmrTree::build(
            unit(),
            RefinePolicy {
                min_depth: 2,
                max_depth: 3,
                threshold: 0.05,
            },
            &field,
        )
        .unwrap();
        let direct = tree.resample([7, 7, 7], "f").unwrap();
        let mesh = tree.to_unstructured("f").unwrap();
        let via_unstructured = mesh.resample("f", [7, 7, 7], 0.0).unwrap();
        let a = direct.scalar("f").unwrap();
        let b = via_unstructured.scalar("f").unwrap();
        let mut worst = 0.0f32;
        for (x, y) in a.iter().zip(b) {
            worst = worst.max((x - y).abs());
        }
        // both approximate the linear field; allow leaf-size error
        assert!(worst < 0.5, "paths diverge by {worst}");
    }

    #[test]
    fn empty_domain_rejected() {
        assert!(AmrTree::build(
            Aabb::empty(),
            RefinePolicy {
                min_depth: 0,
                max_depth: 2,
                threshold: 0.1
            },
            &|_| 0.0
        )
        .is_err());
    }
}
