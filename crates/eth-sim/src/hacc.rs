//! HACC-like cosmology particle data.
//!
//! The paper's particle workload is a HACC dark-sky run: up to 10⁹ dark
//! matter particles whose interesting science content is the *halo*
//! structure ("the visualization task here is to render the point-cloud
//! data in a manner that makes visual identification of halos easy",
//! Section IV-A). We cannot have HACC outputs, so this module generates
//! structurally equivalent data (substitution documented in DESIGN.md):
//!
//! * a configurable number of halos whose centers are drawn uniformly in
//!   the box and whose members follow an isotropic power-law-falloff radial
//!   profile (an NFW-flavored density cusp),
//! * a uniform background population,
//! * per-particle id, velocity (halo-infall plus dispersion), and a local
//!   density proxy scalar used for coloring,
//! * deterministic output given `(seed, timestep)`; successive timesteps
//!   contract halos slightly and drift the background, so time series are
//!   non-trivial.

use eth_data::error::Result;
use eth_data::field::Attribute;
use eth_data::{Aabb, PointCloud, Vec3};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration for the HACC-like generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HaccConfig {
    /// Total particles to generate.
    pub particles: usize,
    /// Number of halos.
    pub halos: usize,
    /// Fraction of particles in the uniform background (rest go to halos).
    pub background_fraction: f64,
    /// Box edge length (box is `[0, box_size]^3`).
    pub box_size: f32,
    /// Typical halo core radius as a fraction of the box edge.
    pub halo_radius_fraction: f32,
    /// Velocity dispersion scale.
    pub velocity_dispersion: f32,
    /// RNG seed; the same seed reproduces the same universe.
    pub seed: u64,
}

impl Default for HaccConfig {
    fn default() -> Self {
        HaccConfig {
            particles: 100_000,
            halos: 32,
            background_fraction: 0.3,
            box_size: 1.0,
            halo_radius_fraction: 0.02,
            velocity_dispersion: 0.05,
            seed: 42,
        }
    }
}

impl HaccConfig {
    /// Convenience: a config with everything default except particle count.
    pub fn with_particles(particles: usize) -> HaccConfig {
        HaccConfig {
            particles,
            ..Default::default()
        }
    }

    /// The simulation domain.
    pub fn domain(&self) -> Aabb {
        Aabb::new(Vec3::ZERO, Vec3::splat(self.box_size))
    }

    /// Generate the particle state at `timestep`.
    ///
    /// Timestep 0 is the initial condition; later steps contract halo
    /// radii by 2%/step (structure formation proxy) and drift background
    /// particles along their velocities.
    pub fn generate(&self, timestep: usize) -> Result<PointCloud> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = self.particles;
        let n_background = ((n as f64) * self.background_fraction) as usize;
        let n_halo = n - n_background;

        // Halo centers/sizes are drawn first so they are stable across
        // timesteps (same rng stream prefix).
        let halos: Vec<(Vec3, f32, f32)> = (0..self.halos.max(1))
            .map(|_| {
                let c = Vec3::new(
                    rng.random_range(0.0..self.box_size),
                    rng.random_range(0.0..self.box_size),
                    rng.random_range(0.0..self.box_size),
                );
                // log-uniform halo mass -> radius and weight
                let u: f32 = rng.random_range(0.0f32..1.0);
                let radius = self.box_size * self.halo_radius_fraction * (0.5 + 1.5 * u);
                let weight = 0.2 + u * u * 2.0;
                (c, radius, weight)
            })
            .collect();
        let total_weight: f32 = halos.iter().map(|h| h.2).sum();

        let contraction = 0.98f32.powi(timestep as i32);
        let drift = 0.01 * timestep as f32;

        let mut positions = Vec::with_capacity(n);
        let mut velocities = Vec::with_capacity(n);
        let mut density = Vec::with_capacity(n);

        // Halo members.
        let mut remaining = n_halo;
        for (hi, &(center, radius, weight)) in halos.iter().enumerate() {
            let share = if hi + 1 == halos.len() {
                remaining
            } else {
                (((n_halo as f32) * weight / total_weight).round() as usize).min(remaining)
            };
            remaining -= share;
            let r_eff = radius * contraction;
            for _ in 0..share {
                // isotropic direction, power-law radius (rho ~ r^-2 cusp)
                let dir = random_unit(&mut rng);
                let u: f32 = rng.random_range(1e-4f32..1.0);
                // inverse-CDF of p(r) ~ r^0.5 on [0, r_eff] concentrates mass
                // toward the center like an NFW-ish profile
                let r = r_eff * u * u;
                let p = clamp_to_box(center + dir * r, self.box_size);
                // infall velocity toward the center + dispersion
                let infall = (center - p).normalized() * self.velocity_dispersion * 2.0;
                let v = infall + random_normal3(&mut rng) * self.velocity_dispersion;
                positions.push(p);
                velocities.push(v);
                // density proxy: higher near halo centers
                density.push(weight / (1.0 + (r / (0.1 * r_eff + 1e-6)).powi(2)));
            }
        }
        // Background.
        for _ in 0..n_background {
            let v = random_normal3(&mut rng) * self.velocity_dispersion;
            let p0 = Vec3::new(
                rng.random_range(0.0..self.box_size),
                rng.random_range(0.0..self.box_size),
                rng.random_range(0.0..self.box_size),
            );
            let p = clamp_to_box(p0 + v * drift, self.box_size);
            positions.push(p);
            velocities.push(v);
            density.push(0.05);
        }

        let count = positions.len();
        let mut cloud = PointCloud::from_positions(positions);
        cloud.set_attribute("id", Attribute::Id((0..count as u64).collect()))?;
        cloud.set_attribute("velocity", Attribute::Vector(velocities))?;
        cloud.set_attribute("density", Attribute::Scalar(density))?;
        Ok(cloud)
    }
}

fn clamp_to_box(p: Vec3, edge: f32) -> Vec3 {
    Vec3::new(
        p.x.clamp(0.0, edge),
        p.y.clamp(0.0, edge),
        p.z.clamp(0.0, edge),
    )
}

/// Uniform random unit vector (Marsaglia).
fn random_unit(rng: &mut StdRng) -> Vec3 {
    loop {
        let x: f32 = rng.random_range(-1.0f32..1.0);
        let y: f32 = rng.random_range(-1.0f32..1.0);
        let s = x * x + y * y;
        if s >= 1.0 || s == 0.0 {
            continue;
        }
        let f = 2.0 * (1.0 - s).sqrt();
        return Vec3::new(x * f, y * f, 1.0 - 2.0 * s);
    }
}

/// 3-vector of standard normals (Box–Muller; rand_distr is out of scope).
fn random_normal3(rng: &mut StdRng) -> Vec3 {
    let mut pair = || {
        let u1: f32 = rng.random_range(1e-7f32..1.0);
        let u2: f32 = rng.random_range(0.0f32..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let th = 2.0 * std::f32::consts::PI * u2;
        (r * th.cos(), r * th.sin())
    };
    let (a, b) = pair();
    let (c, _) = pair();
    Vec3::new(a, b, c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eth_data::stats::{Histogram, Summary};

    #[test]
    fn generates_requested_count() {
        let cfg = HaccConfig::with_particles(10_000);
        let cloud = cfg.generate(0).unwrap();
        assert_eq!(cloud.len(), 10_000);
        assert_eq!(cloud.attribute("id").unwrap().len(), 10_000);
        assert_eq!(cloud.attribute("velocity").unwrap().len(), 10_000);
        assert_eq!(cloud.scalar("density").unwrap().len(), 10_000);
    }

    #[test]
    fn particles_stay_in_box() {
        let cfg = HaccConfig::with_particles(5_000);
        for step in [0, 3] {
            let cloud = cfg.generate(step).unwrap();
            let domain = cfg.domain();
            for &p in cloud.positions() {
                assert!(domain.contains(p), "particle {p:?} escaped at step {step}");
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = HaccConfig::with_particles(2_000);
        let a = cfg.generate(1).unwrap();
        let b = cfg.generate(1).unwrap();
        assert_eq!(a, b);
        let other = HaccConfig {
            seed: 7,
            ..HaccConfig::with_particles(2_000)
        };
        assert_ne!(a, other.generate(1).unwrap());
    }

    #[test]
    fn timesteps_differ() {
        let cfg = HaccConfig::with_particles(2_000);
        let t0 = cfg.generate(0).unwrap();
        let t5 = cfg.generate(5).unwrap();
        assert_ne!(t0, t5);
    }

    #[test]
    fn halos_create_clustering() {
        // Spatial histogram entropy of clustered data must be well below a
        // uniform distribution's (the "complexity" requirement of Sec. III).
        let clustered = HaccConfig {
            background_fraction: 0.1,
            ..HaccConfig::with_particles(20_000)
        }
        .generate(0)
        .unwrap();
        let uniform = HaccConfig {
            background_fraction: 1.0,
            ..HaccConfig::with_particles(20_000)
        }
        .generate(0)
        .unwrap();
        let cell_counts = |cloud: &PointCloud| {
            let g = 8usize;
            let mut counts = vec![0f32; g * g * g];
            for &p in cloud.positions() {
                let f = |v: f32| ((v * g as f32) as usize).min(g - 1);
                counts[(f(p.z) * g + f(p.y)) * g + f(p.x)] += 1.0;
            }
            counts
        };
        let hc = Histogram::build(&cell_counts(&clustered), 0.0, 600.0, 64);
        let hu = Histogram::build(&cell_counts(&uniform), 0.0, 600.0, 64);
        // clustered: most cells near-empty, a few huge -> lower entropy of
        // *occupancy histogram* is not monotone; instead compare std devs.
        let sc = Summary::of(&cell_counts(&clustered)).unwrap();
        let su = Summary::of(&cell_counts(&uniform)).unwrap();
        assert!(
            sc.std_dev > su.std_dev * 3.0,
            "clustered std {} vs uniform {}",
            sc.std_dev,
            su.std_dev
        );
        let _ = (hc, hu);
    }

    #[test]
    fn density_attribute_peaks_in_halos() {
        let cfg = HaccConfig::with_particles(5_000);
        let cloud = cfg.generate(0).unwrap();
        let s = Summary::of(cloud.scalar("density").unwrap()).unwrap();
        assert!((s.max as f64) > s.mean * 2.0, "density field has no contrast");
        assert!(s.min >= 0.0);
    }

    #[test]
    fn halo_contraction_over_time() {
        // Mean density proxy rises as halos contract (same particles,
        // tighter cores -> identical here since density depends on r/r_eff;
        // instead verify halo-member spread shrinks).
        let cfg = HaccConfig {
            background_fraction: 0.0,
            halos: 1,
            ..HaccConfig::with_particles(4_000)
        };
        let spread = |cloud: &PointCloud| {
            let c = cloud
                .positions()
                .iter()
                .fold(Vec3::ZERO, |a, &p| a + p)
                / cloud.len() as f32;
            cloud
                .positions()
                .iter()
                .map(|&p| (p - c).length())
                .sum::<f32>()
                / cloud.len() as f32
        };
        let s0 = spread(&cfg.generate(0).unwrap());
        let s10 = spread(&cfg.generate(10).unwrap());
        assert!(s10 < s0, "halo did not contract: {s0} -> {s10}");
    }

    #[test]
    fn zero_background_and_full_background_edge_cases() {
        let all_halo = HaccConfig {
            background_fraction: 0.0,
            ..HaccConfig::with_particles(1_000)
        };
        assert_eq!(all_halo.generate(0).unwrap().len(), 1_000);
        let all_bg = HaccConfig {
            background_fraction: 1.0,
            ..HaccConfig::with_particles(1_000)
        };
        assert_eq!(all_bg.generate(0).unwrap().len(), 1_000);
    }
}
