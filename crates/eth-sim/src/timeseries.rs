//! On-disk layout of the "preliminary run".
//!
//! "We make a preliminary run of the simulation itself on the science case,
//! and write data out as if for simple post-processing analysis … Our
//! simulation proxy then reads the simulation data into memory and presents
//! it to the simulation/analysis interface as if by the simulation itself."
//! (Section I)
//!
//! Layout:
//!
//! ```text
//! <root>/
//!   manifest.json                   # name, ranks, steps, format
//!   step_0000/rank_0000.ebd
//!   step_0000/rank_0001.ebd
//!   ...
//! ```
//!
//! Every rank's block is a self-contained dataset, so "each parallel
//! process of the proxy is able to load the data that it will pass to the
//! in-situ interface" (Section III-B, Figure 7).

use eth_data::crc::crc32;
use eth_data::error::{DataError, Result};
use eth_data::io::binary;
use eth_data::{Bytes, DataObject};
use serde::{Deserialize, Serialize};
use std::fs;
use std::path::{Path, PathBuf};

/// Manifest describing a recorded time series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    pub name: String,
    pub num_ranks: usize,
    pub num_steps: usize,
    /// Data kind ("points" or "grid"), informational.
    pub kind: String,
    /// CRC-32 of each block file's bytes, step-major
    /// (`index = step * num_ranks + rank`). Empty for series recorded
    /// before checksumming existed — those read back unverified.
    #[serde(default)]
    pub block_crcs: Vec<u32>,
}

impl Manifest {
    /// The recorded checksum for a block, if this series carries them.
    pub fn block_crc(&self, step: usize, rank: usize) -> Option<u32> {
        self.block_crcs
            .get(step * self.num_ranks + rank)
            .copied()
    }
}

fn step_dir(root: &Path, step: usize) -> PathBuf {
    root.join(format!("step_{step:04}"))
}

fn rank_file(root: &Path, step: usize, rank: usize) -> PathBuf {
    step_dir(root, step).join(format!("rank_{rank:04}.ebd"))
}

fn manifest_path(root: &Path) -> PathBuf {
    root.join("manifest.json")
}

/// Writer for a preliminary run.
pub struct TimeSeriesWriter {
    root: PathBuf,
    manifest: Manifest,
    /// (step, rank) pairs written so far — completeness is checked at close.
    written: Vec<(usize, usize)>,
    /// Checksum per block slot, step-major; recorded as blocks are written.
    crcs: Vec<u32>,
}

impl TimeSeriesWriter {
    /// Create (or truncate) a series directory.
    pub fn create(root: &Path, name: &str, num_ranks: usize, num_steps: usize) -> Result<Self> {
        if num_ranks == 0 || num_steps == 0 {
            return Err(DataError::InvalidArgument(
                "time series needs at least one rank and one step".into(),
            ));
        }
        fs::create_dir_all(root)?;
        Ok(TimeSeriesWriter {
            root: root.to_path_buf(),
            manifest: Manifest {
                name: name.to_string(),
                num_ranks,
                num_steps,
                kind: String::new(),
                block_crcs: Vec::new(),
            },
            written: Vec::new(),
            crcs: vec![0; num_steps * num_ranks],
        })
    }

    /// Write one rank's block for one step.
    pub fn write_block(&mut self, step: usize, rank: usize, data: &DataObject) -> Result<()> {
        if step >= self.manifest.num_steps || rank >= self.manifest.num_ranks {
            return Err(DataError::InvalidArgument(format!(
                "block ({step}, {rank}) outside series shape ({} steps, {} ranks)",
                self.manifest.num_steps, self.manifest.num_ranks
            )));
        }
        fs::create_dir_all(step_dir(&self.root, step))?;
        let bytes = binary::encode(data);
        fs::write(rank_file(&self.root, step, rank), &bytes[..])?;
        self.crcs[step * self.manifest.num_ranks + rank] = crc32(&bytes);
        if self.manifest.kind.is_empty() {
            self.manifest.kind = data.kind().to_string();
        }
        self.written.push((step, rank));
        Ok(())
    }

    /// Finish: verify completeness and write the manifest.
    ///
    /// The manifest is staged to a temp file and renamed into place, so a
    /// crash mid-close leaves either no manifest (series unreadable,
    /// re-record) or a complete one — never a torn manifest.
    pub fn close(mut self) -> Result<Manifest> {
        let expect = self.manifest.num_steps * self.manifest.num_ranks;
        let mut seen = vec![false; expect];
        for (s, r) in &self.written {
            seen[s * self.manifest.num_ranks + r] = true;
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            let step = missing / self.manifest.num_ranks;
            let rank = missing % self.manifest.num_ranks;
            return Err(DataError::InvalidArgument(format!(
                "series incomplete: block (step {step}, rank {rank}) never written"
            )));
        }
        self.manifest.block_crcs = self.crcs;
        let json = serde_json::to_string_pretty(&self.manifest)
            .map_err(|e| DataError::Format(format!("manifest encode: {e}")))?;
        let tmp = self.root.join("manifest.json.tmp");
        fs::write(&tmp, json)?;
        fs::rename(&tmp, manifest_path(&self.root))?;
        Ok(self.manifest)
    }
}

/// Reader over a recorded series.
pub struct TimeSeriesReader {
    root: PathBuf,
    manifest: Manifest,
}

impl TimeSeriesReader {
    /// Open a series directory (reads the manifest).
    pub fn open(root: &Path) -> Result<Self> {
        let text = fs::read_to_string(manifest_path(root))?;
        let manifest: Manifest = serde_json::from_str(&text)
            .map_err(|e| DataError::Format(format!("manifest decode: {e}")))?;
        Ok(TimeSeriesReader {
            root: root.to_path_buf(),
            manifest,
        })
    }

    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Load one rank's block for one step.
    ///
    /// When the manifest carries checksums, the file's bytes are verified
    /// against the recorded CRC **before** decoding; a mismatch is
    /// [`DataError::Corrupt`] naming the block. Legacy series without
    /// checksums still get the in-band trailer check inside
    /// [`binary::decode`].
    pub fn read_block(&self, step: usize, rank: usize) -> Result<DataObject> {
        if step >= self.manifest.num_steps || rank >= self.manifest.num_ranks {
            return Err(DataError::InvalidArgument(format!(
                "block ({step}, {rank}) outside series shape"
            )));
        }
        let bytes = fs::read(rank_file(&self.root, step, rank))?;
        if let Some(expect) = self.manifest.block_crc(step, rank) {
            let got = crc32(&bytes);
            if got != expect {
                return Err(DataError::Corrupt(format!(
                    "block (step {step}, rank {rank}) checksum mismatch: \
                     manifest {expect:#010x}, file {got:#010x}"
                )));
            }
        }
        binary::decode(Bytes::from(bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eth_data::{PointCloud, Vec3};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("eth-sim-ts-tests").join(name);
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn obj(tag: f32) -> DataObject {
        DataObject::Points(PointCloud::from_positions(vec![Vec3::splat(tag)]))
    }

    #[test]
    fn roundtrip_series() {
        let root = tmp("roundtrip");
        let mut w = TimeSeriesWriter::create(&root, "demo", 2, 3).unwrap();
        for step in 0..3 {
            for rank in 0..2 {
                w.write_block(step, rank, &obj((step * 10 + rank) as f32))
                    .unwrap();
            }
        }
        let manifest = w.close().unwrap();
        assert_eq!(manifest.kind, "points");

        let r = TimeSeriesReader::open(&root).unwrap();
        assert_eq!(r.manifest().num_ranks, 2);
        assert_eq!(r.manifest().num_steps, 3);
        let block = r.read_block(2, 1).unwrap();
        assert_eq!(
            block.as_points().unwrap().positions()[0],
            Vec3::splat(21.0)
        );
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn incomplete_series_rejected_at_close() {
        let root = tmp("incomplete");
        let mut w = TimeSeriesWriter::create(&root, "demo", 2, 2).unwrap();
        w.write_block(0, 0, &obj(0.0)).unwrap();
        w.write_block(0, 1, &obj(1.0)).unwrap();
        w.write_block(1, 0, &obj(2.0)).unwrap();
        // (1, 1) missing
        let err = w.close().unwrap_err();
        assert!(err.to_string().contains("step 1"));
        assert!(err.to_string().contains("rank 1"));
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn out_of_shape_blocks_rejected() {
        let root = tmp("shape");
        let mut w = TimeSeriesWriter::create(&root, "demo", 2, 2).unwrap();
        assert!(w.write_block(2, 0, &obj(0.0)).is_err());
        assert!(w.write_block(0, 5, &obj(0.0)).is_err());
        let r_err = TimeSeriesReader::open(&root);
        assert!(r_err.is_err(), "no manifest yet");
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn zero_shape_rejected() {
        let root = tmp("zero");
        assert!(TimeSeriesWriter::create(&root, "demo", 0, 2).is_err());
        assert!(TimeSeriesWriter::create(&root, "demo", 2, 0).is_err());
    }

    #[test]
    fn flipped_block_byte_is_caught_by_the_manifest_crc() {
        let root = tmp("corrupt");
        let mut w = TimeSeriesWriter::create(&root, "demo", 1, 2).unwrap();
        w.write_block(0, 0, &obj(1.0)).unwrap();
        w.write_block(1, 0, &obj(2.0)).unwrap();
        let manifest = w.close().unwrap();
        assert_eq!(manifest.block_crcs.len(), 2);
        assert!(!root.join("manifest.json.tmp").exists());

        // Flip one byte in the middle of step 1's block on disk.
        let victim = root.join("step_0001").join("rank_0000.ebd");
        let mut bytes = fs::read(&victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&victim, &bytes).unwrap();

        let r = TimeSeriesReader::open(&root).unwrap();
        assert!(r.read_block(0, 0).is_ok(), "untouched block still reads");
        let err = r.read_block(1, 0).unwrap_err();
        assert!(
            matches!(err, DataError::Corrupt(_)),
            "expected Corrupt, got: {err}"
        );
        assert!(err.to_string().contains("step 1"));
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn legacy_manifest_without_checksums_still_reads() {
        let root = tmp("legacy");
        let mut w = TimeSeriesWriter::create(&root, "demo", 1, 1).unwrap();
        w.write_block(0, 0, &obj(3.0)).unwrap();
        w.close().unwrap();

        // Rewrite the manifest the way the pre-checksum format did.
        let manifest_file = root.join("manifest.json");
        let text = fs::read_to_string(&manifest_file).unwrap();
        assert!(text.contains("block_crcs"));
        let legacy = r#"{"name":"demo","num_ranks":1,"num_steps":1,"kind":"points"}"#;
        fs::write(&manifest_file, legacy).unwrap();

        let r = TimeSeriesReader::open(&root).unwrap();
        assert!(r.manifest().block_crcs.is_empty());
        assert_eq!(r.manifest().block_crc(0, 0), None);
        let block = r.read_block(0, 0).unwrap();
        assert_eq!(
            block.as_points().unwrap().positions()[0],
            Vec3::splat(3.0)
        );
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn reader_bounds_checked() {
        let root = tmp("bounds");
        let mut w = TimeSeriesWriter::create(&root, "demo", 1, 1).unwrap();
        w.write_block(0, 0, &obj(0.0)).unwrap();
        w.close().unwrap();
        let r = TimeSeriesReader::open(&root).unwrap();
        assert!(r.read_block(1, 0).is_err());
        assert!(r.read_block(0, 1).is_err());
        fs::remove_dir_all(&root).ok();
    }
}
