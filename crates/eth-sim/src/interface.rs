//! The simulation ↔ analysis in-situ interface.
//!
//! "The developer codes to an interface that communicates with a customized
//! analysis component … This two-part architecture — a large simulation
//! computation communicating via an interface to a potentially
//! comparably-sized analysis component — is at the heart of in-situ
//! processing." (Section I)
//!
//! [`SimulationSource`] is the producer side (a real simulation, or ETH's
//! proxy replaying recorded data); [`InSituSink`] is the consumer side (the
//! visualization proxy). The harness wires a source to a sink through one
//! of the coupling strategies.

use eth_data::error::Result;
use eth_data::DataObject;

/// Producer side: yields one dataset per timestep for one rank.
pub trait SimulationSource {
    /// Number of timesteps this source will produce.
    fn num_timesteps(&self) -> usize;

    /// Rank of this source within its parallel job.
    fn rank(&self) -> usize;

    /// Total ranks in the job.
    fn num_ranks(&self) -> usize;

    /// Produce (or load) the data for `step`. Steps are visited in order by
    /// the proxy driver, but sources must tolerate repeated calls (the
    /// intercore coupling re-runs a step if the viz phase is re-scheduled).
    fn timestep(&mut self, step: usize) -> Result<DataObject>;
}

/// Consumer side: receives each timestep's data.
pub trait InSituSink {
    /// Consume one timestep of data. Called once per step, in order.
    fn consume(&mut self, step: usize, data: &DataObject) -> Result<()>;

    /// Called after the last timestep; flush artifacts.
    fn finish(&mut self) -> Result<()> {
        Ok(())
    }
}

/// A sink that only counts what it sees — useful for tests and for
/// measuring pure simulation/transport cost without rendering.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct CountingSink {
    pub steps: usize,
    pub elements: u64,
    pub bytes: u64,
    pub finished: bool,
}

impl InSituSink for CountingSink {
    fn consume(&mut self, _step: usize, data: &DataObject) -> Result<()> {
        self.steps += 1;
        self.elements += data.num_elements() as u64;
        self.bytes += data.payload_bytes() as u64;
        Ok(())
    }

    fn finish(&mut self) -> Result<()> {
        self.finished = true;
        Ok(())
    }
}

/// A source wrapping a fixed in-memory sequence (tests, tiny experiments).
pub struct VecSource {
    rank: usize,
    num_ranks: usize,
    steps: Vec<DataObject>,
}

impl VecSource {
    pub fn new(rank: usize, num_ranks: usize, steps: Vec<DataObject>) -> VecSource {
        VecSource {
            rank,
            num_ranks,
            steps,
        }
    }
}

impl SimulationSource for VecSource {
    fn num_timesteps(&self) -> usize {
        self.steps.len()
    }

    fn rank(&self) -> usize {
        self.rank
    }

    fn num_ranks(&self) -> usize {
        self.num_ranks
    }

    fn timestep(&mut self, step: usize) -> Result<DataObject> {
        Ok(self.steps[step].clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eth_data::{PointCloud, Vec3};

    fn obj(n: usize) -> DataObject {
        DataObject::Points(PointCloud::from_positions(vec![Vec3::ZERO; n]))
    }

    #[test]
    fn counting_sink_accumulates() {
        let mut sink = CountingSink::default();
        sink.consume(0, &obj(3)).unwrap();
        sink.consume(1, &obj(5)).unwrap();
        sink.finish().unwrap();
        assert_eq!(sink.steps, 2);
        assert_eq!(sink.elements, 8);
        assert_eq!(sink.bytes, 8 * 12);
        assert!(sink.finished);
    }

    #[test]
    fn vec_source_replays_in_order() {
        let mut src = VecSource::new(1, 4, vec![obj(1), obj(2)]);
        assert_eq!(src.num_timesteps(), 2);
        assert_eq!(src.rank(), 1);
        assert_eq!(src.num_ranks(), 4);
        assert_eq!(src.timestep(0).unwrap().num_elements(), 1);
        assert_eq!(src.timestep(1).unwrap().num_elements(), 2);
        // repeatable
        assert_eq!(src.timestep(0).unwrap().num_elements(), 1);
    }
}
