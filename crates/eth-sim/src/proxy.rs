//! The ETH simulation proxy.
//!
//! "The ETH simulation proxy reads data from the disk and then operates on
//! the data in parallel" (Section III-A). A proxy instance represents one
//! rank of the simulation job; it obtains its per-rank blocks either from a
//! recorded [`TimeSeriesReader`] (the
//! production path, Figure 7) or from an in-memory generator (the quick
//! path used by experiments that synthesize data on the fly), and drives an
//! [`InSituSink`] through every timestep.

use crate::interface::{InSituSink, SimulationSource};
use crate::timeseries::TimeSeriesReader;
use eth_data::error::{DataError, Result};
use eth_data::DataObject;
use std::path::Path;

/// A rank of the simulation proxy.
pub struct SimulationProxy {
    source: Box<dyn SimulationSource + Send>,
    /// Next step to produce: advances past each completed (or degraded)
    /// step so recovery can resume a rank's traversal from its last
    /// checkpoint instead of replaying from step zero.
    cursor: usize,
}

/// Source backed by a recorded time series on disk.
struct DiskSource {
    reader: TimeSeriesReader,
    rank: usize,
}

impl SimulationSource for DiskSource {
    fn num_timesteps(&self) -> usize {
        self.reader.manifest().num_steps
    }

    fn rank(&self) -> usize {
        self.rank
    }

    fn num_ranks(&self) -> usize {
        self.reader.manifest().num_ranks
    }

    fn timestep(&mut self, step: usize) -> Result<DataObject> {
        self.reader.read_block(step, self.rank)
    }
}

/// Source backed by a generator closure (rank-partitioned synthesis).
struct GeneratorSource<F> {
    generate: F,
    rank: usize,
    num_ranks: usize,
    num_steps: usize,
}

impl<F> SimulationSource for GeneratorSource<F>
where
    F: FnMut(usize, usize) -> Result<DataObject>,
{
    fn num_timesteps(&self) -> usize {
        self.num_steps
    }

    fn rank(&self) -> usize {
        self.rank
    }

    fn num_ranks(&self) -> usize {
        self.num_ranks
    }

    fn timestep(&mut self, step: usize) -> Result<DataObject> {
        (self.generate)(step, self.rank)
    }
}

/// Source wrapper that memoizes blocks through a byte-budgeted
/// [`eth_data::staging::BlockStore`]: the first read of a step goes to
/// the inner source, every later read (recovery replays, adoption
/// tails, repeated `step` calls) is served from the staging store —
/// resident when it fits the budget, streamed back from a compressed
/// spill chunk when it does not. Residency never exceeds the budget.
struct StagedSource {
    inner: Box<dyn SimulationSource + Send>,
    store: eth_data::staging::BlockStore,
}

impl SimulationSource for StagedSource {
    fn num_timesteps(&self) -> usize {
        self.inner.num_timesteps()
    }

    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn num_ranks(&self) -> usize {
        self.inner.num_ranks()
    }

    fn timestep(&mut self, step: usize) -> Result<DataObject> {
        if self.store.contains(step) {
            return self.store.get(step);
        }
        let block = self.inner.timestep(step)?;
        self.store.insert(step, block.clone())?;
        Ok(block)
    }
}

impl SimulationProxy {
    /// Proxy replaying a recorded series from `root` as `rank`.
    pub fn from_disk(root: &Path, rank: usize) -> Result<SimulationProxy> {
        let reader = TimeSeriesReader::open(root)?;
        if rank >= reader.manifest().num_ranks {
            return Err(DataError::InvalidArgument(format!(
                "rank {rank} outside series with {} ranks",
                reader.manifest().num_ranks
            )));
        }
        Ok(SimulationProxy {
            source: Box::new(DiskSource { reader, rank }),
            cursor: 0,
        })
    }

    /// Proxy generating data on the fly. `generate(step, rank)` must return
    /// the block this rank would have loaded.
    pub fn from_generator<F>(
        rank: usize,
        num_ranks: usize,
        num_steps: usize,
        generate: F,
    ) -> SimulationProxy
    where
        F: FnMut(usize, usize) -> Result<DataObject> + Send + 'static,
    {
        SimulationProxy {
            source: Box::new(GeneratorSource {
                generate,
                rank,
                num_ranks,
                num_steps,
            }),
            cursor: 0,
        }
    }

    /// Proxy over any custom source.
    pub fn from_source(source: Box<dyn SimulationSource + Send>) -> SimulationProxy {
        SimulationProxy { source, cursor: 0 }
    }

    /// Interpose a byte-budgeted staging store between this proxy and its
    /// source: blocks are memoized on first read and re-reads are served
    /// from the store, with least-recently-used blocks spilled to
    /// compressed on-disk chunks (in `spill_dir`, or a private temp
    /// directory) whenever residency would exceed `memory_budget_bytes`.
    /// `None` keeps everything resident — a pure memoization layer.
    pub fn with_staging_budget(
        self,
        memory_budget_bytes: Option<u64>,
        spill_dir: Option<std::path::PathBuf>,
    ) -> SimulationProxy {
        SimulationProxy {
            source: Box::new(StagedSource {
                inner: self.source,
                store: eth_data::staging::BlockStore::new(memory_budget_bytes, spill_dir),
            }),
            cursor: self.cursor,
        }
    }

    pub fn rank(&self) -> usize {
        self.source.rank()
    }

    pub fn num_ranks(&self) -> usize {
        self.source.num_ranks()
    }

    pub fn num_timesteps(&self) -> usize {
        self.source.num_timesteps()
    }

    /// Produce the data for one step (the "simulation compute" phase).
    pub fn step(&mut self, step: usize) -> Result<DataObject> {
        let data = self.source.timestep(step)?;
        self.cursor = self.cursor.max(step + 1);
        Ok(data)
    }

    /// The next step this proxy would produce: the number of steps it has
    /// completed so far. A recovery checkpoint records this so an adopting
    /// rank can [`SimulationProxy::run_from`] the dead rank's position.
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// The migration cursor handoff: jump the cursor forward to `step`
    /// without producing data, so a proxy standing in for a migrated-in
    /// partition resumes exactly where the transferred checkpoint says the
    /// source left off. Forward-only — applying a stale checkpoint never
    /// rewinds progress already made.
    pub fn adopt_cursor(&mut self, step: usize) {
        self.cursor = self.cursor.max(step);
    }

    /// Drive a sink through every timestep (tight coupling: source and sink
    /// in the same call stack, exactly the paper's unified mode).
    ///
    /// A block that fails to load because its file is corrupt or missing is
    /// a *degraded* step — it is skipped and counted in
    /// [`ProxyRunStats::skipped_steps`] so one bad block on disk costs a
    /// frame, not the whole rank. Every other failure (bad shape, decode
    /// errors from a generator, sink errors) still aborts the run.
    pub fn run(&mut self, sink: &mut dyn InSituSink) -> Result<ProxyRunStats> {
        self.run_from(0, sink)
    }

    /// [`SimulationProxy::run`], starting at `start_step` instead of zero.
    /// This is the adoption path: a rank that inherits a dead peer's
    /// partition replays only the steps the peer had not completed.
    pub fn run_from(
        &mut self,
        start_step: usize,
        sink: &mut dyn InSituSink,
    ) -> Result<ProxyRunStats> {
        let mut stats = ProxyRunStats::default();
        for step in start_step..self.source.num_timesteps() {
            self.cursor = self.cursor.max(step);
            let sim_span = eth_obs::span(eth_obs::Phase::Sim);
            let data = match self.source.timestep(step) {
                Ok(data) => data,
                Err(DataError::Corrupt(_)) => {
                    stats.skipped_steps += 1;
                    self.cursor = self.cursor.max(step + 1);
                    eth_obs::count("proxy_skipped_steps", 1.0);
                    continue;
                }
                Err(DataError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                    stats.skipped_steps += 1;
                    self.cursor = self.cursor.max(step + 1);
                    eth_obs::count("proxy_skipped_steps", 1.0);
                    continue;
                }
                Err(other) => return Err(other),
            };
            drop(sim_span);
            stats.steps += 1;
            stats.elements += data.num_elements() as u64;
            stats.bytes_presented += data.payload_bytes() as u64;
            sink.consume(step, &data)?;
            self.cursor = self.cursor.max(step + 1);
        }
        sink.finish()?;
        Ok(stats)
    }
}

/// Accounting from one proxy run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ProxyRunStats {
    pub steps: usize,
    pub elements: u64,
    /// Bytes presented across the in-situ interface.
    pub bytes_presented: u64,
    /// Steps dropped because their block was corrupt or missing on disk.
    pub skipped_steps: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hacc::HaccConfig;
    use crate::interface::CountingSink;
    use crate::timeseries::TimeSeriesWriter;
    use eth_data::partition::partition_points;
    use std::fs;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("eth-sim-proxy-tests").join(name);
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn generator_proxy_drives_sink() {
        let cfg = HaccConfig::with_particles(500);
        let mut proxy = SimulationProxy::from_generator(0, 1, 3, move |step, _rank| {
            Ok(DataObject::Points(cfg.generate(step)?))
        });
        let mut sink = CountingSink::default();
        let stats = proxy.run(&mut sink).unwrap();
        assert_eq!(stats.steps, 3);
        assert_eq!(sink.steps, 3);
        assert_eq!(sink.elements, 1500);
        assert!(sink.finished);
        assert_eq!(stats.elements, sink.elements);
    }

    #[test]
    fn disk_proxy_replays_preliminary_run() {
        // Preliminary run: generate, partition over 2 ranks, write.
        let root = tmp("replay");
        let cfg = HaccConfig::with_particles(800);
        let ranks = 2;
        let steps = 2;
        let mut w = TimeSeriesWriter::create(&root, "hacc", ranks, steps).unwrap();
        for step in 0..steps {
            let cloud = cfg.generate(step).unwrap();
            let parts = partition_points(&cloud, ranks).unwrap();
            for (rank, part) in parts.into_iter().enumerate() {
                w.write_block(step, rank, &DataObject::Points(part)).unwrap();
            }
        }
        w.close().unwrap();

        // Replay both ranks; together they must see every particle.
        let mut total = 0u64;
        for rank in 0..ranks {
            let mut proxy = SimulationProxy::from_disk(&root, rank).unwrap();
            assert_eq!(proxy.num_ranks(), 2);
            assert_eq!(proxy.num_timesteps(), 2);
            let mut sink = CountingSink::default();
            proxy.run(&mut sink).unwrap();
            total += sink.elements;
        }
        assert_eq!(total, 800 * steps as u64);
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn disk_proxy_validates_rank() {
        let root = tmp("badrank");
        let mut w = TimeSeriesWriter::create(&root, "x", 1, 1).unwrap();
        w.write_block(
            0,
            0,
            &DataObject::Points(eth_data::PointCloud::new()),
        )
        .unwrap();
        w.close().unwrap();
        assert!(SimulationProxy::from_disk(&root, 5).is_err());
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn corrupt_and_missing_blocks_degrade_instead_of_erroring() {
        let root = tmp("degraded");
        let cfg = HaccConfig::with_particles(300);
        let steps = 4;
        let mut w = TimeSeriesWriter::create(&root, "hacc", 1, steps).unwrap();
        for step in 0..steps {
            let cloud = cfg.generate(step).unwrap();
            w.write_block(step, 0, &DataObject::Points(cloud)).unwrap();
        }
        w.close().unwrap();

        // Corrupt step 1's block and delete step 2's entirely.
        let victim = root.join("step_0001").join("rank_0000.ebd");
        let mut bytes = fs::read(&victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&victim, &bytes).unwrap();
        fs::remove_file(root.join("step_0002").join("rank_0000.ebd")).unwrap();

        let mut proxy = SimulationProxy::from_disk(&root, 0).unwrap();
        let mut sink = CountingSink::default();
        let stats = proxy.run(&mut sink).unwrap();
        assert_eq!(stats.steps, 2, "steps 0 and 3 survive");
        assert_eq!(stats.skipped_steps, 2, "steps 1 and 2 degraded");
        assert_eq!(sink.steps, 2);
        assert!(sink.finished);
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn generator_errors_still_abort_the_run() {
        let mut proxy = SimulationProxy::from_generator(0, 1, 3, |step, _rank| {
            if step == 1 {
                Err(DataError::InvalidArgument("synthesis bug".into()))
            } else {
                Ok(DataObject::Points(eth_data::PointCloud::new()))
            }
        });
        let mut sink = CountingSink::default();
        let err = proxy.run(&mut sink).unwrap_err();
        assert!(err.to_string().contains("synthesis bug"));
        assert!(!sink.finished);
    }

    #[test]
    fn run_from_replays_only_the_tail() {
        let cfg = HaccConfig::with_particles(200);
        let make = || {
            let cfg = cfg.clone();
            SimulationProxy::from_generator(0, 1, 5, move |step, _rank| {
                Ok(DataObject::Points(cfg.generate(step)?))
            })
        };
        let mut full_sink = CountingSink::default();
        let mut full = make();
        full.run(&mut full_sink).unwrap();
        assert_eq!(full.cursor(), 5);

        // an adopter resuming from a checkpoint at step 3 sees steps 3..5
        let mut tail_sink = CountingSink::default();
        let mut tail = make();
        let stats = tail.run_from(3, &mut tail_sink).unwrap();
        assert_eq!(stats.steps, 2);
        assert_eq!(tail_sink.steps, 2);
        assert!(tail_sink.finished);
        assert_eq!(tail.cursor(), 5);
    }

    #[test]
    fn cursor_tracks_completed_steps() {
        let cfg = HaccConfig::with_particles(100);
        let mut proxy = SimulationProxy::from_generator(0, 1, 4, move |step, _| {
            Ok(DataObject::Points(cfg.generate(step)?))
        });
        assert_eq!(proxy.cursor(), 0);
        proxy.step(0).unwrap();
        assert_eq!(proxy.cursor(), 1);
        proxy.step(2).unwrap();
        assert_eq!(proxy.cursor(), 3);
        // stepping an earlier step never rewinds the cursor
        proxy.step(1).unwrap();
        assert_eq!(proxy.cursor(), 3);
    }

    #[test]
    fn adopt_cursor_is_forward_only_and_feeds_run_from() {
        let cfg = HaccConfig::with_particles(100);
        let make = || {
            let cfg = cfg.clone();
            SimulationProxy::from_generator(0, 1, 5, move |step, _rank| {
                Ok(DataObject::Points(cfg.generate(step)?))
            })
        };
        let mut proxy = make();
        proxy.adopt_cursor(3);
        assert_eq!(proxy.cursor(), 3);
        // a stale checkpoint never rewinds
        proxy.adopt_cursor(1);
        assert_eq!(proxy.cursor(), 3);
        // resuming from the adopted cursor replays only the tail
        let mut sink = CountingSink::default();
        let cursor = proxy.cursor();
        let stats = proxy.run_from(cursor, &mut sink).unwrap();
        assert_eq!(stats.steps, 2);
        assert_eq!(proxy.cursor(), 5);
    }

    #[test]
    fn staging_budget_replays_byte_identically_and_counts_the_source_once() {
        let cfg = HaccConfig::with_particles(600);
        let reads = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let make = |budget: Option<u64>| {
            let cfg = cfg.clone();
            let reads = reads.clone();
            SimulationProxy::from_generator(0, 1, 4, move |step, _rank| {
                reads.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                Ok(DataObject::Points(cfg.generate(step)?))
            })
            .with_staging_budget(budget, None)
        };
        // A budget far below four blocks forces spills; replayed steps
        // must still come back byte-identical and never hit the source.
        let mut budgeted = make(Some(8_000));
        let mut plain = make(None);
        reads.store(0, std::sync::atomic::Ordering::SeqCst);
        for step in 0..4 {
            let a = budgeted.step(step).unwrap();
            let b = plain.step(step).unwrap();
            assert_eq!(a, b, "step {step} diverged under the budget");
        }
        assert_eq!(reads.load(std::sync::atomic::Ordering::SeqCst), 8);
        // Recovery-style replay of the full range: all served from the
        // stores (spill chunks included), zero extra source reads.
        for step in 0..4 {
            let a = budgeted.step(step).unwrap();
            let b = plain.step(step).unwrap();
            assert_eq!(a, b, "replayed step {step} diverged");
        }
        assert_eq!(
            reads.load(std::sync::atomic::Ordering::SeqCst),
            8,
            "replay must not re-run the simulation source"
        );
    }

    #[test]
    fn step_is_repeatable() {
        let cfg = HaccConfig::with_particles(100);
        let mut proxy = SimulationProxy::from_generator(0, 1, 2, move |step, _| {
            Ok(DataObject::Points(cfg.generate(step)?))
        });
        let a = proxy.step(1).unwrap();
        let b = proxy.step(1).unwrap();
        assert_eq!(a, b);
    }
}
