//! # eth-sim — simulation proxies and synthetic science data
//!
//! ETH "replace\[s\] the simulation with a proxy for the simulation; a task
//! that has access to the same raw data that the simulation produces
//! internally, but which is much easier to reconfigure for different
//! in-situ architectures" (Section I). This crate provides:
//!
//! * [`interface`] — the simulation↔analysis coupling interface (the thick
//!   black line of Figure 1),
//! * [`hacc`] — a deterministic halo-clustered particle generator standing
//!   in for HACC dark-sky outputs,
//! * [`xrage`] — an analytic blast-wave field generator standing in for
//!   xRAGE asteroid-impact outputs, produced through the same
//!   AMR → structured-grid downsampling path the paper describes,
//! * [`amr`] — the octree AMR substrate used by the xRAGE path,
//! * [`timeseries`] — the on-disk layout of the "preliminary run"
//!   (per-timestep, per-rank files; Figure 7),
//! * [`proxy`] — the simulation proxy that replays those files (or an
//!   in-memory generator) into the in-situ interface.
//!
//! Both generators are substitutions for data we cannot have (documented in
//! DESIGN.md): they produce the same *structural* content the visualization
//! algorithms consume — halo-clustered particles, and a hot moving front in
//! a volumetric temperature field.

pub mod amr;
pub mod hacc;
pub mod interface;
pub mod proxy;
pub mod timeseries;
pub mod xrage;

pub use hacc::HaccConfig;
pub use interface::{InSituSink, SimulationSource};
pub use proxy::SimulationProxy;
pub use xrage::XrageConfig;
