//! # ETH — Exploration Test Harness for in-situ scientific visualization
//!
//! Facade crate re-exporting the full harness. See the individual crates
//! for details:
//!
//! * [`data`] — datasets, partitioning, sampling, IO ([`eth_data`])
//! * [`sim`] — simulation proxies and synthetic science data ([`eth_sim`])
//! * [`render`] — geometry-based and raycasting pipelines ([`eth_render`])
//! * [`transport`] — rank communicators ([`eth_transport`])
//! * [`cluster`] — discrete-event cluster and power model ([`eth_cluster`])
//! * [`core`] — experiment specs, the harness, sweeps, results ([`eth_core`])
//!
//! ## Quickstart
//!
//! ```no_run
//! use eth::prelude::*;
//!
//! // Describe an experiment: HACC-like particles, raycast rendering,
//! // tight coupling, on 4 ranks.
//! let spec = ExperimentSpec::builder("quickstart")
//!     .application(Application::Hacc { particles: 100_000 })
//!     .algorithm(Algorithm::RaycastSpheres)
//!     .coupling(Coupling::Tight)
//!     .ranks(4)
//!     .image_size(256, 256)
//!     .build()
//!     .unwrap();
//!
//! // Run it natively (real data, real rendering, real ranks).
//! let outcome = eth::core::harness::run_native(&spec).unwrap();
//! println!("{}", outcome.report());
//! ```

pub use eth_cluster as cluster;
pub use eth_core as core;
pub use eth_data as data;
pub use eth_render as render;
pub use eth_sim as sim;
pub use eth_transport as transport;

/// Most-used items in one import.
pub mod prelude {
    pub use eth_cluster::metrics::RunMetrics;
    pub use eth_core::config::{
        Algorithm, Application, Coupling, ExperimentSpec, MigrationPattern, MigrationPlan,
        RecoveryPolicy,
    };
    pub use eth_core::harness;
    pub use eth_core::harness::{run_native, run_native_cached, RunCaches};
    pub use eth_core::results::ResultTable;
    pub use eth_core::sweep::{Campaign, CampaignOutcome, Sweep};
    pub use eth_data::{Aabb, DataObject, PointCloud, UniformGrid, Vec3};
    pub use eth_render::camera::Camera;
    pub use eth_render::image::Image;
    pub use eth_transport::fault::FaultPlan;
}
