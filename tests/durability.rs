//! Integration tests for durable campaigns: journal crash-recovery
//! (truncation at any byte offset yields a clean resume with
//! byte-identical images) and spec-hash invalidation on resume.

use eth::core::config::{Algorithm, Application, ExperimentSpec};
use eth::core::journal::JOURNAL_FILE;
use eth::core::sweep::{Campaign, Sweep};
use eth::render::image::Image;
use proptest::prelude::*;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

fn base() -> ExperimentSpec {
    ExperimentSpec::builder("durability")
        .application(Application::Hacc { particles: 800 })
        .algorithm(Algorithm::GaussianSplat)
        .ranks(1)
        .image_size(24, 24)
        .build()
        .unwrap()
}

fn sweep() -> Sweep {
    Sweep::over(base()).sampling_ratios(&[1.0, 0.5, 0.25])
}

fn tmp(name: &str) -> PathBuf {
    static RUN: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join("eth-durability-tests").join(format!(
        "{name}-{:x}-{}",
        std::process::id(),
        RUN.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// The uninterrupted reference: one journaled run of the sweep, kept as
/// the raw campaign-directory bytes plus the images it produced.
struct Reference {
    images: Vec<Vec<Image>>,
    journal: Vec<u8>,
    manifest: Vec<u8>,
    results: Vec<(String, Vec<u8>)>,
}

fn reference() -> &'static Reference {
    static REF: OnceLock<Reference> = OnceLock::new();
    REF.get_or_init(|| {
        let dir = tmp("reference");
        let outcome = Campaign::new().resume(&dir, &sweep()).unwrap();
        assert_eq!(outcome.failures(), 0);
        let images = outcome
            .results
            .iter()
            .map(|r| r.as_ref().unwrap().images.clone())
            .collect();
        let journal = fs::read(dir.join(JOURNAL_FILE)).unwrap();
        let manifest = fs::read(dir.join("manifest.json")).unwrap();
        let mut results = Vec::new();
        for entry in fs::read_dir(dir.join("results")).unwrap() {
            let entry = entry.unwrap();
            results.push((
                entry.file_name().to_string_lossy().into_owned(),
                fs::read(entry.path()).unwrap(),
            ));
        }
        fs::remove_dir_all(&dir).ok();
        Reference {
            images,
            journal,
            manifest,
            results,
        }
    })
}

/// Materialize the reference campaign directory with its journal cut to
/// `keep` bytes — the on-disk state after a crash that tore the tail.
fn stage_truncated(dir: &Path, keep: usize) {
    let r = reference();
    fs::create_dir_all(dir.join("results")).unwrap();
    fs::write(dir.join(JOURNAL_FILE), &r.journal[..keep]).unwrap();
    fs::write(dir.join("manifest.json"), &r.manifest).unwrap();
    for (name, bytes) in &r.results {
        fs::write(dir.join("results").join(name), bytes).unwrap();
    }
}

/// Complete (newline-terminated) journal lines surviving in the first
/// `keep` bytes that record a successfully finished point — exactly the
/// points a resume may restore instead of re-running.
fn surviving_finishes(keep: usize) -> usize {
    let text = String::from_utf8_lossy(&reference().journal[..keep]);
    text.split_inclusive('\n')
        .filter(|line| line.ends_with('\n'))
        .filter(|line| line.contains("\"Finished\"") && line.contains("\"Ok\""))
        .count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Crash-recovery property: truncating the journal at *any* byte
    /// offset must leave a resumable campaign — the torn tail is
    /// discarded, the completed prefix is restored instead of re-run,
    /// and the final images are byte-identical to the uninterrupted run.
    #[test]
    fn truncated_journal_resumes_to_byte_identical_images(pick in 0usize..usize::MAX) {
        let r = reference();
        let keep = pick % (r.journal.len() + 1);
        let dir = tmp("truncated");
        stage_truncated(&dir, keep);

        let outcome = Campaign::new().resume(&dir, &sweep()).unwrap();
        prop_assert_eq!(outcome.failures(), 0);
        prop_assert_eq!(outcome.results.len(), r.images.len());
        prop_assert_eq!(outcome.restored.len(), surviving_finishes(keep));
        for (i, result) in outcome.results.iter().enumerate() {
            let images = &result.as_ref().unwrap().images;
            prop_assert_eq!(
                images, &r.images[i],
                "point {} diverged after resume from offset {}", i, keep
            );
        }
        fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn resume_reruns_only_points_whose_spec_changed() {
    let dir = tmp("spec-change");
    let first = Campaign::new().resume(&dir, &sweep()).unwrap();
    assert_eq!(first.failures(), 0);
    assert!(first.restored.is_empty(), "fresh run restores nothing");

    // Same sweep, one axis value changed: only the changed point re-runs.
    let changed = Sweep::over(base()).sampling_ratios(&[1.0, 0.5, 0.125]);
    let second = Campaign::new().resume(&dir, &changed).unwrap();
    assert_eq!(second.failures(), 0);
    assert_eq!(
        second.restored,
        vec![0, 1],
        "unchanged points must be restored, the changed one re-run"
    );

    // The restored images are the first run's, bit for bit.
    for i in [0usize, 1] {
        assert_eq!(
            second.results[i].as_ref().unwrap().images,
            first.results[i].as_ref().unwrap().images,
        );
    }
    fs::remove_dir_all(&dir).ok();
}
