//! Asymmetric internode layouts (Figure 2's "differing numbers of nodes
//! for each"): a viz side smaller (or larger) than the sim side must
//! produce the same images — sort-last compositing hides the layout.

use eth::core::config::{Algorithm, Application, Coupling, ExperimentSpec};
use eth::core::harness::run_native;

fn spec(name: &str, app: Application, alg: Algorithm, viz_ranks: Option<usize>) -> ExperimentSpec {
    let mut b = ExperimentSpec::builder(name)
        .application(app)
        .algorithm(alg)
        .coupling(Coupling::Internode)
        .ranks(4)
        .image_size(56, 56);
    if let Some(v) = viz_ranks {
        b = b.viz_ranks(v);
    }
    b.build().unwrap()
}

#[test]
fn fewer_viz_ranks_same_particle_image() {
    let app = Application::Hacc { particles: 5_000 };
    let symmetric = run_native(&spec("sym", app.clone(), Algorithm::GaussianSplat, None)).unwrap();
    for viz in [1usize, 2, 3] {
        let asym = run_native(&spec(
            &format!("asym{viz}"),
            app.clone(),
            Algorithm::GaussianSplat,
            Some(viz),
        ))
        .unwrap();
        let rmse = asym.images[0].rmse(&symmetric.images[0]).unwrap();
        assert!(
            rmse < 1e-6,
            "viz_ranks={viz} changed the image: rmse {rmse}"
        );
    }
}

#[test]
fn more_viz_ranks_than_sim_ranks() {
    // Over-provisioned viz side: extra viz ranks serve no sim rank and
    // contribute empty frames; the image must still match.
    let app = Application::Hacc { particles: 5_000 };
    let symmetric = run_native(&spec("m-sym", app.clone(), Algorithm::VtkPoints, None)).unwrap();
    let asym = run_native(&spec("m-asym", app, Algorithm::VtkPoints, Some(6))).unwrap();
    let rmse = asym.images[0].rmse(&symmetric.images[0]).unwrap();
    assert!(rmse < 1e-6, "over-provisioned viz changed the image: {rmse}");
}

#[test]
fn asymmetric_grid_pipeline_matches() {
    let app = Application::Xrage { dims: [18, 14, 12] };
    let symmetric =
        run_native(&spec("g-sym", app.clone(), Algorithm::RaycastIsosurface, None)).unwrap();
    let asym = run_native(&spec("g-asym", app, Algorithm::RaycastIsosurface, Some(2))).unwrap();
    let rmse = asym.images[0].rmse(&symmetric.images[0]).unwrap();
    assert!(rmse < 1e-6, "asymmetric grid layout changed the image: {rmse}");
}

#[test]
fn viz_ranks_validation() {
    // zero viz ranks rejected
    assert!(ExperimentSpec::builder("bad")
        .coupling(Coupling::Internode)
        .viz_ranks(0)
        .build()
        .is_err());
    // viz_ranks on a co-located coupling rejected
    assert!(ExperimentSpec::builder("bad2")
        .coupling(Coupling::Tight)
        .viz_ranks(2)
        .build()
        .is_err());
}
