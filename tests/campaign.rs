//! Integration tests for the campaign engine: correctness of the staging /
//! baseline caches and determinism of concurrent execution.

use eth::core::config::{Algorithm, Application, Coupling, ExperimentSpec};
use eth::core::harness::{run_native, run_native_cached, RunCaches};
use eth::core::sweep::{Campaign, Sweep};

fn base(name: &str) -> ExperimentSpec {
    ExperimentSpec::builder(name)
        .application(Application::Hacc { particles: 2_500 })
        .algorithm(Algorithm::GaussianSplat)
        .ranks(2)
        .image_size(40, 40)
        .build()
        .unwrap()
}

#[test]
fn cached_and_fresh_runs_are_byte_identical() {
    let mut spec = base("cache-vs-fresh");
    spec.sampling_ratio = 0.5;
    let fresh = run_native(&spec).unwrap();
    let caches = RunCaches::new();
    let cold = run_native_cached(&spec, &caches).unwrap();
    let warm = run_native_cached(&spec, &caches).unwrap();
    for (a, b) in fresh.images.iter().zip(&cold.images) {
        assert_eq!(a, b, "cold cached run diverged");
        assert_eq!(a.rmse(b).unwrap(), 0.0);
    }
    for (a, b) in fresh.images.iter().zip(&warm.images) {
        assert_eq!(a, b, "warm cached run diverged");
        assert_eq!(a.rmse(b).unwrap(), 0.0);
    }
    let stats = caches.stats();
    assert_eq!(stats.staging_misses, 1);
    assert_eq!(stats.staging_hits, 1);
}

#[test]
fn campaign_matches_sequential_execution_exactly() {
    // 3 algorithms x 2 ratios, run concurrently on a deliberately small
    // scheduler so admission actually interleaves points. Every image must
    // equal its sequentially-produced counterpart bit-for-bit, in input
    // order.
    let specs = Sweep::over(base("determinism"))
        .algorithms(&Algorithm::particle_algorithms())
        .sampling_ratios(&[1.0, 0.5])
        .specs()
        .unwrap();
    let sequential: Vec<_> = specs.iter().map(|s| run_native(s).unwrap()).collect();
    let out = Campaign::with_capacity(3).run(&specs);
    assert_eq!(out.failures(), 0);
    assert_eq!(out.results.len(), sequential.len());
    for (i, (seq, par)) in sequential.iter().zip(out.outcomes()).enumerate() {
        assert_eq!(seq.spec.name, par.spec.name, "result order scrambled");
        assert_eq!(seq.images, par.images, "point {i} diverged under concurrency");
    }
}

#[test]
fn campaign_runs_are_repeatable() {
    let specs = Sweep::over(base("repeat"))
        .sampling_ratios(&[1.0, 0.25])
        .specs()
        .unwrap();
    let a = Campaign::with_capacity(2).run(&specs);
    let b = Campaign::with_capacity(8).run(&specs);
    assert_eq!(a.failures() + b.failures(), 0);
    for (x, y) in a.outcomes().zip(b.outcomes()) {
        assert_eq!(x.images, y.images, "capacity changed the output");
    }
}

#[test]
fn staging_hit_rate_meets_campaign_floor() {
    // n points over one dataset must stage exactly once: hit rate
    // (n-1)/n, the acceptance floor for the campaign engine.
    let specs = Sweep::over(base("hit-rate"))
        .algorithms(&Algorithm::particle_algorithms())
        .sampling_ratios(&[1.0, 0.75, 0.5, 0.25])
        .specs()
        .unwrap();
    let n = specs.len();
    assert_eq!(n, 12);
    let out = Campaign::new().run(&specs);
    assert_eq!(out.failures(), 0);
    assert_eq!(out.cache.staging_misses, 1);
    assert_eq!(out.cache.staging_hits, (n - 1) as u64);
    assert!(out.cache.staging_hit_rate() >= (n - 1) as f64 / n as f64);
}

#[test]
fn campaign_admits_mixed_couplings() {
    // Points wider than the scheduler (intercore = 2x ranks) clamp and
    // still run; results stay in input order and match solo runs.
    let mut intercore = base("mixed");
    intercore.coupling = Coupling::Intercore;
    let tight = base("mixed");
    let specs = vec![intercore.clone(), tight.clone()];
    let out = Campaign::with_capacity(2).run(&specs);
    assert_eq!(out.failures(), 0);
    let solo_a = run_native(&intercore).unwrap();
    let solo_b = run_native(&tight).unwrap();
    let got: Vec<_> = out.outcomes().collect();
    assert_eq!(got[0].images, solo_a.images);
    assert_eq!(got[1].images, solo_b.images);
}
