//! Property tests for the zero-copy dataset encode/decode path: every
//! `DataObject` shape round-trips exactly, and the computed encoded length
//! always matches the bytes actually produced.

use eth::data::field::Attribute;
use eth::data::io::binary::{decode, encode, encoded_len};
use eth::data::{DataObject, PointCloud, UniformGrid, Vec3};
use eth::transport::message::{decode_dataset, encode_dataset, encoded_dataset_len};
use proptest::prelude::*;

fn arb_vec3() -> impl Strategy<Value = Vec3> {
    (-100.0f32..100.0, -100.0f32..100.0, -100.0f32..100.0)
        .prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn arb_points() -> impl Strategy<Value = DataObject> {
    (prop::collection::vec(arb_vec3(), 0..40), 0u64..u64::MAX).prop_map(|(pos, salt)| {
        let n = pos.len();
        let mut cloud = PointCloud::from_positions(pos);
        // Attributes of every kind, sized to the cloud, varied by `salt`.
        let f = |i: usize| (i as u64).wrapping_mul(0x9E3779B97F4A7C15) ^ salt;
        cloud
            .set_attribute(
                "s",
                Attribute::Scalar((0..n).map(|i| f(i) as f32 * 1e-12 - 3.0).collect()),
            )
            .unwrap();
        cloud
            .set_attribute(
                "v",
                Attribute::Vector(
                    (0..n)
                        .map(|i| Vec3::new(f(i) as f32 * 1e-12, -(i as f32), 0.25 * i as f32))
                        .collect(),
                ),
            )
            .unwrap();
        cloud
            .set_attribute("id", Attribute::Id((0..n).map(f).collect()))
            .unwrap();
        DataObject::Points(cloud)
    })
}

fn arb_grid() -> impl Strategy<Value = DataObject> {
    (2usize..6, 2usize..6, 2usize..6, arb_vec3(), 0.01f32..2.0)
        .prop_map(|(nx, ny, nz, origin, h)| {
            let mut grid = UniformGrid::new([nx, ny, nz], origin, Vec3::splat(h)).unwrap();
            let n = grid.num_vertices();
            grid.set_attribute(
                "field",
                Attribute::Scalar((0..n).map(|i| (i as f32).sin()).collect()),
            )
            .unwrap();
            DataObject::Grid(grid)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Point clouds with every attribute kind survive the wire exactly.
    #[test]
    fn points_roundtrip(obj in arb_points()) {
        let wire = encode(&obj);
        prop_assert_eq!(wire.len(), encoded_len(&obj));
        let back = decode(wire).unwrap();
        prop_assert_eq!(obj, back);
    }

    /// Grids survive the wire exactly.
    #[test]
    fn grids_roundtrip(obj in arb_grid()) {
        let wire = encode(&obj);
        prop_assert_eq!(wire.len(), encoded_len(&obj));
        let back = decode(wire).unwrap();
        prop_assert_eq!(obj, back);
    }

    /// The transport-layer wrappers agree with the data-layer encoder.
    #[test]
    fn transport_wrappers_agree(obj in arb_points()) {
        let payload = encode_dataset(&obj);
        prop_assert_eq!(payload.len(), encoded_dataset_len(&obj));
        let back = decode_dataset(payload).unwrap();
        prop_assert_eq!(obj, back);
    }

    /// Truncating an encoded payload anywhere must error, never panic.
    #[test]
    fn truncation_fails_cleanly(obj in arb_points(), frac in 0.0f64..1.0) {
        let wire = encode(&obj).to_vec();
        let cut = ((wire.len() as f64) * frac) as usize;
        if cut < wire.len() {
            let got = decode(bytes::Bytes::from(wire[..cut].to_vec()));
            prop_assert!(got.is_err());
        }
    }
}
