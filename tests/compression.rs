//! Integration tests for transport compression (the extension covering the
//! paper's third data-reduction technique).

use eth::core::config::{Algorithm, Application, Coupling, ExperimentSpec};
use eth::core::harness::run_native;
use eth::data::compress;
use eth::data::DataObject;
use eth::sim::HaccConfig;

fn spec(name: &str, compressed: bool) -> ExperimentSpec {
    ExperimentSpec::builder(name)
        .application(Application::Hacc { particles: 6_000 })
        .algorithm(Algorithm::GaussianSplat)
        .coupling(Coupling::Internode)
        .ranks(2)
        .image_size(64, 64)
        .compress_transport(compressed)
        .build()
        .unwrap()
}

#[test]
fn compressed_internode_moves_fewer_bytes() {
    let raw = run_native(&spec("comp-off", false)).unwrap();
    let packed = run_native(&spec("comp-on", true)).unwrap();
    assert!(
        packed.bytes_moved < raw.bytes_moved * 3 / 4,
        "compression saved too little: {} vs {}",
        packed.bytes_moved,
        raw.bytes_moved
    );
}

#[test]
fn compressed_transport_barely_changes_the_image() {
    let raw = run_native(&spec("q-off", false)).unwrap();
    let packed = run_native(&spec("q-on", true)).unwrap();
    let rmse = packed.images[0].rmse(&raw.images[0]).unwrap();
    let ssim = packed.images[0].ssim(&raw.images[0]).unwrap();
    assert!(rmse < 0.05, "quantization visibly damaged the image: {rmse}");
    assert!(ssim > 0.9, "structural damage from quantization: {ssim}");
    // …but it is lossy: the images are not bit-identical
    assert!(rmse > 0.0);
}

#[test]
fn compression_error_bound_scales_with_extent() {
    let cloud = HaccConfig::with_particles(3_000).generate(0).unwrap();
    let obj = DataObject::Points(cloud.clone());
    let back = compress::decompress(compress::compress(&obj)).unwrap();
    let b = back.as_points().unwrap();
    let extent = cloud.bounds().extent().max_component();
    let bound = extent * 1.5 / 65535.0;
    let worst = cloud
        .positions()
        .iter()
        .zip(b.positions())
        .map(|(p, q)| (*p - *q).length())
        .fold(0.0f32, f32::max);
    assert!(worst <= bound * 2.0, "worst error {worst} vs bound {bound}");
}

#[test]
fn tight_coupling_ignores_compression_flag() {
    let mut a = spec("tight-a", false);
    a.coupling = Coupling::Tight;
    let mut b = spec("tight-b", true);
    b.coupling = Coupling::Tight;
    let ra = run_native(&a).unwrap();
    let rb = run_native(&b).unwrap();
    // data never crosses a process boundary: images bit-identical
    assert_eq!(ra.images[0].rmse(&rb.images[0]).unwrap(), 0.0);
}
