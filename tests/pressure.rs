//! Integration tests for resource-pressure robustness: the staging store
//! must survive arbitrary stage→spill→reload interleavings under a
//! shrinking memory budget without changing a byte, and a journaled
//! campaign must survive an injected ENOSPC at *any* append ordinal —
//! recovering through the retry policy with byte-identical images, never
//! panicking (the disk-full mirror of `durability.rs`'s truncation test).

use eth::core::config::{Algorithm, Application, ExperimentSpec};
use eth::core::sweep::{Campaign, Sweep};
use eth::core::RetryPolicy;
use eth::data::staging::BlockStore;
use eth::data::DataObject;
use eth::render::image::Image;
use eth::transport::fault::FaultPlan;
use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

fn tmp(name: &str) -> PathBuf {
    static RUN: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join("eth-pressure-tests").join(format!(
        "{name}-{:x}-{}",
        std::process::id(),
        RUN.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn base() -> ExperimentSpec {
    ExperimentSpec::builder("pressure")
        .application(Application::Hacc { particles: 800 })
        .algorithm(Algorithm::GaussianSplat)
        .ranks(1)
        .image_size(24, 24)
        .build()
        .unwrap()
}

fn sweep_specs(fail_at: Option<u64>) -> Vec<ExperimentSpec> {
    let mut spec = base();
    if let Some(n) = fail_at {
        spec.fault_plan = Some(FaultPlan::default().with_disk_full_at_append(n));
    }
    Sweep::over(spec)
        .sampling_ratios(&[1.0, 0.5, 0.25])
        .specs()
        .unwrap()
}

/// The fault-free reference images, one journaled run, computed once.
fn reference_images() -> &'static Vec<Vec<Image>> {
    static REF: OnceLock<Vec<Vec<Image>>> = OnceLock::new();
    REF.get_or_init(|| {
        let dir = tmp("reference");
        let outcome = Campaign::new()
            .run_journaled(&sweep_specs(None), &eth::prelude::RunCaches::new(), &dir)
            .unwrap();
        assert_eq!(outcome.failures(), 0);
        let images = outcome
            .results
            .iter()
            .map(|r| r.as_ref().unwrap().images.clone())
            .collect();
        fs::remove_dir_all(&dir).ok();
        images
    })
}

/// The six distinct timestep blocks the staging property moves around,
/// with their canonical encodings for byte-level comparison.
fn staging_blocks() -> &'static Vec<(DataObject, Vec<u8>)> {
    static BLOCKS: OnceLock<Vec<(DataObject, Vec<u8>)>> = OnceLock::new();
    BLOCKS.get_or_init(|| {
        let app = Application::Hacc { particles: 500 };
        (0..6)
            .map(|step| {
                let obj = app.generate(step, 7).unwrap();
                let bytes = eth::data::io::binary::encode(&obj).as_ref().to_vec();
                (obj, bytes)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// ENOSPC-at-any-append property: injecting a disk-full error at an
    /// arbitrary journal append ordinal must leave the campaign standing —
    /// a torn Started/Finished append is absorbed (they are best-effort),
    /// a torn result write fails the point and the retry policy recovers
    /// it — and in every case the images are byte-identical to the
    /// fault-free run, both in the faulted campaign and after a resume.
    #[test]
    fn disk_full_at_any_append_recovers_to_byte_identical_images(pick in 0u64..u64::MAX) {
        // A 3-point single-attempt run appends 3 ordinals per point
        // (Started, result write, Finished); 0..8 also probes past-the-end
        // (inert) injections.
        let fail_at = pick % 8;
        let reference = reference_images();
        let dir = tmp("disk-full");
        let specs = sweep_specs(Some(fail_at));

        let outcome = Campaign::new()
            .with_retry_policy(RetryPolicy::standard(2))
            .run_journaled(&specs, &eth::prelude::RunCaches::new(), &dir)
            .unwrap();
        prop_assert_eq!(outcome.failures(), 0, "injection at ordinal {} leaked", fail_at);
        prop_assert!(outcome.quarantined.is_empty());
        for (i, result) in outcome.results.iter().enumerate() {
            prop_assert_eq!(
                &result.as_ref().unwrap().images, &reference[i],
                "point {} diverged under injection at ordinal {}", i, fail_at
            );
        }

        // Whatever the journal now holds (a recovered point's second
        // attempt, or a success whose Finished record was torn), a resume
        // must reproduce the same bytes.
        let resumed = Campaign::new()
            .with_retry_policy(RetryPolicy::standard(2))
            .run_journaled(&sweep_specs(None), &eth::prelude::RunCaches::new(), &dir)
            .unwrap();
        prop_assert_eq!(resumed.failures(), 0);
        for (i, result) in resumed.results.iter().enumerate() {
            prop_assert_eq!(
                &result.as_ref().unwrap().images, &reference[i],
                "point {} diverged on resume after injection at ordinal {}", i, fail_at
            );
        }
        fs::remove_dir_all(&dir).ok();
    }

    /// Spill-staging property: any interleaving of inserts and reads over
    /// any budget — from "everything fits" down to "every block spills" —
    /// returns every block byte-identical, with the store's peak resident
    /// accounting never exceeding the budget.
    #[test]
    fn any_stage_spill_reload_interleaving_is_byte_identical(
        ops in proptest::collection::vec(0usize..6, 1..32),
        divisor in 1u64..40,
    ) {
        let blocks = staging_blocks();
        let total: u64 = blocks.iter().map(|(_, b)| b.len() as u64).sum();
        let budget = (total / divisor).max(1);
        let store = BlockStore::new(Some(budget), None);

        let mut inserted = [false; 6];
        for &i in &ops {
            if inserted[i] {
                let back = store.get(i).unwrap();
                let encoded = eth::data::io::binary::encode(&back);
                prop_assert_eq!(
                    encoded.as_ref(), blocks[i].1.as_slice(),
                    "block {} diverged mid-interleaving (budget {})", i, budget
                );
            } else {
                store.insert(i, blocks[i].0.clone()).unwrap();
                inserted[i] = true;
            }
        }
        // Full reload pass: every inserted block streams back intact no
        // matter how many times it was evicted and reloaded above.
        for (i, (_, bytes)) in blocks.iter().enumerate() {
            if !inserted[i] {
                continue;
            }
            let back = store.get(i).unwrap();
            let encoded = eth::data::io::binary::encode(&back);
            prop_assert_eq!(
                encoded.as_ref(), bytes.as_slice(),
                "block {} diverged on final reload (budget {})", i, budget
            );
        }
        let stats = store.stats();
        prop_assert!(
            stats.peak_resident_bytes <= budget,
            "peak {} exceeded budget {}", stats.peak_resident_bytes, budget
        );
        store.assert_within_budget();
    }
}
