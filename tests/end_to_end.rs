//! Cross-crate integration tests: full native experiments through every
//! coupling and backend, the preliminary-run replay path, and artifacts.

use eth::core::config::{Algorithm, Application, Coupling, ExperimentSpec};
use eth::core::harness::run_native;
use eth::data::partition::partition_points;
use eth::data::DataObject;
use eth::sim::interface::CountingSink;
use eth::sim::timeseries::TimeSeriesWriter;
use eth::sim::{HaccConfig, SimulationProxy};

fn hacc_spec(name: &str, alg: Algorithm, coupling: Coupling) -> ExperimentSpec {
    ExperimentSpec::builder(name)
        .application(Application::Hacc { particles: 4_000 })
        .algorithm(alg)
        .coupling(coupling)
        .ranks(2)
        .steps(2)
        .image_size(48, 48)
        .build()
        .unwrap()
}

fn xrage_spec(name: &str, alg: Algorithm, coupling: Coupling) -> ExperimentSpec {
    ExperimentSpec::builder(name)
        .application(Application::Xrage { dims: [18, 14, 12] })
        .algorithm(alg)
        .coupling(coupling)
        .ranks(2)
        .image_size(48, 48)
        .build()
        .unwrap()
}

#[test]
fn every_particle_backend_runs_under_every_coupling() {
    for alg in Algorithm::particle_algorithms() {
        let mut reference: Option<eth::render::Image> = None;
        for coupling in Coupling::all() {
            let spec = hacc_spec(
                &format!("e2e-{}-{}", alg.name(), coupling.name()),
                alg,
                coupling,
            );
            let out = run_native(&spec).unwrap();
            assert_eq!(out.images.len(), 2, "{} {}", alg.name(), coupling.name());
            assert!(
                out.images[0].coverage(0.01) > 0.001,
                "{} {} drew nothing",
                alg.name(),
                coupling.name()
            );
            // Couplings are execution strategies, not visual choices: the
            // images must be identical across couplings.
            match &reference {
                None => reference = Some(out.images[0].clone()),
                Some(r) => {
                    let rmse = out.images[0].rmse(r).unwrap();
                    assert!(
                        rmse < 1e-6,
                        "{} under {} changed the image: {rmse}",
                        alg.name(),
                        coupling.name()
                    );
                }
            }
        }
    }
}

#[test]
fn every_grid_backend_runs_under_every_coupling() {
    for alg in [
        Algorithm::VtkIsosurface,
        Algorithm::RaycastIsosurface,
        Algorithm::VtkSlice,
        Algorithm::RaycastSlice,
    ] {
        let mut reference: Option<eth::render::Image> = None;
        for coupling in Coupling::all() {
            let spec = xrage_spec(
                &format!("e2e-{}-{}", alg.name(), coupling.name()),
                alg,
                coupling,
            );
            let out = run_native(&spec).unwrap();
            assert_eq!(out.images.len(), 1);
            match &reference {
                None => reference = Some(out.images[0].clone()),
                Some(r) => {
                    let rmse = out.images[0].rmse(r).unwrap();
                    assert!(rmse < 1e-6, "{} under {}: {rmse}", alg.name(), coupling.name());
                }
            }
        }
    }
}

#[test]
fn isosurface_backends_agree_on_the_picture() {
    // The central comparability property of the harness: the two pipelines
    // draw the same surface.
    let vtk = run_native(&xrage_spec("agree-vtk", Algorithm::VtkIsosurface, Coupling::Tight))
        .unwrap();
    let ray = run_native(&xrage_spec(
        "agree-ray",
        Algorithm::RaycastIsosurface,
        Coupling::Tight,
    ))
    .unwrap();
    let rmse = vtk.images[0].rmse(&ray.images[0]).unwrap();
    assert!(rmse < 0.1, "backends disagree: rmse {rmse}");
}

#[test]
fn slice_backends_agree_on_the_picture() {
    let vtk = run_native(&xrage_spec("sagree-vtk", Algorithm::VtkSlice, Coupling::Tight))
        .unwrap();
    let ray = run_native(&xrage_spec(
        "sagree-ray",
        Algorithm::RaycastSlice,
        Coupling::Tight,
    ))
    .unwrap();
    let rmse = vtk.images[0].rmse(&ray.images[0]).unwrap();
    assert!(rmse < 0.12, "slice backends disagree: rmse {rmse}");
}

#[test]
fn preliminary_run_replay_reaches_the_same_particles() {
    let dir = std::env::temp_dir().join("eth-e2e-replay");
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = HaccConfig::with_particles(2_000);
    let ranks = 3;
    let steps = 2;
    let mut w = TimeSeriesWriter::create(&dir, "e2e", ranks, steps).unwrap();
    for step in 0..steps {
        let cloud = cfg.generate(step).unwrap();
        for (rank, part) in partition_points(&cloud, ranks).unwrap().into_iter().enumerate() {
            w.write_block(step, rank, &DataObject::Points(part)).unwrap();
        }
    }
    w.close().unwrap();
    let mut total = 0;
    for rank in 0..ranks {
        let mut proxy = SimulationProxy::from_disk(&dir, rank).unwrap();
        let mut sink = CountingSink::default();
        proxy.run(&mut sink).unwrap();
        total += sink.elements;
    }
    assert_eq!(total, 2_000 * steps as u64);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn artifacts_land_on_disk() {
    let dir = std::env::temp_dir().join("eth-e2e-artifacts");
    let _ = std::fs::remove_dir_all(&dir);
    let mut spec = hacc_spec("artifact", Algorithm::VtkPoints, Coupling::Tight);
    spec.artifact_dir = Some(dir.clone());
    let out = run_native(&spec).unwrap();
    assert_eq!(out.images.len(), 2);
    let files: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
    assert_eq!(files.len(), 2, "expected 2 PPM artifacts");
    // written artifact re-reads to the in-memory image (modulo 8-bit gamma)
    let first = files
        .iter()
        .map(|f| f.as_ref().unwrap().path())
        .find(|p| p.to_string_lossy().contains("step000"))
        .unwrap();
    let reread = eth::render::Image::read_ppm(&first).unwrap();
    let rmse = reread.rmse(&out.images[0]).unwrap();
    assert!(rmse < 0.02, "artifact does not match in-memory image: {rmse}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn more_ranks_same_image() {
    // Rank count is an execution detail; sort-last compositing must hide it.
    let r2 = run_native(&hacc_spec("ranks2", Algorithm::RaycastSpheres, Coupling::Tight))
        .unwrap();
    let mut spec4 = hacc_spec("ranks4", Algorithm::RaycastSpheres, Coupling::Tight);
    spec4.ranks = 4;
    let r4 = run_native(&spec4).unwrap();
    let rmse = r2.images[0].rmse(&r4.images[0]).unwrap();
    assert!(rmse < 0.02, "rank count changed the image: {rmse}");
}

#[test]
fn sampling_degrades_gracefully() {
    // RMSE vs the unsampled baseline grows monotonically as ratio falls.
    let baseline = run_native(&hacc_spec("samp-base", Algorithm::VtkPoints, Coupling::Tight))
        .unwrap();
    let mut last = 0.0;
    for ratio in [0.75, 0.5, 0.25] {
        let mut spec = hacc_spec("samp", Algorithm::VtkPoints, Coupling::Tight);
        spec.sampling_ratio = ratio;
        let out = run_native(&spec).unwrap();
        let rmse = out.images[0].rmse(&baseline.images[0]).unwrap();
        assert!(
            rmse >= last,
            "RMSE should not shrink as sampling gets more aggressive: \
             ratio {ratio} gave {rmse} after {last}"
        );
        last = rmse;
    }
    assert!(last > 0.0);
}
