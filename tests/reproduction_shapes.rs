//! Paper-shape integration tests: every finding of Section VI, asserted
//! against the cluster-sim reproduction (orderings and ratio windows, not
//! exact numbers).

use eth::cluster::costmodel::AlgorithmClass;
use eth::cluster::coupling::CouplingStrategy;
use eth::core::harness::{run_cluster, ClusterExperiment};

const B: u64 = 1_000_000_000;
const XRAGE_LARGE: [u64; 3] = [1840, 1120, 960];

#[test]
fn finding1_splat_faster_than_points_faster_than_raycast() {
    let t = |alg| run_cluster(&ClusterExperiment::hacc(alg, 400, B)).exec_time_s;
    let splat = t(AlgorithmClass::GaussianSplat);
    let points = t(AlgorithmClass::VtkPoints);
    let ray = t(AlgorithmClass::RaycastSpheres);
    assert!(splat < points && points < ray);
    // paper ratios: 171.9 / 268.7 / 464.4
    assert!((0.5..0.8).contains(&(splat / points)), "{}", splat / points);
    assert!((1.4..2.2).contains(&(ray / points)), "{}", ray / points);
}

#[test]
fn finding2_power_nearly_constant_across_hacc_algorithms() {
    let p = |alg| run_cluster(&ClusterExperiment::hacc(alg, 400, B)).avg_power_kw;
    let powers = [
        p(AlgorithmClass::GaussianSplat),
        p(AlgorithmClass::VtkPoints),
        p(AlgorithmClass::RaycastSpheres),
    ];
    let max = powers.iter().cloned().fold(f64::MIN, f64::max);
    let min = powers.iter().cloned().fold(f64::MAX, f64::min);
    assert!(max - min < 2.0, "power spread {}", max - min);
    // and in the paper's absolute neighbourhood (55.2–55.7 kW)
    assert!((52.0..58.0).contains(&max));
}

#[test]
fn finding3_scaling_curves_differ_with_data_size() {
    let t = |alg, n| run_cluster(&ClusterExperiment::hacc(alg, 400, n)).exec_time_s;
    let growth = |alg| t(alg, B) / t(alg, B / 4);
    assert!(growth(AlgorithmClass::GaussianSplat) > 3.2);
    assert!(growth(AlgorithmClass::VtkPoints) > 3.2);
    assert!(growth(AlgorithmClass::RaycastSpheres) < 2.0);
}

#[test]
fn finding4_sampling_reduces_hacc_power() {
    let base = run_cluster(&ClusterExperiment::hacc(AlgorithmClass::VtkPoints, 400, B));
    let sampled = run_cluster(
        &ClusterExperiment::hacc(AlgorithmClass::VtkPoints, 400, B).with_sampling(0.25),
    );
    let total_drop = 1.0 - sampled.avg_power_kw / base.avg_power_kw;
    let dynamic_drop = 1.0 - sampled.dynamic_power_kw / base.dynamic_power_kw;
    // paper: ~11% total, ~39% dynamic
    assert!((0.05..0.18).contains(&total_drop), "total {total_drop}");
    assert!((0.28..0.5).contains(&dynamic_drop), "dynamic {dynamic_drop}");
}

#[test]
fn finding5_poor_strong_scaling_for_raycasting() {
    let t = |nodes| {
        run_cluster(&ClusterExperiment::hacc(AlgorithmClass::RaycastSpheres, nodes, B))
            .exec_time_s
    };
    let speedup = t(200) / t(400);
    assert!((1.0..1.5).contains(&speedup), "speedup {speedup}");
    // power halves, so the 200-node run wins on energy
    let m200 = run_cluster(&ClusterExperiment::hacc(AlgorithmClass::RaycastSpheres, 200, B));
    let m400 = run_cluster(&ClusterExperiment::hacc(AlgorithmClass::RaycastSpheres, 400, B));
    assert!(m200.energy_kj < m400.energy_kj);
}

#[test]
fn finding6_intercore_coupling_wins_for_hacc() {
    let run = |c| {
        run_cluster(
            &ClusterExperiment::hacc(AlgorithmClass::RaycastSpheres, 400, B)
                .with_coupling(c)
                .with_steps(4)
                .with_sim_ops(300_000.0),
        )
    };
    let tight = run(CouplingStrategy::Tight);
    let intercore = run(CouplingStrategy::Intercore);
    let internode = run(CouplingStrategy::Internode);
    assert!(intercore.exec_time_s < tight.exec_time_s);
    assert!(intercore.exec_time_s < internode.exec_time_s);
    assert!(intercore.energy_kj < tight.energy_kj);
}

#[test]
fn fig12_xrage_vtk_costs_more_time_and_energy() {
    let vtk = run_cluster(&ClusterExperiment::xrage(
        AlgorithmClass::VtkIsosurface,
        216,
        XRAGE_LARGE,
    ));
    let ray = run_cluster(&ClusterExperiment::xrage(
        AlgorithmClass::RaycastIsosurface,
        216,
        XRAGE_LARGE,
    ));
    assert!(vtk.exec_time_s > ray.exec_time_s);
    assert!(vtk.energy_kj > ray.energy_kj);
    let ratio = vtk.exec_time_s / ray.exec_time_s;
    assert!((1.1..3.2).contains(&ratio), "vtk/ray {ratio} (paper 1.28)");
}

#[test]
fn fig14_grid_sampling_saves_energy_but_not_power() {
    let base = run_cluster(&ClusterExperiment::xrage(
        AlgorithmClass::VtkIsosurface,
        216,
        XRAGE_LARGE,
    ));
    let sampled = run_cluster(
        &ClusterExperiment::xrage(AlgorithmClass::VtkIsosurface, 216, XRAGE_LARGE)
            .with_sampling(0.04),
    );
    let power_change = (base.avg_power_kw - sampled.avg_power_kw).abs() / base.avg_power_kw;
    assert!(power_change < 0.03, "power should stay flat: {power_change}");
    assert!(sampled.energy_kj < base.energy_kj, "energy should still fall");
}

#[test]
fn finding7_crossover_at_64_nodes_or_more() {
    let t = |alg, nodes| {
        run_cluster(&ClusterExperiment::xrage(alg, nodes, XRAGE_LARGE)).exec_time_s
    };
    // vtk wins small, raycast wins large, crossover in the paper's window
    assert!(t(AlgorithmClass::VtkIsosurface, 1) < t(AlgorithmClass::RaycastIsosurface, 1));
    assert!(t(AlgorithmClass::VtkIsosurface, 216) > t(AlgorithmClass::RaycastIsosurface, 216));
    let mut crossover = None;
    for nodes in [2u32, 4, 8, 16, 32, 64, 128, 216] {
        if t(AlgorithmClass::VtkIsosurface, nodes)
            > t(AlgorithmClass::RaycastIsosurface, nodes)
        {
            crossover = Some(nodes);
            break;
        }
    }
    let crossover = crossover.expect("raycast must eventually win");
    assert!(
        (32..=128).contains(&crossover),
        "crossover at {crossover} nodes (paper: 64 or more)"
    );
}

#[test]
fn fig15_vtk_degrades_beyond_its_peak() {
    let t = |nodes| {
        run_cluster(&ClusterExperiment::xrage(
            AlgorithmClass::VtkIsosurface,
            nodes,
            XRAGE_LARGE,
        ))
        .exec_time_s
    };
    let times: Vec<(u32, f64)> = [1u32, 4, 16, 64, 128, 216]
        .iter()
        .map(|&n| (n, t(n)))
        .collect();
    let (best_nodes, best_time) = times
        .iter()
        .cloned()
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap();
    let t216 = times.last().unwrap().1;
    assert!(
        best_nodes < 216,
        "vtk should peak before the largest allocation"
    );
    assert!(
        t216 > best_time * 1.05,
        "vtk at 216 nodes ({t216}) should be measurably past its best ({best_time})"
    );
}

#[test]
fn fig15_raycast_scales_nearly_linearly() {
    let t = |nodes| {
        run_cluster(&ClusterExperiment::xrage(
            AlgorithmClass::RaycastIsosurface,
            nodes,
            XRAGE_LARGE,
        ))
        .exec_time_s
    };
    let t1 = t(1);
    for nodes in [2u32, 4, 8, 16, 32, 64] {
        let speedup = t1 / t(nodes);
        let efficiency = speedup / nodes as f64;
        assert!(
            efficiency > 0.6,
            "raycast efficiency at {nodes} nodes: {efficiency}"
        );
    }
}
