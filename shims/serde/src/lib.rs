//! Minimal `serde` stand-in.
//!
//! Instead of serde's visitor architecture, serialization goes through an
//! owned JSON-like [`Value`] tree: `Serialize` produces a `Value`,
//! `Deserialize` consumes one. `serde_json` (the shim) renders and parses
//! that tree. This is enough because nothing outside this repository
//! consumes the JSON — only round-trip fidelity matters.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::path::PathBuf;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every type serializes into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered map (JSON object).
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Look up a key in an object's field list (helper for derive-generated
/// code; linear scan is fine at config-struct sizes).
pub fn field<'v>(fields: &'v [(String, Value)], key: &str) -> Option<&'v Value> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

pub trait Serialize {
    fn serialize_value(&self) -> Value;
}

pub trait Deserialize: Sized {
    fn deserialize_value(v: &Value) -> Result<Self, DeError>;
}

// ---- primitive impls ----------------------------------------------------

macro_rules! ser_de_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $ty {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    other => {
                        return Err(DeError::custom(format!(
                            "expected unsigned integer, got {other:?}"
                        )))
                    }
                };
                <$ty>::try_from(n)
                    .map_err(|_| DeError::custom(format!("{n} out of range for {}", stringify!($ty))))
            }
        }
    )*};
}

macro_rules! ser_de_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $ty {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| DeError::custom(format!("{n} out of i64 range")))?,
                    Value::F64(f) if f.fract() == 0.0 => *f as i64,
                    other => {
                        return Err(DeError::custom(format!(
                            "expected integer, got {other:?}"
                        )))
                    }
                };
                <$ty>::try_from(n)
                    .map_err(|_| DeError::custom(format!("{n} out of range for {}", stringify!($ty))))
            }
        }
    )*};
}

ser_de_unsigned!(u8, u16, u32, u64, usize);
ser_de_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_de_float {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $ty {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::F64(f) => Ok(*f as $ty),
                    Value::U64(n) => Ok(*n as $ty),
                    Value::I64(n) => Ok(*n as $ty),
                    other => Err(DeError::custom(format!("expected number, got {other:?}"))),
                }
            }
        }
    )*};
}

ser_de_float!(f32, f64);

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for PathBuf {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string_lossy().into_owned())
    }
}

impl Deserialize for PathBuf {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(PathBuf::from(s)),
            other => Err(DeError::custom(format!("expected path string, got {other:?}"))),
        }
    }
}

impl Serialize for std::time::Duration {
    fn serialize_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_string(), Value::U64(self.as_secs())),
            ("nanos".to_string(), Value::U64(u64::from(self.subsec_nanos()))),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let fields = v
            .as_object()
            .ok_or_else(|| DeError::custom(format!("expected duration object, got {v:?}")))?;
        let secs = field(fields, "secs")
            .map(u64::deserialize_value)
            .transpose()?
            .unwrap_or(0);
        let nanos = field(fields, "nanos")
            .map(u32::deserialize_value)
            .transpose()?
            .unwrap_or(0);
        Ok(std::time::Duration::new(secs, nanos))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(x) => x.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(DeError::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let items = v
            .as_array()
            .ok_or_else(|| DeError::custom(format!("expected array of {N}, got {v:?}")))?;
        if items.len() != N {
            return Err(DeError::custom(format!(
                "expected array of length {N}, got {}",
                items.len()
            )));
        }
        let vec: Vec<T> = items.iter().map(T::deserialize_value).collect::<Result<_, _>>()?;
        vec.try_into()
            .map_err(|_| DeError::custom("array length mismatch"))
    }
}

macro_rules! ser_de_tuple {
    ($(($($name:ident : $idx:tt),+) with $len:expr;)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                let items = v
                    .as_array()
                    .ok_or_else(|| DeError::custom(format!("expected tuple array, got {v:?}")))?;
                if items.len() != $len {
                    return Err(DeError::custom(format!(
                        "expected tuple of {}, got {}", $len, items.len()
                    )));
                }
                Ok(($($name::deserialize_value(&items[$idx])?,)+))
            }
        }
    )*};
}

ser_de_tuple! {
    (A: 0) with 1;
    (A: 0, B: 1) with 2;
    (A: 0, B: 1, C: 2) with 3;
    (A: 0, B: 1, C: 2, D: 3) with 4;
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize_value(&self) -> Value {
        // Sort keys so serialized output is deterministic.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Value::Object(
            keys.into_iter()
                .map(|k| (k.clone(), self[k].serialize_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let fields = v
            .as_object()
            .ok_or_else(|| DeError::custom(format!("expected object map, got {v:?}")))?;
        fields
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::deserialize_value(val)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let fields = v
            .as_object()
            .ok_or_else(|| DeError::custom(format!("expected object map, got {v:?}")))?;
        fields
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::deserialize_value(val)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
