//! Minimal `rayon` stand-in built on `std::thread::scope`.
//!
//! The execution model is deliberately simple and *order-preserving*: a
//! pipeline materializes its input items, splits them into contiguous
//! chunks (one per available core), maps each chunk on its own scoped
//! thread, and re-concatenates chunk outputs in input order. `reduce` then
//! folds the mapped results sequentially, left to right, starting from
//! `identity()`.
//!
//! That makes every `map`/`collect`/`reduce` in this workspace bitwise
//! deterministic and identical to serial execution whenever the reduce
//! operator is associative — which the render/composite call sites are.
//! Real rayon only promises this for `collect`; do not port code here that
//! relies on rayon's work-stealing reduction shapes.

use std::marker::PhantomData;
use std::ops::Range;

/// Number of worker threads a parallel region will use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run both closures, potentially in parallel, and return both results.
/// Panics from either closure propagate to the caller.
pub fn join<A, RA, B, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let b = s.spawn(oper_b);
        let ra = oper_a();
        match b.join() {
            Ok(rb) => (ra, rb),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    })
}

/// Map `f` over `items` on scoped threads, preserving item order.
fn execute<T, U, F>(items: Vec<T>, f: &F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_size = n.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<T> = it.by_ref().take(chunk_size).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let mut out: Vec<Option<Vec<U>>> = (0..chunks.len()).map(|_| None).collect();
    std::thread::scope(|s| {
        for (slot, chunk) in out.iter_mut().zip(chunks) {
            s.spawn(move || {
                *slot = Some(chunk.into_iter().map(f).collect());
            });
        }
    });
    out.into_iter().flatten().flatten().collect()
}

/// A materialized parallel iterator: items are collected up front, the
/// heavy lifting happens at the `map`/`collect`/`reduce` boundary.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    pub fn map<U, F>(self, f: F) -> ParMap<T, U, F>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParMap {
            items: self.items,
            f,
            _marker: PhantomData,
        }
    }

    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// A parallel iterator with a pending map stage.
pub struct ParMap<T, U, F> {
    items: Vec<T>,
    f: F,
    _marker: PhantomData<fn() -> U>,
}

impl<T, U, F> ParMap<T, U, F>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    pub fn map<V, G>(self, g: G) -> ParMap<T, V, impl Fn(T) -> V + Sync>
    where
        V: Send,
        G: Fn(U) -> V + Sync,
    {
        let f = self.f;
        ParMap {
            items: self.items,
            f: move |t| g(f(t)),
            _marker: PhantomData,
        }
    }

    pub fn collect<C: FromIterator<U>>(self) -> C {
        execute(self.items, &self.f).into_iter().collect()
    }

    /// Map in parallel, then fold the results sequentially in input order
    /// starting from `identity()`. Deterministic for any operator; equal to
    /// rayon's result when the operator is associative.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> U
    where
        ID: Fn() -> U + Sync + Send,
        OP: Fn(U, U) -> U + Sync + Send,
    {
        let mapped = execute(self.items, &self.f);
        mapped.into_iter().fold(identity(), op)
    }

    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<U>,
    {
        execute(self.items, &self.f).into_iter().sum()
    }
}

/// `par_iter`/`par_chunks` on slices.
pub trait ParallelSlice<T: Sync> {
    fn par_iter(&self) -> ParIter<&T>;
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter {
            items: self.iter().collect(),
        }
    }

    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        assert!(chunk_size > 0, "par_chunks requires chunk_size > 0");
        ParIter {
            items: self.chunks(chunk_size).collect(),
        }
    }
}

/// `into_par_iter` on owned collections and ranges.
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for Range<u32> {
    type Item = u32;
    fn into_par_iter(self) -> ParIter<u32> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..10_000).collect();
        let doubled: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn enumerate_matches_serial() {
        let v = [10, 20, 30, 40];
        let out: Vec<(usize, i32)> = v.par_iter().enumerate().map(|(i, &x)| (i, x)).collect();
        assert_eq!(out, vec![(0, 10), (1, 20), (2, 30), (3, 40)]);
    }

    #[test]
    fn chunked_reduce_is_in_order() {
        // A deliberately non-commutative operator: string concatenation.
        let v: Vec<usize> = (0..100).collect();
        let s = v
            .par_chunks(7)
            .map(|c| c.iter().map(|x| format!("{x},")).collect::<String>())
            .reduce(String::new, |a, b| a + &b);
        let want: String = (0..100).map(|x| format!("{x},")).collect();
        assert_eq!(s, want);
    }

    #[test]
    fn range_into_par_iter() {
        let rows: Vec<usize> = (0..64usize).into_par_iter().map(|r| r * r).collect();
        assert_eq!(rows[63], 63 * 63);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = crate::join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
    }

    #[test]
    fn join_propagates_panic() {
        let r = std::panic::catch_unwind(|| {
            crate::join(|| 1, || panic!("boom"));
        });
        assert!(r.is_err());
    }
}
