//! Minimal `rayon` stand-in built on `std::thread::scope`.
//!
//! The execution model is deliberately simple and *order-preserving*: a
//! pipeline materializes its input items, splits them into contiguous
//! chunks (one per available core), maps each chunk on its own scoped
//! thread, and re-concatenates chunk outputs in input order. `reduce` then
//! folds the mapped results sequentially, left to right, starting from
//! `identity()`.
//!
//! That makes every `map`/`collect`/`reduce` in this workspace bitwise
//! deterministic and identical to serial execution whenever the reduce
//! operator is associative — which the render/composite call sites are.
//! Real rayon only promises this for `collect`; do not port code here that
//! relies on rayon's work-stealing reduction shapes.

use std::cell::Cell;
use std::marker::PhantomData;
use std::ops::Range;

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`]; applies
    /// to parallel regions started from the calling thread (not to nested
    /// regions launched from inside workers).
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads a parallel region will use.
pub fn current_num_threads() -> usize {
    if let Some(n) = THREAD_OVERRIDE.with(|c| c.get()) {
        return n.max(1);
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Stand-in for rayon's pool builder: the only supported knob is the
/// thread count, applied scoped via [`ThreadPool::install`].
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = Some(n);
        self
    }

    pub fn build(self) -> Result<ThreadPool, std::convert::Infallible> {
        Ok(ThreadPool {
            num_threads: self.num_threads.unwrap_or_else(current_num_threads),
        })
    }
}

/// A fixed thread-count scope (see [`ThreadPoolBuilder`]).
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `f` with parallel regions capped at this pool's thread count.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = THREAD_OVERRIDE.with(|c| c.replace(Some(self.num_threads)));
        let out = f();
        THREAD_OVERRIDE.with(|c| c.set(prev));
        out
    }
}

/// Run both closures, potentially in parallel, and return both results.
/// Panics from either closure propagate to the caller.
pub fn join<A, RA, B, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let b = s.spawn(oper_b);
        let ra = oper_a();
        match b.join() {
            Ok(rb) => (ra, rb),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    })
}

/// Map `f` over `items` on scoped threads, preserving item order.
fn execute<T, U, F>(items: Vec<T>, f: &F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_size = n.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<T> = it.by_ref().take(chunk_size).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let mut out: Vec<Option<Vec<U>>> = (0..chunks.len()).map(|_| None).collect();
    std::thread::scope(|s| {
        for (slot, chunk) in out.iter_mut().zip(chunks) {
            s.spawn(move || {
                *slot = Some(chunk.into_iter().map(f).collect());
            });
        }
    });
    out.into_iter().flatten().flatten().collect()
}

/// A materialized parallel iterator: items are collected up front, the
/// heavy lifting happens at the `map`/`collect`/`reduce` boundary.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Pair up with another parallel iterator, item by item (both sides
    /// are already materialized, so this is a plain zip of the inputs).
    pub fn zip<U: Send>(self, other: ParIter<U>) -> ParIter<(T, U)> {
        ParIter {
            items: self.items.into_iter().zip(other.items).collect(),
        }
    }

    /// Run `f` over every item on the worker threads; no results.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        execute(self.items, &|t| f(t));
    }

    /// Like `map`, but each worker thread builds one `init()` value and
    /// threads it mutably through its chunk of items — the rayon idiom
    /// for reusable per-thread scratch buffers.
    pub fn map_init<S, U, INIT, F>(self, init: INIT, f: F) -> ParMapInit<T, S, U, INIT, F>
    where
        U: Send,
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, T) -> U + Sync,
    {
        ParMapInit {
            items: self.items,
            init,
            f,
            _marker: PhantomData,
        }
    }

    pub fn map<U, F>(self, f: F) -> ParMap<T, U, F>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParMap {
            items: self.items,
            f,
            _marker: PhantomData,
        }
    }

    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// A parallel iterator with a pending map stage.
pub struct ParMap<T, U, F> {
    items: Vec<T>,
    f: F,
    _marker: PhantomData<fn() -> U>,
}

impl<T, U, F> ParMap<T, U, F>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    pub fn map<V, G>(self, g: G) -> ParMap<T, V, impl Fn(T) -> V + Sync>
    where
        V: Send,
        G: Fn(U) -> V + Sync,
    {
        let f = self.f;
        ParMap {
            items: self.items,
            f: move |t| g(f(t)),
            _marker: PhantomData,
        }
    }

    pub fn collect<C: FromIterator<U>>(self) -> C {
        execute(self.items, &self.f).into_iter().collect()
    }

    /// Map in parallel, then fold the results sequentially in input order
    /// starting from `identity()`. Deterministic for any operator; equal to
    /// rayon's result when the operator is associative.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> U
    where
        ID: Fn() -> U + Sync + Send,
        OP: Fn(U, U) -> U + Sync + Send,
    {
        let mapped = execute(self.items, &self.f);
        mapped.into_iter().fold(identity(), op)
    }

    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<U>,
    {
        execute(self.items, &self.f).into_iter().sum()
    }
}

/// A parallel iterator with a pending stateful map stage (see
/// [`ParIter::map_init`]).
pub struct ParMapInit<T, S, U, INIT, F> {
    items: Vec<T>,
    init: INIT,
    f: F,
    _marker: PhantomData<fn(S) -> U>,
}

impl<T, S, U, INIT, F> ParMapInit<T, S, U, INIT, F>
where
    T: Send,
    U: Send,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> U + Sync,
{
    pub fn collect<C: FromIterator<U>>(self) -> C {
        let n = self.items.len();
        let threads = current_num_threads().min(n);
        if threads <= 1 {
            let mut state = (self.init)();
            return self.items.into_iter().map(|t| (self.f)(&mut state, t)).collect();
        }
        let chunk_size = n.div_ceil(threads);
        let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
        let mut it = self.items.into_iter();
        loop {
            let chunk: Vec<T> = it.by_ref().take(chunk_size).collect();
            if chunk.is_empty() {
                break;
            }
            chunks.push(chunk);
        }
        let mut out: Vec<Option<Vec<U>>> = (0..chunks.len()).map(|_| None).collect();
        let init = &self.init;
        let f = &self.f;
        std::thread::scope(|s| {
            for (slot, chunk) in out.iter_mut().zip(chunks) {
                s.spawn(move || {
                    let mut state = init();
                    *slot = Some(chunk.into_iter().map(|t| f(&mut state, t)).collect());
                });
            }
        });
        out.into_iter().flatten().flatten().collect()
    }
}

/// `par_iter`/`par_chunks` on slices.
pub trait ParallelSlice<T: Sync> {
    fn par_iter(&self) -> ParIter<&T>;
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter {
            items: self.iter().collect(),
        }
    }

    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        assert!(chunk_size > 0, "par_chunks requires chunk_size > 0");
        ParIter {
            items: self.chunks(chunk_size).collect(),
        }
    }
}

/// `par_chunks_mut` on mutable slices: disjoint `&mut` chunks are the
/// cheap way to parallel-fill a large buffer — the pipeline materializes
/// one item per *chunk*, not per element, so per-element overhead stays
/// off the hot path.
pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        assert!(chunk_size > 0, "par_chunks_mut requires chunk_size > 0");
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }
}

/// `into_par_iter` on owned collections and ranges.
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for Range<u32> {
    type Item = u32;
    fn into_par_iter(self) -> ParIter<u32> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..10_000).collect();
        let doubled: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn enumerate_matches_serial() {
        let v = [10, 20, 30, 40];
        let out: Vec<(usize, i32)> = v.par_iter().enumerate().map(|(i, &x)| (i, x)).collect();
        assert_eq!(out, vec![(0, 10), (1, 20), (2, 30), (3, 40)]);
    }

    #[test]
    fn chunked_reduce_is_in_order() {
        // A deliberately non-commutative operator: string concatenation.
        let v: Vec<usize> = (0..100).collect();
        let s = v
            .par_chunks(7)
            .map(|c| c.iter().map(|x| format!("{x},")).collect::<String>())
            .reduce(String::new, |a, b| a + &b);
        let want: String = (0..100).map(|x| format!("{x},")).collect();
        assert_eq!(s, want);
    }

    #[test]
    fn range_into_par_iter() {
        let rows: Vec<usize> = (0..64usize).into_par_iter().map(|r| r * r).collect();
        assert_eq!(rows[63], 63 * 63);
    }

    #[test]
    fn zip_pairs_in_order() {
        let a = [1, 2, 3];
        let b = ["x", "y", "z"];
        let out: Vec<(i32, &str)> = a
            .par_iter()
            .zip(b.par_iter())
            .map(|(&x, &s)| (x, s))
            .collect();
        assert_eq!(out, vec![(1, "x"), (2, "y"), (3, "z")]);
    }

    #[test]
    fn for_each_visits_everything() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let sum = AtomicUsize::new(0);
        let v: Vec<usize> = (0..1000).collect();
        v.par_iter().for_each(|&x| {
            sum.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
    }

    #[test]
    fn map_init_reuses_state_within_a_worker() {
        // The scratch starts fresh per worker and mutates across its
        // chunk; output order still matches input order.
        let v: Vec<usize> = (0..100).collect();
        let out: Vec<usize> = v
            .par_iter()
            .map_init(Vec::<usize>::new, |scratch, &x| {
                scratch.push(x);
                x * 2
            })
            .collect();
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_mut_fills_disjoint_ranges() {
        let mut v = vec![0usize; 1000];
        v.par_chunks_mut(64).enumerate().for_each(|(ci, chunk)| {
            for (i, slot) in chunk.iter_mut().enumerate() {
                *slot = ci * 64 + i;
            }
        });
        assert_eq!(v, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn thread_pool_override_is_scoped() {
        let pool = crate::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let inside = pool.install(crate::current_num_threads);
        assert_eq!(inside, 1);
        // restored after install returns
        assert!(crate::current_num_threads() >= 1);
        // results identical under the override
        let v: Vec<usize> = (0..5000).collect();
        let wide: Vec<usize> = v.par_iter().map(|&x| x * 3).collect();
        let narrow: Vec<usize> = pool.install(|| v.par_iter().map(|&x| x * 3).collect());
        assert_eq!(wide, narrow);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = crate::join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
    }

    #[test]
    fn join_propagates_panic() {
        let r = std::panic::catch_unwind(|| {
            crate::join(|| 1, || panic!("boom"));
        });
        assert!(r.is_err());
    }
}
