//! Minimal `rand` stand-in: a deterministic `StdRng` (SplitMix64) plus the
//! `SeedableRng`/`RngExt::random_range` surface the workspace uses.
//!
//! Statistical quality only needs to be good enough for sampling and
//! synthetic-data generation; reproducibility across runs with the same
//! seed is the property the harness actually depends on.

use std::ops::Range;

/// Core entropy source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range sampling, mirroring `rand::Rng::random_range`.
pub trait RngExt: RngCore {
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Uniform in `[0, 1)`.
    fn random_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// A type a value can be uniformly sampled from.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is negligible for the spans this repo uses.
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $ty
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + (self.end - self.start) * u
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic PRNG (SplitMix64). Not the real StdRng algorithm, but
    /// the repo only requires seed-stable determinism, not compatibility.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0usize..1_000_000),
                b.random_range(0usize..1_000_000)
            );
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = r.random_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let d = r.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&d));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut r = StdRng::seed_from_u64(11);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[r.random_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            assert!((8_000..12_000).contains(&b), "bucket count {b} far from 10k");
        }
    }
}
