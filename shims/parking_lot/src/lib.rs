//! Minimal `parking_lot` stand-in over `std::sync` primitives.
//!
//! Matches the parking_lot API shape the workspace uses: `lock()` returns
//! the guard directly (no `Result`); a poisoned std mutex is treated as
//! still usable, which mirrors parking_lot's no-poisoning semantics.

use std::sync;

pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
