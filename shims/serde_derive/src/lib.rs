//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the in-tree serde
//! shim, written directly against `proc_macro` (syn/quote are unavailable
//! offline).
//!
//! Supported shapes — exactly what this workspace derives on:
//! - named-field structs
//! - enums with unit, tuple, and struct variants (externally tagged)
//! - `#[serde(default)]` and `#[serde(default = "path")]` on fields
//! - `Option<T>` fields are implicitly optional (missing key -> `None`)
//!
//! Anything else (generics, tuple structs, other serde attributes) panics
//! at expansion time with a clear message, so unsupported use fails the
//! build loudly instead of mis-serializing.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

#[derive(Clone, Debug)]
enum DefaultKind {
    Required,
    Std,
    Path(String),
}

#[derive(Clone, Debug)]
struct Field {
    name: String,
    default: DefaultKind,
    is_option: bool,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

enum Shape {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    let code = match &shape {
        Shape::Struct(fields) => gen_ser_struct(&name, fields),
        Shape::Enum(variants) => gen_ser_enum(&name, variants),
    };
    code.parse().expect("serde shim derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    let code = match &shape {
        Shape::Struct(fields) => gen_de_struct(&name, fields),
        Shape::Enum(variants) => gen_de_enum(&name, variants),
    };
    code.parse().expect("serde shim derive: generated invalid Deserialize impl")
}

// ---- parsing ------------------------------------------------------------

fn parse_item(input: TokenStream) -> (String, Shape) {
    let mut toks = input.into_iter().peekable();
    let mut kind: Option<String> = None;
    while let Some(tt) = toks.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // outer attribute: consume the bracket group
                toks.next();
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "pub" {
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                } else if s == "struct" || s == "enum" {
                    kind = Some(s);
                    break;
                } else {
                    panic!("serde shim derive: unsupported item keyword `{s}`");
                }
            }
            other => panic!("serde shim derive: unexpected token {other}"),
        }
    }
    let kind = kind.expect("serde shim derive: expected `struct` or `enum`");
    let name = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde shim derive: expected item name, got {other:?}"),
    };
    match toks.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if kind == "struct" {
                (name, Shape::Struct(parse_fields(g.stream())))
            } else {
                (name, Shape::Enum(parse_variants(g.stream())))
            }
        }
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("serde shim derive: generic item `{name}` not supported")
        }
        other => panic!(
            "serde shim derive: unsupported shape for `{name}` (tuple/unit struct?): {other:?}"
        ),
    }
}

fn parse_fields(stream: TokenStream) -> Vec<Field> {
    let mut toks = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let default = take_attrs(&mut toks);
        skip_visibility(&mut toks);
        let name = match toks.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("serde shim derive: expected field name, got {other:?}"),
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde shim derive: expected `:` after `{name}`, got {other:?}"),
        }
        // Consume the type; only its first token matters (Option detection).
        let mut depth = 0i64;
        let mut type_first: Option<String> = None;
        loop {
            let at_top_comma = matches!(
                toks.peek(),
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0
            );
            if at_top_comma {
                toks.next();
                break;
            }
            let Some(tt) = toks.next() else { break };
            match &tt {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                _ => {}
            }
            if type_first.is_none() {
                type_first = Some(match &tt {
                    TokenTree::Ident(i) => i.to_string(),
                    _ => String::new(),
                });
            }
        }
        let is_option = type_first.as_deref() == Some("Option");
        fields.push(Field {
            name,
            default,
            is_option,
        });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut toks = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        let _ = take_attrs(&mut toks);
        let name = match toks.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("serde shim derive: expected variant name, got {other:?}"),
        };
        let kind = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let count = count_tuple_fields(g.stream());
                toks.next();
                VariantKind::Tuple(count)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_fields(g.stream());
                toks.next();
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            toks.next();
        }
        variants.push(Variant { name, kind });
    }
    variants
}

type TokIter = Peekable<proc_macro::token_stream::IntoIter>;

/// Consume leading attributes; return the serde default mode they specify.
fn take_attrs(toks: &mut TokIter) -> DefaultKind {
    let mut default = DefaultKind::Required;
    while matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        toks.next();
        let Some(TokenTree::Group(g)) = toks.next() else {
            panic!("serde shim derive: malformed attribute");
        };
        parse_attr(g.stream(), &mut default);
    }
    default
}

fn skip_visibility(toks: &mut TokIter) {
    if matches!(toks.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        toks.next();
        if let Some(TokenTree::Group(g)) = toks.peek() {
            if g.delimiter() == Delimiter::Parenthesis {
                toks.next();
            }
        }
    }
}

fn parse_attr(stream: TokenStream, default: &mut DefaultKind) {
    let mut toks = stream.into_iter();
    match toks.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == "serde" => {
            let Some(TokenTree::Group(g)) = toks.next() else {
                panic!("serde shim derive: malformed #[serde] attribute");
            };
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            match inner.first() {
                Some(TokenTree::Ident(i)) if i.to_string() == "default" => {
                    if inner.len() == 1 {
                        *default = DefaultKind::Std;
                    } else if inner.len() == 3 {
                        if let TokenTree::Literal(lit) = &inner[2] {
                            let path = lit.to_string().trim_matches('"').to_string();
                            *default = DefaultKind::Path(path);
                        } else {
                            panic!("serde shim derive: expected string in #[serde(default = ...)]");
                        }
                    } else {
                        panic!("serde shim derive: malformed #[serde(default ...)]");
                    }
                }
                other => panic!("serde shim derive: unsupported serde attribute {other:?}"),
            }
        }
        _ => {} // non-serde attribute (doc comment etc.)
    }
}

/// Number of fields in a tuple-variant parenthesis group.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i64;
    let mut count = 0usize;
    let mut saw_tokens_since_comma = false;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if saw_tokens_since_comma {
                    count += 1;
                }
                saw_tokens_since_comma = false;
                continue;
            }
            _ => {}
        }
        saw_tokens_since_comma = true;
    }
    if saw_tokens_since_comma {
        count += 1;
    }
    count
}

// ---- code generation ----------------------------------------------------

fn gen_ser_struct(name: &str, fields: &[Field]) -> String {
    let entries: String = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{0}\"), ::serde::Serialize::serialize_value(&self.{0})),",
                f.name
            )
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
            fn serialize_value(&self) -> ::serde::Value {{\n\
                ::serde::Value::Object(::std::vec![{entries}])\n\
            }}\n\
        }}"
    )
}

fn missing_field_expr(owner: &str, f: &Field) -> String {
    match &f.default {
        DefaultKind::Std => "::std::default::Default::default()".to_string(),
        DefaultKind::Path(p) => format!("{p}()"),
        DefaultKind::Required if f.is_option => "::std::option::Option::None".to_string(),
        DefaultKind::Required => format!(
            "return ::std::result::Result::Err(::serde::DeError::custom(\"{owner}: missing field `{}`\"))",
            f.name
        ),
    }
}

/// `field_name: <lookup-or-default expr>,` list for a struct literal.
fn field_init_list(owner: &str, fields: &[Field], src: &str) -> String {
    fields
        .iter()
        .map(|f| {
            format!(
                "{0}: match ::serde::field({src}, \"{0}\") {{\n\
                    ::std::option::Option::Some(__x) => ::serde::Deserialize::deserialize_value(__x)?,\n\
                    ::std::option::Option::None => {1},\n\
                }},",
                f.name,
                missing_field_expr(owner, f)
            )
        })
        .collect()
}

fn gen_de_struct(name: &str, fields: &[Field]) -> String {
    let inits = field_init_list(name, fields, "__fields");
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
            fn deserialize_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                let __fields = match __v.as_object() {{\n\
                    ::std::option::Option::Some(f) => f,\n\
                    ::std::option::Option::None => return ::std::result::Result::Err(::serde::DeError::custom(\"{name}: expected object\")),\n\
                }};\n\
                ::std::result::Result::Ok({name} {{ {inits} }})\n\
            }}\n\
        }}"
    )
}

fn gen_ser_enum(name: &str, variants: &[Variant]) -> String {
    let arms: String = variants
        .iter()
        .map(|v| {
            let vn = &v.name;
            match &v.kind {
                VariantKind::Unit => format!(
                    "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                ),
                VariantKind::Tuple(1) => format!(
                    "{name}::{vn}(__f0) => ::serde::Value::Object(::std::vec![(\
                        ::std::string::String::from(\"{vn}\"), \
                        ::serde::Serialize::serialize_value(__f0))]),"
                ),
                VariantKind::Tuple(n) => {
                    let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                    let sers: String = binds
                        .iter()
                        .map(|b| format!("::serde::Serialize::serialize_value({b}),"))
                        .collect();
                    format!(
                        "{name}::{vn}({}) => ::serde::Value::Object(::std::vec![(\
                            ::std::string::String::from(\"{vn}\"), \
                            ::serde::Value::Array(::std::vec![{sers}]))]),",
                        binds.join(", ")
                    )
                }
                VariantKind::Struct(fields) => {
                    let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                    let entries: String = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from(\"{0}\"), ::serde::Serialize::serialize_value({0})),",
                                f.name
                            )
                        })
                        .collect();
                    format!(
                        "{name}::{vn} {{ {} }} => ::serde::Value::Object(::std::vec![(\
                            ::std::string::String::from(\"{vn}\"), \
                            ::serde::Value::Object(::std::vec![{entries}]))]),",
                        binds.join(", ")
                    )
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
            fn serialize_value(&self) -> ::serde::Value {{\n\
                match self {{ {arms} }}\n\
            }}\n\
        }}"
    )
}

fn gen_de_enum(name: &str, variants: &[Variant]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|v| matches!(v.kind, VariantKind::Unit))
        .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0}),", v.name))
        .collect();
    let tagged_arms: String = variants
        .iter()
        .filter_map(|v| {
            let vn = &v.name;
            match &v.kind {
                VariantKind::Unit => None,
                VariantKind::Tuple(1) => Some(format!(
                    "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                        ::serde::Deserialize::deserialize_value(__inner)?)),"
                )),
                VariantKind::Tuple(n) => {
                    let gets: Vec<String> = (0..*n)
                        .map(|i| {
                            format!("::serde::Deserialize::deserialize_value(&__arr[{i}])?")
                        })
                        .collect();
                    Some(format!(
                        "\"{vn}\" => {{\n\
                            let __arr = match __inner.as_array() {{\n\
                                ::std::option::Option::Some(a) if a.len() == {n} => a,\n\
                                _ => return ::std::result::Result::Err(::serde::DeError::custom(\"{name}::{vn}: expected {n}-element array\")),\n\
                            }};\n\
                            ::std::result::Result::Ok({name}::{vn}({}))\n\
                        }}",
                        gets.join(", ")
                    ))
                }
                VariantKind::Struct(fields) => {
                    let owner = format!("{name}::{vn}");
                    let inits = field_init_list(&owner, fields, "__vfields");
                    Some(format!(
                        "\"{vn}\" => {{\n\
                            let __vfields = match __inner.as_object() {{\n\
                                ::std::option::Option::Some(f) => f,\n\
                                ::std::option::Option::None => return ::std::result::Result::Err(::serde::DeError::custom(\"{owner}: expected object\")),\n\
                            }};\n\
                            ::std::result::Result::Ok({name}::{vn} {{ {inits} }})\n\
                        }}"
                    ))
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
            fn deserialize_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                if let ::std::option::Option::Some(__s) = __v.as_str() {{\n\
                    return match __s {{\n\
                        {unit_arms}\n\
                        __other => ::std::result::Result::Err(::serde::DeError::custom(\
                            ::std::format!(\"{name}: unknown variant `{{}}`\", __other))),\n\
                    }};\n\
                }}\n\
                let __fields = match __v.as_object() {{\n\
                    ::std::option::Option::Some(f) if f.len() == 1 => f,\n\
                    _ => return ::std::result::Result::Err(::serde::DeError::custom(\"{name}: expected single-variant object\")),\n\
                }};\n\
                let (__tag, __inner) = (&__fields[0].0, &__fields[0].1);\n\
                let _ = __inner; // unused when every variant is a unit variant\n\
                match __tag.as_str() {{\n\
                    {tagged_arms}\n\
                    __other => ::std::result::Result::Err(::serde::DeError::custom(\
                        ::std::format!(\"{name}: unknown variant `{{}}`\", __other))),\n\
                }}\n\
            }}\n\
        }}"
    )
}
