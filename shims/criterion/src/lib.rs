//! Minimal `criterion` stand-in: a plain timing loop with the criterion
//! 0.8 API shape (`benchmark_group`, `bench_with_input`, `Throughput`,
//! `criterion_group!`/`criterion_main!`).
//!
//! Sampling is intentionally lightweight — a short warm-up, then
//! `sample_size` timed iterations, reporting min/median/mean — because the
//! repo's benches are driven through CI smoke checks, not statistical
//! regression gates.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("benchmark group: {name}");
        BenchmarkGroup {
            name,
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            throughput: None,
            _criterion: std::marker::PhantomData,
        }
    }
}

pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _criterion: std::marker::PhantomData<&'c mut Criterion>,
}

impl<'c> BenchmarkGroup<'c> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
        };
        f(&mut bencher);
        self.report(&id, &bencher.samples);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
        };
        f(&mut bencher, input);
        self.report(&id, &bencher.samples);
        self
    }

    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, samples: &[Duration]) {
        if samples.is_empty() {
            eprintln!("  {}/{}: no samples", self.name, id.id);
            return;
        }
        let mut sorted: Vec<Duration> = samples.to_vec();
        sorted.sort();
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean.as_secs_f64() > 0.0 => {
                format!(" ({:.3e} elem/s)", n as f64 / mean.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if mean.as_secs_f64() > 0.0 => {
                format!(" ({:.3e} B/s)", n as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        eprintln!(
            "  {}/{}: min {:?}, median {:?}, mean {:?} over {} samples{}",
            self.name,
            id.id,
            min,
            median,
            mean,
            sorted.len(),
            rate
        );
    }
}

pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run until the warm-up budget is spent (at least once).
        let warm_start = Instant::now();
        loop {
            black_box(routine());
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        // Measurement: `sample_size` timed runs, capped by the measurement
        // budget (but always at least one sample).
        let measure_start = Instant::now();
        for i in 0..self.sample_size {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
            if i > 0 && measure_start.elapsed() >= self.measurement_time {
                break;
            }
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_self_test");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(20));
        group.throughput(Throughput::Elements(1000));
        group.bench_function(BenchmarkId::from_parameter("sum"), |b| {
            b.iter(|| (0..1000u64).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &k| {
            b.iter(|| (0..1000u64 * k).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        quick(&mut c);
    }

    criterion_group!(benches, quick);

    #[test]
    fn group_macro_compiles() {
        benches();
    }
}
