//! Minimal `bytes` stand-in.
//!
//! `Bytes` is a reference-counted `Vec<u8>` plus a sub-range, so `clone`,
//! `slice` and `split_to` are O(1) and never copy payload bytes — the
//! property the transport layer's zero-copy decode path depends on.

use std::fmt;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Cheaply cloneable, sliceable, immutable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// O(1) sub-range sharing the same backing allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice range {lo}..{hi} out of bounds for Bytes of length {}",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Split off the first `at` bytes, O(1). `self` keeps the tail.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(
            at <= self.len(),
            "split_to({at}) out of bounds for Bytes of length {}",
            self.len()
        );
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// True when two handles view the same backing allocation (test aid for
    /// asserting zero-copy behaviour; not part of the real bytes API).
    pub fn shares_allocation_with(&self, other: &Bytes) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

macro_rules! impl_partial_eq {
    ($($ty:ty),*) => {$(
        impl PartialEq<$ty> for Bytes {
            fn eq(&self, other: &$ty) -> bool {
                self.as_slice() == &other[..]
            }
        }
    )*};
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}
impl_partial_eq!([u8], &[u8], Vec<u8>);

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

/// Growable buffer for building a `Bytes`.
#[derive(Default, Clone, Debug, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { vec: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            vec: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.vec.len()
    }

    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.vec.capacity()
    }

    pub fn extend_from_slice(&mut self, other: &[u8]) {
        self.vec.extend_from_slice(other);
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

/// Read cursor over a byte source. Little-endian accessors only — that is
/// the only endianness this workspace uses on the wire.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.remaining() >= dst.len(),
            "copy_to_slice needs {} bytes, only {} remain",
            dst.len(),
            self.remaining()
        );
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(
            cnt <= self.len(),
            "advance({cnt}) out of bounds for Bytes of length {}",
            self.len()
        );
        self.start += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write cursor; the mirror of [`Buf`].
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_bits().to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_bits().to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut m = BytesMut::with_capacity(32);
        m.put_u8(7);
        m.put_u16_le(300);
        m.put_u32_le(70_000);
        m.put_u64_le(1 << 40);
        m.put_f32_le(1.5);
        let mut b = m.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16_le(), 300);
        assert_eq!(b.get_u32_le(), 70_000);
        assert_eq!(b.get_u64_le(), 1 << 40);
        assert_eq!(b.get_f32_le(), 1.5);
        assert!(b.is_empty());
    }

    #[test]
    fn split_to_is_zero_copy() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let head = b.clone();
        let front = b.split_to(2);
        assert_eq!(&front[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4, 5]);
        assert!(front.shares_allocation_with(&head));
        assert!(b.shares_allocation_with(&head));
    }

    #[test]
    fn slice_bounds() {
        let b = Bytes::from(vec![0, 1, 2, 3]);
        assert_eq!(&b.slice(1..3)[..], &[1, 2]);
        assert_eq!(b.slice(..).len(), 4);
        assert_eq!(b.slice(4..4).len(), 0);
    }

    #[test]
    #[should_panic(expected = "split_to")]
    fn split_past_end_panics() {
        let mut b = Bytes::from(vec![1]);
        b.split_to(2);
    }
}
