//! Minimal `proptest` stand-in.
//!
//! Supports the surface the workspace's property tests use: the
//! `proptest!` macro (with optional `#![proptest_config(...)]`), range and
//! tuple strategies, `prop::collection::vec`, `prop_map`, and the
//! `prop_assert*`/`prop_assume!` macros. Case generation is deterministic
//! per test (seeded from the test name), and there is **no shrinking** — a
//! failure reports the failing inputs via the panic message instead.

pub mod config {
    /// Runner configuration. Fewer default cases than real proptest (256)
    /// keeps the suite fast; the properties themselves don't depend on the
    /// count.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod test_runner {
    use super::config::ProptestConfig;

    /// Deterministic per-test RNG (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the test name gives a stable per-test seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// Assertion failure: the property is violated.
        Fail(String),
        /// `prop_assume!` rejected the inputs; try another case.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Drive one property: run `config.cases` accepted cases, panic on the
    /// first failure.
    pub fn run<F>(name: &str, config: &ProptestConfig, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let mut rng = TestRng::from_name(name);
        let mut passed = 0u32;
        let mut rejected = 0u64;
        let max_rejects = (config.cases as u64).saturating_mul(50).max(1_000);
        while passed < config.cases {
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > max_rejects {
                        panic!(
                            "property `{name}`: gave up after {rejected} rejected cases \
                             ({passed} passed)"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("property `{name}` failed after {passed} passing cases: {msg}");
                }
            }
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values. Unlike real proptest there is no
    /// value tree and no shrinking.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { base: self, f }
        }
    }

    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.base.generate(rng))
        }
    }

    macro_rules! int_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $ty
                }
            }
        )*};
    }

    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f32> {
        type Value = f32;

        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + (self.end - self.start) * rng.unit_f64() as f32
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident : $idx:tt),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A: 0);
        (A: 0, B: 1);
        (A: 0, B: 1, C: 2);
        (A: 0, B: 1, C: 2, D: 3);
        (A: 0, B: 1, C: 2, D: 3, E: 4);
    }

    /// `Just`-style constant strategy (small convenience, mirrors real
    /// proptest's `Just`).
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A strategy for vectors with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::config::ProptestConfig;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            config = $crate::config::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run(stringify!($name), &__config, |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                $body
                ::std::result::Result::Ok(())
            });
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: {} ({}:{})",
                    stringify!($cond),
                    file!(),
                    line!()
                ),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?} ({}:{})",
                    stringify!($lhs),
                    stringify!($rhs),
                    __l,
                    __r,
                    file!(),
                    line!()
                ),
            ));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        if __l == __r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} != {}` (both {:?}) ({}:{})",
                    stringify!($lhs),
                    stringify!($rhs),
                    __l,
                    file!(),
                    line!()
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, f in -2.0f32..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f), "f out of range: {}", f);
        }

        #[test]
        fn tuples_and_maps(v in (0u64..10, 0u64..10).prop_map(|(a, b)| a + b)) {
            prop_assert!(v < 19);
        }

        #[test]
        fn vec_lengths(items in prop::collection::vec(0i32..5, 2..9)) {
            prop_assert!((2..9).contains(&items.len()));
            for item in &items {
                prop_assert!((0..5).contains(item));
            }
        }

        #[test]
        fn assume_rejects(x in 0usize..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn determinism() {
        let mut a = TestRng::from_name("same");
        let mut b = TestRng::from_name("same");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failure_panics() {
        crate::test_runner::run(
            "always_fails",
            &ProptestConfig::with_cases(4),
            |_rng| Err(TestCaseError::fail("nope")),
        );
    }
}
