//! Minimal `crossbeam` stand-in: an unbounded MPSC channel with deadline
//! receives, built on `Mutex` + `Condvar`.
//!
//! Semantics the transport layer relies on:
//! - FIFO per sender, and globally FIFO because all senders funnel through
//!   one queue under one lock.
//! - `recv` returns `Err(RecvError)` once every `Sender` is dropped *and*
//!   the queue is drained.
//! - `recv_deadline` distinguishes `Timeout` from `Disconnected`.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receiver_alive: bool,
    }

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("receive timed out"),
                RecvTimeoutError::Disconnected => f.write_str("channel disconnected"),
            }
        }
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receiver_alive: true,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        pub fn send(&self, item: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if !state.receiver_alive {
                return Err(SendError(item));
            }
            state.items.push_back(item);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            state.senders += 1;
            drop(state);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            state.senders -= 1;
            let last = state.senders == 0;
            drop(state);
            if last {
                // Wake any receiver blocked on an empty queue so it can
                // observe the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .shared
                    .ready
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        pub fn recv_deadline(&self, deadline: Instant) -> Result<T, RecvTimeoutError> {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (next, timeout) = self
                    .shared
                    .ready
                    .wait_timeout(state, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                state = next;
                if timeout.timed_out() && state.items.is_empty() {
                    if state.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.recv_deadline(Instant::now() + timeout)
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(item) = state.items.pop_front() {
                return Ok(item);
            }
            if state.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            state.receiver_alive = false;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;
        use std::time::{Duration, Instant};

        #[test]
        fn fifo_across_threads() {
            let (tx, rx) = unbounded();
            let t = thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            for i in 0..100 {
                assert_eq!(rx.recv().unwrap(), i);
            }
            t.join().unwrap();
            assert!(rx.recv().is_err());
        }

        #[test]
        fn deadline_times_out() {
            let (_tx, rx) = unbounded::<u8>();
            let start = Instant::now();
            let err = rx
                .recv_deadline(Instant::now() + Duration::from_millis(30))
                .unwrap_err();
            assert_eq!(err, RecvTimeoutError::Timeout);
            assert!(start.elapsed() >= Duration::from_millis(30));
        }

        #[test]
        fn disconnect_beats_timeout() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            let err = rx
                .recv_deadline(Instant::now() + Duration::from_secs(5))
                .unwrap_err();
            assert_eq!(err, RecvTimeoutError::Disconnected);
        }

        #[test]
        fn send_to_dropped_receiver_errors() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }
    }
}
