//! Minimal `serde_json` stand-in: renders and parses the serde shim's
//! [`Value`] tree. Only needs to round-trip with itself — nothing outside
//! this repository consumes the JSON it produces.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

// ---- serialization ------------------------------------------------------

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&value.serialize_value(), &mut out)?;
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.serialize_value(), &mut out, 0)?;
    Ok(out)
}

pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    Ok(to_string(value)?.into_bytes())
}

fn write_number(f: f64, out: &mut String) -> Result<(), Error> {
    if !f.is_finite() {
        return Err(Error::new(format!("cannot serialize non-finite float {f}")));
    }
    // `{}` on f64 is shortest-roundtrip in Rust, which is valid JSON for
    // finite values.
    out.push_str(&format!("{f}"));
    Ok(())
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_compact(v: &Value, out: &mut String) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => write_number(*f, out)?,
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out)?;
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(val, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_pretty(v: &Value, out: &mut String, indent: usize) -> Result<(), Error> {
    const STEP: usize = 2;
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&" ".repeat(indent + STEP));
                write_pretty(item, out, indent + STEP)?;
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&" ".repeat(indent + STEP));
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(val, out, indent + STEP)?;
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push('}');
        }
        other => write_compact(other, out)?,
    }
    Ok(())
}

// ---- deserialization ----------------------------------------------------

pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_complete(s)?;
    Ok(T::deserialize_value(&value)?)
}

pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

/// Parse a complete JSON document into the shim's `Value` tree.
pub fn parse_value_complete(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}, found `{:?}`",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected character {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid keyword at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            // Surrogate pairs: accept and combine; lone
                            // surrogates become the replacement character.
                            if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    if self.peek() == Some(b'u') {
                                        self.pos += 1;
                                        let lo = self.parse_hex4()?;
                                        let c = 0x10000
                                            + ((cp - 0xD800) << 10)
                                            + (lo.wrapping_sub(0xDC00));
                                        out.push(
                                            char::from_u32(c).unwrap_or('\u{FFFD}'),
                                        );
                                        continue;
                                    }
                                }
                                out.push('\u{FFFD}');
                            } else {
                                out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                            }
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape \\{}",
                                other as char
                            )))
                        }
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: find the full char in the source.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|e| Error::new(format!("invalid utf-8 in string: {e}")))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let cp =
            u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(n) = text.parse::<i64>() {
                    return Ok(Value::I64(n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, found {:?} at byte {}",
                        other.map(|c| c as char),
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, found {:?} at byte {}",
                        other.map(|c| c as char),
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip() {
        let v = Value::Object(vec![
            ("a".into(), Value::U64(3)),
            ("b".into(), Value::Array(vec![Value::F64(1.5), Value::Null])),
            ("c".into(), Value::Str("hi \"there\"\n".into())),
            ("d".into(), Value::Bool(true)),
            ("e".into(), Value::I64(-7)),
        ]);
        let compact = {
            let mut s = String::new();
            write_compact(&v, &mut s).unwrap();
            s
        };
        assert_eq!(parse_value_complete(&compact).unwrap(), v);
        let pretty = {
            let mut s = String::new();
            write_pretty(&v, &mut s, 0).unwrap();
            s
        };
        assert_eq!(parse_value_complete(&pretty).unwrap(), v);
    }

    #[test]
    fn float_precision_survives() {
        // Deliberately more digits than f64 can hold: the parse must land
        // on the nearest representable value, i.e. the original constant.
        #[allow(clippy::excessive_precision)]
        const PI_ISH: f64 = 0.123456789012345678;
        let v = Value::F64(PI_ISH);
        let mut s = String::new();
        write_compact(&v, &mut s).unwrap();
        match parse_value_complete(&s).unwrap() {
            Value::F64(f) => assert_eq!(f, PI_ISH),
            other => panic!("expected F64, got {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value_complete("{").is_err());
        assert!(parse_value_complete("[1,]").is_err());
        assert!(parse_value_complete("1 2").is_err());
        assert!(parse_value_complete("\"unterminated").is_err());
    }

    #[test]
    fn negative_and_large_ints() {
        assert_eq!(parse_value_complete("-42").unwrap(), Value::I64(-42));
        assert_eq!(
            parse_value_complete("18446744073709551615").unwrap(),
            Value::U64(u64::MAX)
        );
    }
}
